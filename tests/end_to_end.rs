//! End-to-end integration: compile → load → ensemble-execute each of the
//! paper's benchmarks and validate results against the host references.

use ensemble_gpu::apps;
use ensemble_gpu::core::{run_ensemble, EnsembleOptions, HostApp, Loader, MappingStrategy};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

fn args(v: &[&str]) -> Vec<Vec<String>> {
    vec![v.iter().map(|s| s.to_string()).collect()]
}

fn checksum_line(stdout: &str) -> f64 {
    stdout
        .lines()
        .find(|l| l.starts_with("Verification checksum:"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no checksum in: {stdout}"))
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= a.abs().max(b.abs()) * 1e-9
}

/// All instances of an ensemble with identical arguments must print the
/// same checksum as the single-instance run and the host reference.
fn ensemble_matches_reference(app: &HostApp, argv: &[&str], reference: f64, instances: u32) {
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: instances,
        thread_limit: 64,
        ..Default::default()
    };
    let res = run_ensemble(&mut gpu, app, &args(argv), &opts, HostServices::default())
        .unwrap_or_else(|e| panic!("{} failed to launch: {e}", app.name));
    assert!(res.all_succeeded(), "{}: {:?}", app.name, res.instances);
    for (i, out) in res.stdout.iter().enumerate() {
        let printed = checksum_line(out);
        assert!(
            close(printed, reference),
            "{} instance {i}: {printed} != {reference}",
            app.name
        );
    }
    assert_eq!(
        gpu.mem.stats().live_allocations,
        0,
        "{} leaked device memory",
        app.name
    );
}

#[test]
fn xsbench_ensemble_matches_reference() {
    let p = apps::xsbench::XsParams {
        gridpoints: 12,
        lookups: 50,
        size: apps::xsbench::ProblemSize::Small,
        nuclides: 68,
    };
    ensemble_matches_reference(
        &apps::xsbench::app(),
        &["-l", "50", "-g", "12"],
        apps::xsbench::reference_checksum(&p),
        4,
    );
}

#[test]
fn rsbench_ensemble_matches_reference() {
    let p = apps::rsbench::RsParams {
        windows: 6,
        poles_per_window: 2,
        lookups: 40,
    };
    ensemble_matches_reference(
        &apps::rsbench::app(),
        &["-l", "40", "-w", "6", "-p", "2"],
        apps::rsbench::reference_checksum(&p),
        4,
    );
}

#[test]
fn amgmk_ensemble_matches_reference() {
    let p = apps::amgmk::AmgParams { dim: 5, sweeps: 3 };
    ensemble_matches_reference(
        &apps::amgmk::app(),
        &["-n", "5", "-s", "3"],
        apps::amgmk::reference_checksum(&p),
        4,
    );
}

#[test]
fn pagerank_ensemble_matches_reference() {
    let p = apps::pagerank::PrParams {
        vertices: 120,
        degree: 4,
        iterations: 3,
    };
    ensemble_matches_reference(
        &apps::pagerank::app(),
        &["-v", "120", "-d", "4", "-i", "3"],
        apps::pagerank::reference_checksum(&p),
        2,
    );
}

#[test]
fn results_identical_across_thread_limits_and_mappings() {
    // OpenMP semantics: the schedule must not change answers. Run XSBench
    // under different thread limits and under the packed mapping; every
    // configuration must print the identical checksum.
    let app = apps::xsbench::app();
    let argv = args(&["-l", "30", "-g", "10"]);
    let mut checksums = Vec::new();
    for (tl, mapping) in [
        (32u32, MappingStrategy::OnePerTeam),
        (128, MappingStrategy::OnePerTeam),
        (1024, MappingStrategy::OnePerTeam),
        (128, MappingStrategy::Packed { per_block: 4 }),
    ] {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            cycle_args: true,
            num_instances: 4,
            thread_limit: tl,
            mapping,
            ..Default::default()
        };
        let res = run_ensemble(&mut gpu, &app, &argv, &opts, HostServices::default()).unwrap();
        assert!(res.all_succeeded());
        checksums.push(checksum_line(&res.stdout[0]));
    }
    for w in checksums.windows(2) {
        assert_eq!(w[0], w[1], "schedule changed the answer: {checksums:?}");
    }
}

#[test]
fn ensemble_is_deterministic() {
    // Two identical launches must produce byte-identical stdout and the
    // same simulated kernel time.
    let app = apps::amgmk::app();
    let argv = args(&["-n", "6", "-s", "4"]);
    let run = || {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            cycle_args: true,
            num_instances: 8,
            thread_limit: 32,
            ..Default::default()
        };
        let res = run_ensemble(&mut gpu, &app, &argv, &opts, HostServices::default()).unwrap();
        (res.stdout.clone(), res.kernel_time_s)
    };
    let (out1, t1) = run();
    let (out2, t2) = run();
    assert_eq!(out1, out2);
    assert_eq!(t1, t2);
}

#[test]
fn plain_loader_and_ensemble_of_one_agree() {
    // The [26] single-team loader and a 1-instance ensemble must produce
    // the same program output (the enhanced loader is a strict extension).
    let app = apps::rsbench::app();
    let mut gpu = Gpu::a100();
    let loader = Loader {
        thread_limit: 64,
        ..Default::default()
    };
    let single = loader
        .run(&mut gpu, &app, &["-l", "30"], HostServices::default())
        .unwrap();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 1,
        thread_limit: 64,
        ..Default::default()
    };
    let ens = run_ensemble(
        &mut gpu,
        &app,
        &args(&["-l", "30"]),
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert_eq!(single.stdout, ens.stdout[0]);
}

#[test]
fn mixed_argument_lines_give_distinct_results() {
    // Fig. 5: different instances run genuinely different problems.
    let app = apps::xsbench::app();
    let lines: Vec<Vec<String>> = vec![
        vec!["-l".into(), "20".into(), "-g".into(), "8".into()],
        vec!["-l".into(), "40".into(), "-g".into(), "8".into()],
        vec!["-l".into(), "20".into(), "-g".into(), "16".into()],
    ];
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 3,
        thread_limit: 32,
        ..Default::default()
    };
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
    assert!(res.all_succeeded());
    let c0 = checksum_line(&res.stdout[0]);
    let c1 = checksum_line(&res.stdout[1]);
    let c2 = checksum_line(&res.stdout[2]);
    assert_ne!(c0, c1);
    assert_ne!(c0, c2);
    // And each matches its own reference.
    let reference = apps::xsbench::reference_checksum(&apps::xsbench::XsParams {
        gridpoints: 8,
        lookups: 40,
        size: apps::xsbench::ProblemSize::Small,
        nuclides: 68,
    });
    assert!(close(c1, reference));
}
