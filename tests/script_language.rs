//! End-to-end coverage of the §3.2 argument-file script language: generated
//! argument lines drive a real ensemble.

use ensemble_gpu::apps;
use ensemble_gpu::core::{expand_arg_script, run_ensemble, EnsembleOptions};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

#[test]
fn generated_instances_run_their_own_problems() {
    // Four XSBench instances with lookups 20, 40, 60, 80 from one directive.
    let lines = expand_arg_script("@repeat 4: -l {20 + 20*i} -g 8\n").unwrap();
    assert_eq!(lines.len(), 4);

    let app = apps::xsbench::app();
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 32,
        ..Default::default()
    };
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
    assert!(res.all_succeeded());
    for (i, out) in res.stdout.iter().enumerate() {
        let expect = format!("Lookups: {}", 20 + 20 * i);
        assert!(out.contains(&expect), "instance {i}: {out}");
    }
}

#[test]
fn for_directive_drives_pagerank_sizes() {
    let lines = expand_arg_script("@for i in 1..4: -v {i*200} -d 4 -i 2\n").unwrap();
    assert_eq!(lines.len(), 3);
    let app = apps::pagerank::app();
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        num_instances: 3,
        thread_limit: 32,
        ..Default::default()
    };
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
    assert!(res.all_succeeded());
    for (i, out) in res.stdout.iter().enumerate() {
        let expect = format!("Vertices: {}", (i + 1) * 200);
        assert!(out.contains(&expect), "instance {i}: {out}");
    }
}

#[test]
fn script_results_match_equivalent_plain_file() {
    let scripted = expand_arg_script("@repeat 3: -l {30} -g {8 + 4*i}\n").unwrap();
    let plain =
        ensemble_gpu::core::parse_arg_file("-l 30 -g 8\n-l 30 -g 12\n-l 30 -g 16\n").unwrap();
    assert_eq!(scripted, plain);
}
