//! Generality of the ensemble mechanism across device classes: the paper
//! evaluates on an A100, but nothing in the approach is A100-specific.
//! These tests run the sweep on V100- and MI210-class devices and check
//! that the qualitative behaviour (sublinear monotone scaling, memory
//! limits binding earlier on smaller devices) transfers.

use ensemble_gpu::arch::GpuSpec;
use ensemble_gpu::core::{relative_speedup, run_ensemble, EnsembleOptions, HostApp};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

fn kernel_time(spec: &GpuSpec, app: &HostApp, argv: &[&str], n: u32) -> Option<f64> {
    let mut gpu = Gpu::new(spec.clone());
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit: 32,
        ..Default::default()
    };
    let lines = vec![argv.iter().map(|s| s.to_string()).collect()];
    let res = run_ensemble(&mut gpu, app, &lines, &opts, HostServices::default()).unwrap();
    if res.any_oom() {
        return None;
    }
    assert!(res.all_succeeded());
    Some(res.kernel_time_s)
}

#[test]
fn ensembles_scale_on_v100_and_mi210() {
    let app = ensemble_gpu::apps::xsbench::app();
    let argv = ["-l", "60", "-g", "12"];
    for spec in [GpuSpec::v100_16gb(), GpuSpec::mi210()] {
        let t1 = kernel_time(&spec, &app, &argv, 1).unwrap();
        let t16 = kernel_time(&spec, &app, &argv, 16).unwrap();
        let s = relative_speedup(t1, 16, t16).expect("measured times are positive");
        assert!(
            s > 8.0 && s <= 16.0 + 1e-6,
            "{}: 16-instance speedup out of band: {s}",
            spec.name
        );
    }
}

#[test]
fn pagerank_memory_wall_moves_with_device_capacity() {
    // ~9.3 GB per paper-scale instance: the A100 (40 GB) fits 4, the V100
    // (16 GB) fits only 1 — the memory limitation §4.3 describes binds
    // earlier on a smaller device.
    let app = ensemble_gpu::apps::pagerank::app();
    let argv = ["-v", "300", "-d", "4", "-i", "2"];
    let a100 = GpuSpec::a100_40gb();
    let v100 = GpuSpec::v100_16gb();
    assert!(kernel_time(&a100, &app, &argv, 4).is_some());
    assert!(kernel_time(&a100, &app, &argv, 8).is_none());
    assert!(kernel_time(&v100, &app, &argv, 1).is_some());
    assert!(kernel_time(&v100, &app, &argv, 2).is_none());
}

#[test]
fn wider_wavefronts_still_compute_correctly() {
    // MI210 wavefronts are 64 lanes; results must be schedule-invariant.
    let app = ensemble_gpu::apps::amgmk::app();
    let argv = ["-n", "5", "-s", "3"];
    let reference =
        ensemble_gpu::apps::amgmk::reference_checksum(&ensemble_gpu::apps::amgmk::AmgParams {
            dim: 5,
            sweeps: 3,
        });
    let mut gpu = Gpu::new(GpuSpec::mi210());
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 2,
        thread_limit: 128,
        ..Default::default()
    };
    let res = run_ensemble(
        &mut gpu,
        &app,
        &[argv.iter().map(|s| s.to_string()).collect()],
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(res.all_succeeded());
    for out in &res.stdout {
        let printed: f64 = out
            .lines()
            .find(|l| l.starts_with("Verification"))
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((printed - reference).abs() <= reference.abs() * 1e-9);
    }
}

#[test]
fn smaller_device_is_slower_at_scale() {
    // Same ensemble, V100 vs A100: the V100's lower bandwidth and SM count
    // must show up as a longer kernel at high instance counts.
    let app = ensemble_gpu::apps::amgmk::app();
    let argv = ["-n", "8", "-s", "4"];
    let t_a100 = kernel_time(&GpuSpec::a100_40gb(), &app, &argv, 32).unwrap();
    let t_v100 = kernel_time(&GpuSpec::v100_16gb(), &app, &argv, 32).unwrap();
    assert!(
        t_v100 > t_a100,
        "V100 ({t_v100:.2e}s) should be slower than A100 ({t_a100:.2e}s)"
    );
}
