//! Integration of the compiler pipeline with the offload runtime: what the
//! compiled image says is exactly what the runtime enforces.

use ensemble_gpu::compiler::CompilerOptions;
use ensemble_gpu::core::{
    parse_arg_file, run_ensemble, AppContext, EnsembleOptions, GlobalSlot, HostApp, Loader,
};
use ensemble_gpu::ir::{Attr, GlobalPlacement};
use ensemble_gpu::libc::dl_printf;
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::{Gpu, KernelError, TeamCtx};

const PRINTING_MODULE: &str = r#"
module "printer" {
  func @main arity=2 calls(@printf)
  extern func @printf variadic
}
"#;

const SILENT_MODULE: &str = r#"
module "silent" {
  func @main arity=2 calls(@compute)
  func @compute arity=0
}
"#;

fn printing_main(team: &mut TeamCtx<'_>, _cx: &AppContext) -> Result<i32, KernelError> {
    team.serial("p", |lane| {
        dl_printf(lane, "out\n", &[])?;
        Ok(())
    })?;
    Ok(0)
}

#[test]
fn rpc_services_gate_runtime_calls() {
    // A module that never references printf gets no stdio stub; the same
    // behaviour code then traps when it tries to print.
    let ok_app = HostApp::new("printer", PRINTING_MODULE, printing_main);
    let bad_app = HostApp::new("silent", SILENT_MODULE, printing_main);
    let mut gpu = Gpu::a100();
    let ok = Loader::default()
        .run(&mut gpu, &ok_app, &[], HostServices::default())
        .unwrap();
    assert_eq!(ok.exit_code, Some(0));
    assert_eq!(ok.stdout, "out\n");

    let bad = Loader::default()
        .run(&mut gpu, &bad_app, &[], HostServices::default())
        .unwrap();
    assert!(bad.trap.as_deref().unwrap_or("").contains("no RPC stub"));
    assert_eq!(bad.stdout, "");
}

#[test]
fn compiled_image_reports_what_ran() {
    let image = Loader::default()
        .compile_app(&HostApp::new("printer", PRINTING_MODULE, printing_main))
        .unwrap();
    assert_eq!(image.entry, "__user_main");
    assert!(image.module.function("__rpc_printf").is_some());
    let wrapper = image.module.function("main").unwrap();
    assert!(wrapper.attrs.has(&Attr::MainWrapper));
    // Everything that survives DCE is device-marked (except the wrapper).
    for f in image.module.defined_functions() {
        if !f.attrs.has(&Attr::MainWrapper) {
            assert!(f.attrs.is_nohost_device(), "{} not device-marked", f.name);
        }
    }
}

const GLOBALS_MODULE: &str = r#"
module "globals" {
  global @small size=64 align=8
  global @big size=1048576 align=8
  global @table size=256 align=8 const
  func @main arity=2 calls(@printf)
  extern func @printf variadic
}
"#;

fn globals_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    // The runtime hands out slots exactly as the compiler placed them.
    let small = cx.global("small")?;
    let big = cx.global("big")?;
    let table = cx.global("table")?;
    assert!(
        matches!(small, GlobalSlot::Shared(_)),
        "small should be team-shared"
    );
    assert!(
        matches!(big, GlobalSlot::Device(_)),
        "big exceeds the budget"
    );
    assert!(
        matches!(table, GlobalSlot::Device(_)),
        "const stays device-resident"
    );
    let instance = cx.instance;
    team.serial("use", |lane| {
        if let GlobalSlot::Shared(buf) = small {
            lane.sh_st::<u8>(&buf, 0, instance as u8)?;
            assert_eq!(lane.sh_ld::<u8>(&buf, 0)?, instance as u8);
        }
        if let GlobalSlot::Device(ptr) = big {
            lane.st::<u64>(ptr, 1)?;
        }
        dl_printf(lane, "ok %d\n", &[instance.into()])?;
        Ok(())
    })?;
    Ok(0)
}

#[test]
fn global_placements_flow_to_runtime_slots() {
    let app = HostApp::new("globals", GLOBALS_MODULE, globals_main);
    let image = Loader::default().compile_app(&app).unwrap();
    assert_eq!(
        image.global_placements["small"],
        GlobalPlacement::TeamShared
    );
    assert_eq!(
        image.global_placements["big"],
        GlobalPlacement::DeviceGlobal
    );
    assert_eq!(image.global_placements["table"], GlobalPlacement::Constant);
    assert_eq!(image.isolation_hazards(), vec!["big"]);
    assert!(image
        .diagnostics
        .warnings()
        .any(|d| d.message.contains("@big")));

    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 3,
        thread_limit: 32,
        ..Default::default()
    };
    let res = run_ensemble(
        &mut gpu,
        &app,
        &parse_arg_file("x\n").unwrap(),
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(res.all_succeeded(), "{:?}", res.instances);
}

#[test]
fn disabling_the_transform_changes_runtime_placement() {
    let app = HostApp::new("globals", GLOBALS_MODULE, |team, cx| {
        // Now even @small must be a (hazardous) device global.
        assert!(matches!(cx.global("small")?, GlobalSlot::Device(_)));
        team.serial("noop", |_| Ok(()))?;
        Ok(0)
    });
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 2,
        thread_limit: 32,
        compiler: CompilerOptions {
            globals_to_shared: false,
            ..CompilerOptions::default()
        },
        ..Default::default()
    };
    let res = run_ensemble(
        &mut gpu,
        &app,
        &parse_arg_file("x\n").unwrap(),
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(res.all_succeeded(), "{:?}", res.instances);
}

const HOST_ONLY_MODULE: &str = r#"
module "forking" {
  func @main arity=2 calls(@fork)
  extern func @fork
}
"#;

#[test]
fn host_only_calls_fail_compilation() {
    let app = HostApp::new("forking", HOST_ONLY_MODULE, |_, _| Ok(0));
    let mut gpu = Gpu::a100();
    let err = Loader::default()
        .run(&mut gpu, &app, &[], HostServices::default())
        .unwrap_err();
    assert!(err.to_string().contains("compilation failed"), "{err}");
}

#[test]
fn benchmarks_expose_expansion_analysis() {
    // All four benchmarks carry order-independent parallel regions, so the
    // [27] multi-team expansion is allowed — and ensemble execution is the
    // alternative this paper explores when it is not.
    for app in ensemble_gpu::apps::all_apps() {
        let image = Loader::default().compile_app(&app).unwrap();
        assert!(
            image.expansion.multi_team_eligible,
            "{} should be expansion-eligible",
            app.name
        );
        assert!(image.expansion.parallel_regions >= 1);
    }
}
