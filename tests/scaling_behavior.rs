//! Integration tests asserting the paper's §4.3 observations hold on the
//! simulated device — the qualitative content of Figure 6.
//!
//! These use reduced workload sizes so the whole file runs in seconds; the
//! full-size sweep lives in the `figure6` binary and the criterion benches.

use ensemble_gpu::core::{relative_speedup, run_ensemble, EnsembleOptions, HostApp};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

fn kernel_time(app: &HostApp, argv: &[&str], n: u32, thread_limit: u32) -> Option<f64> {
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit,
        ..Default::default()
    };
    let lines = vec![argv.iter().map(|s| s.to_string()).collect()];
    let res = run_ensemble(&mut gpu, app, &lines, &opts, HostServices::default()).unwrap();
    if res.any_oom() {
        return None;
    }
    assert!(res.all_succeeded());
    Some(res.kernel_time_s)
}

fn speedup_curve(app: &HostApp, argv: &[&str], thread_limit: u32, ns: &[u32]) -> Vec<f64> {
    let t1 = kernel_time(app, argv, 1, thread_limit).expect("single instance runs");
    ns.iter()
        .map(|&n| {
            let tn = kernel_time(app, argv, n, thread_limit).expect("config runs");
            relative_speedup(t1, n, tn).expect("measured times are positive")
        })
        .collect()
}

const NS: [u32; 5] = [2, 4, 8, 16, 32];

#[test]
fn all_benchmarks_scale_sublinearly_but_monotonically() {
    let cases: Vec<(HostApp, Vec<&str>)> = vec![
        (
            ensemble_gpu::apps::xsbench::app(),
            vec!["-l", "60", "-g", "12"],
        ),
        (
            ensemble_gpu::apps::rsbench::app(),
            vec!["-l", "60", "-w", "8"],
        ),
        (ensemble_gpu::apps::amgmk::app(), vec!["-n", "6", "-s", "4"]),
    ];
    for (app, argv) in cases {
        for tl in [32u32, 1024] {
            let curve = speedup_curve(&app, &argv, tl, &NS);
            for (i, (&n, &s)) in NS.iter().zip(&curve).enumerate() {
                assert!(
                    s <= n as f64 * 1.001,
                    "{} tl={tl}: superlinear at n={n}: {s}",
                    app.name
                );
                assert!(s >= 1.0, "{} tl={tl}: slowdown at n={n}: {s}", app.name);
                if i > 0 {
                    assert!(
                        s >= curve[i - 1] * 0.95,
                        "{} tl={tl}: non-monotone curve {curve:?}",
                        app.name
                    );
                }
            }
            // Real parallelism: 32 instances deliver at least 10x.
            assert!(
                *curve.last().unwrap() > 10.0,
                "{} tl={tl}: too little ensemble benefit: {curve:?}",
                app.name
            );
        }
    }
}

#[test]
fn scaling_gap_grows_with_instances() {
    // §4.3: "As the number of instances increased, the scaling gap became
    // more pronounced" — efficiency (speedup / N) decreases with N.
    let app = ensemble_gpu::apps::xsbench::app();
    let curve = speedup_curve(&app, &["-l", "60", "-g", "12"], 32, &NS);
    let effs: Vec<f64> = NS.iter().zip(&curve).map(|(&n, &s)| s / n as f64).collect();
    for w in effs.windows(2) {
        assert!(w[1] <= w[0] + 1e-6, "efficiency increased: {effs:?}");
    }
}

#[test]
fn amgmk_suffers_most_at_thread_limit_1024() {
    // §4.3: the gap is "particularly notable in the case of AMGmk with a
    // thread limit of 1024". This needs the full-size workload — a
    // 216-row matrix cannot occupy 1024 threads, let alone stress DRAM.
    let amg = ensemble_gpu::apps::amgmk::app();
    let xs = ensemble_gpu::apps::xsbench::app();
    let rs = ensemble_gpu::apps::rsbench::app();
    let amg_s = speedup_curve(&amg, &["-n", "10", "-s", "6"], 1024, &[64])[0];
    let xs_s = speedup_curve(&xs, &["-l", "120", "-g", "16"], 1024, &[64])[0];
    let rs_s = speedup_curve(&rs, &["-l", "120", "-w", "8"], 1024, &[64])[0];
    assert!(
        amg_s < xs_s && amg_s < rs_s,
        "AMGmk must scale worst at 1024: amg={amg_s:.1} xs={xs_s:.1} rs={rs_s:.1}"
    );
}

#[test]
fn amgmk_loses_more_at_1024_than_at_32() {
    let amg = ensemble_gpu::apps::amgmk::app();
    let s32 = speedup_curve(&amg, &["-n", "10", "-s", "6"], 32, &[64])[0];
    let s1024 = speedup_curve(&amg, &["-n", "10", "-s", "6"], 1024, &[64])[0];
    assert!(
        s1024 < s32,
        "AMGmk: thread limit 1024 ({s1024:.1}x) must scale worse than 32 ({s32:.1}x)"
    );
}

#[test]
fn compute_bound_rsbench_scales_best() {
    let rs = ensemble_gpu::apps::rsbench::app();
    let xs = ensemble_gpu::apps::xsbench::app();
    for tl in [32u32, 1024] {
        let rs_s = speedup_curve(&rs, &["-l", "60", "-w", "8"], tl, &[32])[0];
        let xs_s = speedup_curve(&xs, &["-l", "60", "-g", "12"], tl, &[32])[0];
        assert!(
            rs_s >= xs_s * 0.98,
            "tl={tl}: RSBench ({rs_s:.1}x) should scale at least as well as XSBench ({xs_s:.1}x)"
        );
    }
}

#[test]
fn pagerank_oom_matches_paper_boundary() {
    // §4.3: results only for 2 and 4 instances of Page-Rank.
    let pr = ensemble_gpu::apps::pagerank::app();
    let argv = ["-v", "400", "-d", "4", "-i", "2"];
    assert!(kernel_time(&pr, &argv, 2, 32).is_some());
    assert!(kernel_time(&pr, &argv, 4, 32).is_some());
    assert!(kernel_time(&pr, &argv, 8, 32).is_none());
    assert!(kernel_time(&pr, &argv, 16, 32).is_none());
}

#[test]
fn single_team_cannot_saturate_the_gpu() {
    // The paper's motivation: one team leaves the device mostly idle; the
    // issue and DRAM utilization of a 1-instance launch must be tiny.
    let app = ensemble_gpu::apps::xsbench::app();
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 1,
        thread_limit: 1024,
        ..Default::default()
    };
    let res = run_ensemble(
        &mut gpu,
        &app,
        &[vec!["-l".into(), "60".into(), "-g".into(), "12".into()]],
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(res.report.issue_utilization < 0.05);
    assert!(res.report.dram_utilization < 0.05);
}
