//! The three execution models of the direct-GPU-compilation lineage, side
//! by side on a real benchmark:
//!
//! * \[26\]: single-team execution (the plain loader);
//! * \[27\]: multi-team expansion of one instance (`run_multi_team`);
//! * this paper: ensemble execution of N instances (`run_ensemble`),
//!   plus the batched extension past the memory wall.

use ensemble_gpu::apps;
use ensemble_gpu::core::{
    run_ensemble, run_ensemble_batched, run_multi_team, EnsembleOptions, Loader,
};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

const ARGS: [&str; 4] = ["-l", "120", "-g", "16"];

fn checksum(stdout: &str) -> f64 {
    stdout
        .lines()
        .find(|l| l.starts_with("Verification checksum:"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("benchmark prints a checksum")
}

#[test]
fn all_three_modes_agree_on_results() {
    let app = apps::xsbench::app();
    let mut gpu = Gpu::a100();

    let single = Loader {
        thread_limit: 128,
        ..Default::default()
    }
    .run(&mut gpu, &app, &ARGS, HostServices::default())
    .unwrap();
    assert_eq!(single.exit_code, Some(0));

    let multi = run_multi_team(&mut gpu, &app, &ARGS, 8, 128, HostServices::default()).unwrap();
    assert_eq!(multi.exit_code, Some(0), "trap: {:?}", multi.trap);

    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 4,
        thread_limit: 128,
        ..Default::default()
    };
    let lines = vec![ARGS.iter().map(|s| s.to_string()).collect()];
    let ens = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
    assert!(ens.all_succeeded());

    let c = checksum(&single.stdout);
    assert_eq!(c, checksum(&multi.stdout), "multi-team changed the answer");
    for out in &ens.stdout {
        assert_eq!(c, checksum(out), "ensemble changed the answer");
    }
}

#[test]
fn multi_team_beats_single_team_on_one_instance() {
    // [27]'s claim: expanding parallel regions across teams speeds up one
    // instance (the serial parts stay serial, Amdahl applies).
    let app = apps::xsbench::app();
    let mut gpu = Gpu::a100();
    let single = Loader {
        thread_limit: 128,
        ..Default::default()
    }
    .run(&mut gpu, &app, &ARGS, HostServices::default())
    .unwrap();
    let multi = run_multi_team(&mut gpu, &app, &ARGS, 16, 128, HostServices::default()).unwrap();
    assert!(
        multi.kernel_time_s < single.report.sim_time_s,
        "multi-team {:.3e}s should beat single-team {:.3e}s",
        multi.kernel_time_s,
        single.report.sim_time_s
    );
}

#[test]
fn ensemble_beats_everything_on_independent_inputs() {
    // This paper's claim, end to end: for N independent inputs the
    // ensemble kernel beats N runs of either earlier mode.
    let n = 8u32;
    let app = apps::xsbench::app();
    let mut gpu = Gpu::a100();

    let single = Loader {
        thread_limit: 128,
        ..Default::default()
    }
    .run(&mut gpu, &app, &ARGS, HostServices::default())
    .unwrap();
    let n_single = n as f64 * single.report.sim_time_s;

    let multi = run_multi_team(&mut gpu, &app, &ARGS, n, 128, HostServices::default()).unwrap();
    let n_multi = n as f64 * multi.kernel_time_s;

    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit: 128,
        ..Default::default()
    };
    let lines = vec![ARGS.iter().map(|s| s.to_string()).collect()];
    let ens = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();

    assert!(
        ens.kernel_time_s < n_multi,
        "{} vs {}",
        ens.kernel_time_s,
        n_multi
    );
    assert!(
        ens.kernel_time_s < n_single,
        "{} vs {}",
        ens.kernel_time_s,
        n_single
    );
}

#[test]
fn batched_ensemble_completes_what_concurrent_cannot() {
    // Paper-scale Page-Rank at 8 instances: concurrent OOMs (the paper's
    // wall), batched-by-4 completes with correct results.
    let app = apps::pagerank::app();
    let argv: Vec<String> = ["-v", "200", "-d", "4", "-i", "2"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: 8,
        thread_limit: 32,
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let concurrent = run_ensemble(
        &mut gpu,
        &app,
        std::slice::from_ref(&argv),
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(concurrent.any_oom());

    let batched = run_ensemble_batched(&mut gpu, &app, &[argv], &opts, 4).unwrap();
    assert!(batched.all_succeeded(), "{:?}", batched.instances);
    let reference = apps::pagerank::reference_checksum(&apps::pagerank::PrParams {
        vertices: 200,
        degree: 4,
        iterations: 2,
    });
    for out in &batched.stdout {
        let printed = checksum(out);
        assert!((printed - reference).abs() <= reference.abs() * 1e-9);
    }
    assert_eq!(gpu.mem.stats().live_allocations, 0);
}
