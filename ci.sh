#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Mirrors what the acceptance
# checks run, plus formatting and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== prof: figure6 smoke vs golden snapshot =="
PROF_TMP="$(mktemp -d)"
trap 'rm -rf "$PROF_TMP"' EXIT
cargo run -q --release -p dgc-bench --bin figure6 -- \
    --smoke --thread-limit 32 --metrics-out "$PROF_TMP/smoke_tl32.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_tl32.jsonl "$PROF_TMP/smoke_tl32.jsonl" --tolerance 0.02

echo "== prof: chrome trace export validates =="
printf -- '-l 60 -g 16\n-l 60 -g 16\n' > "$PROF_TMP/args.txt"
cargo run -q --release -p ensemble-cli -- xsbench -f "$PROF_TMP/args.txt" \
    -n 4 -t 32 --quiet --trace-out "$PROF_TMP/trace.json" \
    --metrics-out "$PROF_TMP/metrics.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin trace-check -- "$PROF_TMP/trace.json"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
