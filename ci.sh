#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Mirrors what the acceptance
# checks run, plus formatting and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== prof: figure6 smoke vs golden snapshot =="
PROF_TMP="$(mktemp -d)"
trap 'rm -rf "$PROF_TMP"' EXIT
cargo run -q --release -p dgc-bench --bin figure6 -- \
    --smoke --thread-limit 32 --metrics-out "$PROF_TMP/smoke_tl32.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_tl32.jsonl "$PROF_TMP/smoke_tl32.jsonl" --tolerance 0.02

echo "== prof: chrome trace export validates =="
printf -- '-l 60 -g 16\n-l 60 -g 16\n' > "$PROF_TMP/args.txt"
cargo run -q --release -p ensemble-cli -- xsbench -f "$PROF_TMP/args.txt" \
    -n 4 -t 32 --cycle-args --quiet --trace-out "$PROF_TMP/trace.json" \
    --metrics-out "$PROF_TMP/metrics.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin trace-check -- "$PROF_TMP/trace.json"

echo "== fault: injected OOM recovery vs golden snapshot =="
# Page-Rank-shaped memory wall: the checked-in plan forces device OOM at
# concurrency >= 5, so the resilient driver must split 8 -> 4 and recover
# every instance — a non-zero exit here means recovery regressed.
printf -- '-v 400 -d 4 -i 2\n' > "$PROF_TMP/pr_args.txt"
cargo run -q --release -p ensemble-cli -- pagerank -f "$PROF_TMP/pr_args.txt" \
    -n 8 -t 32 --cycle-args --quiet --faults results/fault_plan.json --auto-batch --max-attempts 4 \
    --metrics-out "$PROF_TMP/smoke_faults.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_faults.jsonl "$PROF_TMP/smoke_faults.jsonl" --tolerance 0.02

echo "== sched: multi-device smoke sweep vs golden snapshot =="
# Two-device heterogeneous fleet (a100 + half-derated a100): every
# workload x instance count x placement policy, gated on makespan. A
# regression here means the cost model or a placement policy drifted.
cargo run -q --release -p dgc-bench --bin sched_sweep -- \
    --smoke --metrics-out "$PROF_TMP/smoke_sched.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_sched.jsonl "$PROF_TMP/smoke_sched.jsonl" --tolerance 0.02

echo "== bench: perf trajectory vs golden snapshot =="
# Self-benchmark: wall-clock the pinned figure-6 smoke sweep and a
# sharded two-device run, refresh BENCH_ensemble.json at the repo root,
# and gate against the golden. Simulated cycles and instance counts are
# deterministic (tight tolerance); wall time only fails on a
# catastrophic (>= 10x) slowdown, since CI machines are noisy.
cargo run -q --release -p dgc-bench --bin bench_harness -- \
    --out BENCH_ensemble.json --golden results/bench_golden.json \
    --tolerance 0.05 --wall-factor 10

echo "== insight: ledger trend gate + critical-path/flamegraph smoke =="
# Append the fresh bench run to a working copy of the checked-in ledger
# (CI must not dirty the tree), render the trend report, and gate the
# new rates against the trailing median. Wall-clock rates are noisy
# across machines, so the tolerance is loose — the gate exists to catch
# collapses, not jitter.
cp results/ledger.jsonl "$PROF_TMP/ledger.jsonl"
cargo run -q --release -p dgc-insight --bin dgc-insight -- append \
    --bench BENCH_ensemble.json --ledger "$PROF_TMP/ledger.jsonl"
cargo run -q --release -p dgc-insight --bin dgc-insight -- report \
    --ledger "$PROF_TMP/ledger.jsonl" --out "$PROF_TMP/ledger_report.md"
test -s "$PROF_TMP/ledger_report.md"
cargo run -q --release -p dgc-insight --bin dgc-insight -- check \
    --ledger "$PROF_TMP/ledger.jsonl" --tolerance 0.8
# Critical-path report + flamegraph from a figure-6-shaped run: the
# report must certify the bit-exact makespan replay, and the folded
# stacks must pass the format check.
cargo run -q --release -p ensemble-cli -- xsbench -f "$PROF_TMP/args.txt" \
    -n 4 -t 32 --cycle-args --quiet \
    --insight-out "$PROF_TMP/insight.md" --flame-out "$PROF_TMP/flame.folded" > /dev/null
grep -q "reproduces it bit-exactly" "$PROF_TMP/insight.md"
cargo run -q --release -p dgc-insight --bin dgc-insight -- flame-check "$PROF_TMP/flame.folded"

echo "== monitor: OpenMetrics lint + SLO burn-rate gate + dashboard =="
# Figure-6 smoke sweep streaming live OpenMetrics snapshots from the
# background monitor thread. The log must lint under the strict
# re-parser (render(parse(x)) == x) and satisfy the checked-in SLO spec.
cargo run -q --release -p dgc-bench --bin figure6 -- \
    --smoke --thread-limit 32 --monitor-out "$PROF_TMP/snapshots.om" \
    --monitor-interval 200 > /dev/null
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- \
    lint "$PROF_TMP/snapshots.om"
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec results/slo_smoke.json --snapshots "$PROF_TMP/snapshots.om" \
    --json "$PROF_TMP/slo_verdict.json"
grep -q '"verdict": "ok"' "$PROF_TMP/slo_verdict.json"
# Exit-code contract (prof-diff convention): a breaching spec must exit
# 1 and a malformed spec must exit 2 — not crash, not pass.
printf '%s\n' '{ "schema": 1, "slos": [ { "name": "impossible", "target": 1.0, "objective": "dgc_kernel_launches_total < 0" } ] }' \
    > "$PROF_TMP/slo_breach.json"
set +e
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec "$PROF_TMP/slo_breach.json" --snapshots "$PROF_TMP/snapshots.om" > /dev/null
breach_code=$?
echo '{ not json' > "$PROF_TMP/slo_bad.json"
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec "$PROF_TMP/slo_bad.json" --snapshots "$PROF_TMP/snapshots.om" > /dev/null 2>&1
bad_code=$?
set -e
test "$breach_code" -eq 1
test "$bad_code" -eq 2
# Self-contained HTML dashboard: time series + SLO budget bars + blame
# rows from the earlier trace. Must render non-empty with inline SVG and
# no external references.
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- render \
    --snapshots "$PROF_TMP/snapshots.om" --spec results/slo_smoke.json \
    --trace "$PROF_TMP/trace.json" --out "$PROF_TMP/dashboard.html"
test -s "$PROF_TMP/dashboard.html"
grep -q "<svg" "$PROF_TMP/dashboard.html"
! grep -q 'https://' "$PROF_TMP/dashboard.html"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
