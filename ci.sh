#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Mirrors what the acceptance
# checks run, plus formatting and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
