#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass. Mirrors what the acceptance
# checks run, plus formatting and lints.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== prof: figure6 smoke vs golden snapshot =="
PROF_TMP="$(mktemp -d)"
trap 'rm -rf "$PROF_TMP"' EXIT
cargo run -q --release -p dgc-bench --bin figure6 -- \
    --smoke --thread-limit 32 --metrics-out "$PROF_TMP/smoke_tl32.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_tl32.jsonl "$PROF_TMP/smoke_tl32.jsonl" --tolerance 0.02

echo "== prof: chrome trace export validates =="
printf -- '-l 60 -g 16\n-l 60 -g 16\n' > "$PROF_TMP/args.txt"
cargo run -q --release -p ensemble-cli -- xsbench -f "$PROF_TMP/args.txt" \
    -n 4 -t 32 --cycle-args --quiet --trace-out "$PROF_TMP/trace.json" \
    --metrics-out "$PROF_TMP/metrics.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin trace-check -- "$PROF_TMP/trace.json"

echo "== fault: injected OOM recovery vs golden snapshot =="
# Page-Rank-shaped memory wall: the checked-in plan forces device OOM at
# concurrency >= 5, so the resilient driver must split 8 -> 4 and recover
# every instance — a non-zero exit here means recovery regressed.
printf -- '-v 400 -d 4 -i 2\n' > "$PROF_TMP/pr_args.txt"
# --no-mem-aware pins the legacy OOM-then-halve path this golden was
# recorded on; the memory-aware alternative is gated separately below.
cargo run -q --release -p ensemble-cli -- pagerank -f "$PROF_TMP/pr_args.txt" \
    -n 8 -t 32 --cycle-args --quiet --faults results/fault_plan.json --auto-batch --max-attempts 4 \
    --no-mem-aware --metrics-out "$PROF_TMP/smoke_faults.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_faults.jsonl "$PROF_TMP/smoke_faults.jsonl" --tolerance 0.02

echo "== mem: memory-aware packing vs OOM-then-halve =="
# Six paper-scale PageRank instances on one 40 GB A100: four fit. The
# legacy path discovers that by OOM-ing (split 6 -> 3, two recoveries);
# the memory-aware path measures peaks in pilot runs and packs 4+2 up
# front — same instances, zero OOMs, one attempt.
printf -- '-v 200 -i 1\n' > "$PROF_TMP/mem_args.txt"
cargo run -q --release -p ensemble-cli -- pagerank -f "$PROF_TMP/mem_args.txt" \
    -n 6 -t 32 --cycle-args --auto-batch --max-attempts 4 --no-mem-aware --quiet \
    --metrics-out "$PROF_TMP/mem_legacy.jsonl" > /dev/null
grep -q '"oom_splits":1' "$PROF_TMP/mem_legacy.jsonl"
grep -q '"recovered":2' "$PROF_TMP/mem_legacy.jsonl"
cargo run -q --release -p ensemble-cli -- pagerank -f "$PROF_TMP/mem_args.txt" \
    -n 6 -t 32 --cycle-args --auto-batch --max-attempts 4 --quiet \
    --metrics-out "$PROF_TMP/smoke_mem.jsonl" > /dev/null
grep -q '"oom_splits":0' "$PROF_TMP/smoke_mem.jsonl"
grep -q '"oom":0' "$PROF_TMP/smoke_mem.jsonl"
grep -q '"attempts":1' "$PROF_TMP/smoke_mem.jsonl"
# Packing must beat halving end to end, not just avoid the OOMs.
legacy_t=$(grep '"record":"launch"' "$PROF_TMP/mem_legacy.jsonl" | grep -o '"total_time_s":[0-9.e-]*' | cut -d: -f2)
mem_t=$(grep '"record":"launch"' "$PROF_TMP/smoke_mem.jsonl" | grep -o '"total_time_s":[0-9.e-]*' | cut -d: -f2)
awk -v mem="$mem_t" -v legacy="$legacy_t" 'BEGIN { exit !(mem + 0 < legacy + 0) }'
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_mem.jsonl "$PROF_TMP/smoke_mem.jsonl" --tolerance 0.02

echo "== sched: multi-device smoke sweep vs golden snapshot =="
# Two-device heterogeneous fleet (a100 + half-derated a100): every
# workload x instance count x placement policy, gated on makespan. A
# regression here means the cost model or a placement policy drifted.
cargo run -q --release -p dgc-bench --bin sched_sweep -- \
    --smoke --metrics-out "$PROF_TMP/smoke_sched.jsonl" > /dev/null
cargo run -q --release -p dgc-prof --bin prof-diff -- \
    results/smoke_sched.jsonl "$PROF_TMP/smoke_sched.jsonl" --tolerance 0.02

echo "== bench: perf trajectory vs golden snapshot =="
# Self-benchmark: wall-clock the pinned figure-6 smoke sweep and a
# sharded two-device run, refresh BENCH_ensemble.json at the repo root,
# and gate against the golden. Simulated cycles and instance counts are
# deterministic (tight tolerance); wall time only fails on a
# catastrophic (>= 10x) slowdown, since CI machines are noisy.
cargo run -q --release -p dgc-bench --bin bench_harness -- \
    --out BENCH_ensemble.json --golden results/bench_golden.json \
    --tolerance 0.05 --wall-factor 10

echo "== insight: ledger trend gate + critical-path/flamegraph smoke =="
# Append the fresh bench run to a working copy of the checked-in ledger
# (CI must not dirty the tree), render the trend report, and gate the
# new rates against the trailing median. Wall-clock rates are noisy
# across machines, so the tolerance is loose — the gate exists to catch
# collapses, not jitter.
cp results/ledger.jsonl "$PROF_TMP/ledger.jsonl"
cargo run -q --release -p dgc-insight --bin dgc-insight -- append \
    --bench BENCH_ensemble.json --ledger "$PROF_TMP/ledger.jsonl"
cargo run -q --release -p dgc-insight --bin dgc-insight -- report \
    --ledger "$PROF_TMP/ledger.jsonl" --out "$PROF_TMP/ledger_report.md"
test -s "$PROF_TMP/ledger_report.md"
cargo run -q --release -p dgc-insight --bin dgc-insight -- check \
    --ledger "$PROF_TMP/ledger.jsonl" --tolerance 0.8
# Critical-path report + flamegraph from a figure-6-shaped run: the
# report must certify the bit-exact makespan replay, and the folded
# stacks must pass the format check.
cargo run -q --release -p ensemble-cli -- xsbench -f "$PROF_TMP/args.txt" \
    -n 4 -t 32 --cycle-args --quiet \
    --insight-out "$PROF_TMP/insight.md" --flame-out "$PROF_TMP/flame.folded" > /dev/null
grep -q "reproduces it bit-exactly" "$PROF_TMP/insight.md"
cargo run -q --release -p dgc-insight --bin dgc-insight -- flame-check "$PROF_TMP/flame.folded"

echo "== monitor: OpenMetrics lint + SLO burn-rate gate + dashboard =="
# Figure-6 smoke sweep streaming live OpenMetrics snapshots from the
# background monitor thread. The log must lint under the strict
# re-parser (render(parse(x)) == x) and satisfy the checked-in SLO spec.
cargo run -q --release -p dgc-bench --bin figure6 -- \
    --smoke --thread-limit 32 --monitor-out "$PROF_TMP/snapshots.om" \
    --monitor-interval 200 > /dev/null
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- \
    lint "$PROF_TMP/snapshots.om"
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec results/slo_smoke.json --snapshots "$PROF_TMP/snapshots.om" \
    --json "$PROF_TMP/slo_verdict.json"
grep -q '"verdict": "ok"' "$PROF_TMP/slo_verdict.json"
# Exit-code contract (prof-diff convention): a breaching spec must exit
# 1 and a malformed spec must exit 2 — not crash, not pass.
printf '%s\n' '{ "schema": 1, "slos": [ { "name": "impossible", "target": 1.0, "objective": "dgc_kernel_launches_total < 0" } ] }' \
    > "$PROF_TMP/slo_breach.json"
set +e
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec "$PROF_TMP/slo_breach.json" --snapshots "$PROF_TMP/snapshots.om" > /dev/null
breach_code=$?
echo '{ not json' > "$PROF_TMP/slo_bad.json"
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- slo \
    --spec "$PROF_TMP/slo_bad.json" --snapshots "$PROF_TMP/snapshots.om" > /dev/null 2>&1
bad_code=$?
set -e
test "$breach_code" -eq 1
test "$bad_code" -eq 2
# Self-contained HTML dashboard: time series + SLO budget bars + blame
# rows from the earlier trace. Must render non-empty with inline SVG and
# no external references.
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- render \
    --snapshots "$PROF_TMP/snapshots.om" --spec results/slo_smoke.json \
    --trace "$PROF_TMP/trace.json" --out "$PROF_TMP/dashboard.html"
test -s "$PROF_TMP/dashboard.html"
grep -q "<svg" "$PROF_TMP/dashboard.html"
! grep -q 'https://' "$PROF_TMP/dashboard.html"

echo "== serve: crash-safe daemon — journal, kill -9, resume, exit contract =="
# The serving tentpole, end to end against the release binary. The
# write-ahead journal contract: results after `run → crash → resume`
# must be byte-identical to an uninterrupted run.
SERVE="$PROF_TMP/serve"
mkdir -p "$SERVE"
# Invoke the built binary directly (not `cargo run`): the crash drills
# signal the daemon's own PID, and the cargo wrapper neither forwards
# SIGTERM nor survives SIGKILL semantics.
dgc_serve() { ./target/release/dgc-serve "$@"; }
cat > "$SERVE/jobs.jsonl" <<'EOF'
# serve CI workload: two apps, small args (fast even in simulation)
{"op":"submit","job":"s1","app":"xsbench","args":"-g 500 -l 16"}
{"op":"submit","job":"s2","app":"xsbench","args":["-g","400","-l","16"]}
{"op":"submit","job":"s3","app":"amgmk","args":"-i 2 -n 16"}
{"op":"submit","job":"s4","app":"amgmk","args":"-i 3 -n 16","deadline_s":1000}
EOF
# Golden: uninterrupted run, all jobs succeed (exit 0).
dgc_serve run --journal "$SERVE/golden.journal" --jobs "$SERVE/jobs.jsonl" \
    --results "$SERVE/golden.jsonl" --quiet
# Crash drill 1 (deterministic): abort the daemon once the journal hits
# 600 bytes — lands mid-run, after real work is committed. SIGABRT=134.
set +e
dgc_serve run --journal "$SERVE/crash.journal" --jobs "$SERVE/jobs.jsonl" \
    --crash-after-journal-bytes 600 --quiet 2> /dev/null
crash_code=$?
set -e
test "$crash_code" -eq 134
dgc_serve resume --journal "$SERVE/crash.journal" --jobs "$SERVE/jobs.jsonl" \
    --results "$SERVE/crash_resumed.jsonl" --quiet
cmp "$SERVE/golden.jsonl" "$SERVE/crash_resumed.jsonl"
# Crash drill 2 (real kill -9): --wave-pause-ms holds each wave open
# after its `started` record is journaled, so SIGKILL lands mid-wave.
# If the race is lost and the run finishes first, resume is a no-op and
# the byte-identity check still must hold.
# Background drills invoke the binary directly (not the function):
# `fn &` backgrounds a subshell, so $! would name the wrapper and the
# signal would never reach the daemon's handler.
./target/release/dgc-serve run --journal "$SERVE/kill9.journal" --jobs "$SERVE/jobs.jsonl" \
    --wave-pause-ms 400 --quiet 2> /dev/null &
serve_pid=$!
sleep 0.5
kill -9 "$serve_pid" 2> /dev/null || true
wait "$serve_pid" 2> /dev/null || true
dgc_serve resume --journal "$SERVE/kill9.journal" --jobs "$SERVE/jobs.jsonl" \
    --results "$SERVE/kill9_resumed.jsonl" --quiet
cmp "$SERVE/golden.jsonl" "$SERVE/kill9_resumed.jsonl"
# Streaming admission over stdin, drained by an in-band op; the monitor
# snapshot log must lint like every other OpenMetrics producer.
printf '%s\n' \
    '{"op":"submit","job":"t1","app":"xsbench","args":"-g 300 -l 16"}' \
    '{"op":"drain"}' \
    | dgc_serve run --journal "$SERVE/stdin.journal" --stdin \
        --results "$SERVE/stdin.jsonl" --monitor-out "$SERVE/serve.om" \
        --monitor-interval 50 --quiet
grep -q '"status":"ok"' "$SERVE/stdin.jsonl"
cargo run -q --release -p dgc-monitor --bin dgc-monitor -- lint "$SERVE/serve.om"
# SIGTERM = graceful drain: finish in-flight work, write results, exit 0.
: > "$SERVE/watched.jsonl"
./target/release/dgc-serve run --journal "$SERVE/drain.journal" --watch "$SERVE/watched.jsonl" \
    --results "$SERVE/drain.jsonl" --quiet &
serve_pid=$!
printf '%s\n' '{"op":"submit","job":"w1","app":"xsbench","args":"-g 300 -l 16"}' \
    >> "$SERVE/watched.jsonl"
sleep 0.8
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q '"job":"w1","app":"xsbench","status":"ok"' "$SERVE/drain.jsonl"
# Exit contract: a cancelled job degrades the run (1)…
printf '%s\n' \
    '{"op":"submit","job":"c1","app":"xsbench","args":"-g 300 -l 16"}' \
    '{"op":"cancel","job":"c1"}' > "$SERVE/cancel.jsonl"
set +e
dgc_serve run --journal "$SERVE/cancel.journal" --jobs "$SERVE/cancel.jsonl" --quiet
degraded_code=$?
set -e
test "$degraded_code" -eq 1
# …and a corrupt journal is unrecoverable (2), never silently replayed.
sed '2s/^J1 ./J1 x/' "$SERVE/golden.journal" > "$SERVE/corrupt.journal"
set +e
dgc_serve status --journal "$SERVE/corrupt.journal" 2> /dev/null
corrupt_code=$?
set -e
test "$corrupt_code" -eq 2
# `status` replays the journal read-only and always exits 0.
dgc_serve status --journal "$SERVE/golden.journal" | grep -q 'ok=4'

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all green"
