//! The §3.1 packed `(N/M, M, 1)` instance mapping, plus the load-imbalance
//! statistics of heterogeneous ensembles.
//!
//! The paper describes packing `M` instances into one thread block as a
//! way to raise concurrency beyond the team count, at the price of giving
//! each instance `T/M` threads; it was left unimplemented in the proof of
//! concept. This example runs the same 16-instance RSBench ensemble at
//! M ∈ {1, 2, 4} and prints the trade, then shows how an uneven argument
//! file makes the whole launch wait on its slowest instance.
//!
//! ```text
//! cargo run --release --example packed_mapping
//! ```

use ensemble_gpu::core::{parse_arg_file, run_ensemble, EnsembleOptions, MappingStrategy};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

fn main() {
    let app = ensemble_gpu::apps::rsbench::app();
    let lines = parse_arg_file("-l 100 -w 8 -p 2\n").unwrap();

    println!("16 RSBench instances, thread limit 256, packed M per block:");
    println!(
        "{:>4} {:>8} {:>14} {:>12}",
        "M", "blocks", "threads/inst", "kernel ms"
    );
    for m in [1u32, 2, 4] {
        let mut gpu = Gpu::a100();
        let opts = EnsembleOptions {
            num_instances: 16,
            thread_limit: 256,
            mapping: if m == 1 {
                MappingStrategy::OnePerTeam
            } else {
                MappingStrategy::Packed { per_block: m }
            },
            ..Default::default()
        };
        let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default())
            .expect("packed launches run");
        assert!(res.all_succeeded());
        println!(
            "{m:>4} {:>8} {:>14} {:>12.3}",
            res.report.blocks,
            256 / m,
            res.kernel_time_s * 1e3
        );
    }
    println!();
    println!("With blocks plentiful (16 ≪ 108 SMs) M = 1 keeps each instance's");
    println!("parallelism highest; packing pays off only when instances outnumber");
    println!("schedulable blocks — the regime §3.1 targets.\n");

    // ---- Load imbalance under a heterogeneous argument file. -----------
    let uneven = parse_arg_file("-l 50 -w 8\n-l 50 -w 8\n-l 50 -w 8\n-l 2000 -w 8\n").unwrap();
    let mut gpu = Gpu::a100();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 64,
        ..Default::default()
    };
    let res = run_ensemble(&mut gpu, &app, &uneven, &opts, HostServices::default()).unwrap();
    println!("heterogeneous ensemble (three quick instances, one 40x bigger):");
    for (i, t) in res.instance_end_times_s.iter().enumerate() {
        println!("  instance {i} finished at {:.3} ms", t * 1e3);
    }
    println!(
        "  load imbalance (max/mean finish): {:.2} — the kernel is as long as\n  its slowest instance, the cost of the paper's static mapping",
        res.load_imbalance()
    );
}
