//! Host-RPC file I/O from device code — the Fig. 5(a) scenario where each
//! instance processes its own `data-K.bin`.
//!
//! Four instances each `fopen` the file named on their argument line, read
//! it into device memory, compute a checksum on the GPU, and write a
//! result file back through the filesystem service — all without the
//! application containing a single host-side line.
//!
//! ```text
//! cargo run --release --example rpc_file_io
//! ```

use ensemble_gpu::core::{parse_arg_file, run_ensemble, AppContext, EnsembleOptions, HostApp};
use ensemble_gpu::libc::dl_printf;
use ensemble_gpu::libc::file::{dl_fclose, dl_fopen, dl_fread, dl_fwrite};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::{Gpu, KernelError, TeamCtx};

const MODULE: &str = r#"
module "filesum" {
  func @main arity=2 calls(@process, @printf)
  func @process arity=2 calls(@fopen, @fread, @fwrite, @fclose, @malloc)
  extern func @printf variadic
  extern func @fopen
  extern func @fread
  extern func @fwrite
  extern func @fclose
  extern func @malloc
}
"#;

fn filesum_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let path = cx.argv.get(1).cloned().unwrap_or_default();
    let out_path = format!("{path}.sum");
    team.serial("process", |lane| {
        let Some(f) = dl_fopen(lane, &path, "rb")? else {
            dl_printf(lane, "cannot open %s\n", &[path.as_str().into()])?;
            return Ok(());
        };
        let buf = lane.dev_alloc(4096)?;
        let mut total = 0u64;
        let mut bytes = 0u64;
        loop {
            let n = dl_fread(lane, buf, 4096, f)?;
            if n == 0 {
                break;
            }
            for i in 0..n {
                total = total.wrapping_add(lane.ld::<u8>(buf.byte_add(i))? as u64);
            }
            bytes += n;
        }
        dl_fclose(lane, f)?;
        dl_printf(
            lane,
            "%s: %d bytes, checksum %d\n",
            &[path.as_str().into(), bytes.into(), total.into()],
        )?;
        // Write the checksum back as an 8-byte result file.
        let out = lane.dev_alloc(8)?;
        lane.st::<u64>(out, total)?;
        if let Some(fo) = dl_fopen(lane, &out_path, "wb")? {
            dl_fwrite(lane, out, 8, fo)?;
            dl_fclose(lane, fo)?;
        }
        Ok(())
    })?;
    Ok(0)
}

fn main() {
    let app = HostApp::new("filesum", MODULE, filesum_main);

    // The sandboxed in-memory filesystem the host RPC service exposes.
    let mut services = HostServices::default();
    for k in 1..=4u8 {
        let data: Vec<u8> = (0..1000u32).map(|i| (i as u8).wrapping_mul(k)).collect();
        services.add_file(&format!("data-{k}.bin"), data);
    }

    let lines = parse_arg_file("data-1.bin\ndata-2.bin\ndata-3.bin\ndata-4.bin\n").unwrap();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 32,
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, services).expect("launches");
    assert!(res.all_succeeded());
    for out in &res.stdout {
        print!("{out}");
    }
    println!(
        "\nRPC traffic: {} filesystem calls, {} stdio calls",
        res.rpc_stats.fs_calls, res.rpc_stats.stdio_calls
    );
    println!("{}", res.report.summary());
}
