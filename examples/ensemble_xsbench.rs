//! The paper's headline scenario: XSBench under ensemble execution.
//!
//! Sweeps the instance count at both thread limits and prints the relative
//! speedup table (`T1·N/TN`, Figure 6's metric), demonstrating how mapping
//! each application instance to one team fills the GPU that single-team
//! direct compilation leaves idle.
//!
//! ```text
//! cargo run --release --example ensemble_xsbench
//! ```

use ensemble_gpu::core::{relative_speedup, run_ensemble, EnsembleOptions};
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::Gpu;

fn main() {
    let app = ensemble_gpu::apps::xsbench::app();
    let args = vec![vec![
        "-l".to_string(),
        "300".into(),
        "-g".into(),
        "24".into(),
    ]];

    for thread_limit in [32u32, 1024] {
        println!("thread limit {thread_limit}:");
        println!(
            "{:>6} {:>12} {:>10} {:>10}",
            "N", "kernel ms", "speedup", "linear"
        );
        let mut t1 = None;
        for n in [1u32, 2, 4, 8, 16, 32, 64] {
            let mut gpu = Gpu::a100();
            let opts = EnsembleOptions {
                num_instances: n,
                thread_limit,
                ..Default::default()
            };
            let res = run_ensemble(&mut gpu, &app, &args, &opts, HostServices::default())
                .expect("xsbench ensembles launch");
            assert!(res.all_succeeded(), "instances must succeed");
            let t = res.kernel_time_s;
            let t1 = *t1.get_or_insert(t);
            println!(
                "{n:>6} {:>12.3} {:>10.1} {n:>10}",
                t * 1e3,
                relative_speedup(t1, n, t).expect("measured times are positive")
            );
        }
        println!();
    }
    println!("(compare Figure 6 of the paper: sublinear scaling with a");
    println!(" knee past 16 instances, up to ~51x at 64 instances)");
}
