//! Quickstart: compile a tiny "legacy CPU application" for the simulated
//! GPU with the direct-GPU-compilation pipeline and run it twice — once
//! through the plain single-team loader \[26\], once as a 4-instance
//! ensemble (this paper).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ensemble_gpu::core::{
    parse_arg_file, run_ensemble, AppContext, EnsembleOptions, HostApp, Loader,
};
use ensemble_gpu::libc::dl_printf;
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::{Gpu, KernelError, TeamCtx};

/// The application's module IR — what the compiler pipeline sees after
/// linking: a `main`, a parallel kernel, and libc references.
const MODULE: &str = r#"
module "saxpy" {
  func @main arity=2 calls(@parse, @saxpy, @printf)
  func @parse arity=2 calls(@atoi)
  func @saxpy arity=3 calls(@malloc) !parallel(1) !order_independent
  extern func @printf variadic
  extern func @atoi
  extern func @malloc
}
"#;

/// The application behaviour: `y = a*x + y` over `-n` elements, then print
/// a digest. This is the canonicalized `__user_main`.
fn saxpy_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 14);
    let a = 2.5f64;

    let (x, y) = team.serial("alloc", |lane| {
        Ok((lane.dev_alloc(8 * n)?, lane.dev_alloc(8 * n)?))
    })?;
    team.parallel_for("init", n, |i, lane| {
        lane.st_idx::<f64>(x, i, i as f64)?;
        lane.st_idx::<f64>(y, i, 1.0)
    })?;
    team.parallel_for("saxpy", n, |i, lane| {
        let xi = lane.ld_idx::<f64>(x, i)?;
        let yi = lane.ld_idx::<f64>(y, i)?;
        lane.work(2.0);
        lane.st_idx::<f64>(y, i, a * xi + yi)
    })?;
    let sum = team.parallel_for_reduce_f64("digest", n, |i, lane| lane.ld_idx::<f64>(y, i))?;

    team.serial("report", |lane| {
        dl_printf(lane, "saxpy n=%d digest=%.3e\n", &[n.into(), sum.into()])?;
        Ok(())
    })?;
    Ok(0)
}

fn main() {
    let app = HostApp::new("saxpy", MODULE, saxpy_main);

    // --- The compiler pipeline, inspectable. ---------------------------
    let image = Loader::default().compile_app(&app).expect("saxpy compiles");
    println!("compiled module:\n{}\n", image.module);
    println!(
        "entry = {}, RPC services = {:?}, multi-team eligible = {}\n",
        image.entry, image.rpc_services, image.expansion.multi_team_eligible
    );

    // --- Single-instance execution (the [26] loader). -------------------
    let mut gpu = Gpu::a100();
    let single = Loader::default()
        .run(&mut gpu, &app, &["-n", "16384"], HostServices::default())
        .expect("single run launches");
    println!("single instance:");
    print!("{}", single.stdout);
    println!("  {}\n", single.report.summary());

    // --- Ensemble execution (this paper). -------------------------------
    let lines = parse_arg_file("-n 16384\n-n 8192\n-n 4096\n-n 2048\n").unwrap();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 128,
        ..Default::default()
    };
    let ensemble = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default())
        .expect("ensemble launches");
    println!("4-instance ensemble:");
    for (i, out) in ensemble.stdout.iter().enumerate() {
        print!("  [{i}] {out}");
    }
    println!("  {}", ensemble.report.summary());
    println!(
        "  kernel {:.3} ms vs 4 sequential runs ≈ {:.3} ms",
        ensemble.kernel_time_s * 1e3,
        4.0 * single.report.sim_time_s * 1e3
    );
}
