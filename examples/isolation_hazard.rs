//! The §3.3 limitation, demonstrated: mutable globals break instance
//! isolation under ensemble execution — and the globals-to-shared
//! compiler transform (proposed in the paper as the fix) restores it.
//!
//! A counter global is incremented `-k` times by each instance. With the
//! transform disabled the counter lands in device-global memory and the
//! instances' updates interleave (each instance reads the others' traffic);
//! with the transform enabled every team gets its own shared-memory copy
//! and each instance sees exactly its own count.
//!
//! ```text
//! cargo run --release --example isolation_hazard
//! ```

use ensemble_gpu::compiler::CompilerOptions;
use ensemble_gpu::core::{
    parse_arg_file, run_ensemble, AppContext, EnsembleOptions, GlobalSlot, HostApp,
};
use ensemble_gpu::libc::dl_printf;
use ensemble_gpu::rpc::HostServices;
use ensemble_gpu::sim::{Gpu, KernelError, TeamCtx};

const MODULE: &str = r#"
module "counter" {
  global @hits size=8 align=8
  func @main arity=2 calls(@bump, @printf)
  func @bump arity=1
  extern func @printf variadic
}
"#;

fn counter_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let k: u64 = cx.argv.get(1).and_then(|v| v.parse().ok()).unwrap_or(10);
    let slot = cx.global("hits")?;
    let instance = cx.instance;
    team.serial("bump", |lane| {
        let final_count = match slot {
            GlobalSlot::Device(ptr) => {
                // Shared across *all* instances: a data race in spirit.
                let mut last = 0;
                for _ in 0..k {
                    last = lane.atomic_add_u64(ptr, 1)? + 1;
                }
                last
            }
            GlobalSlot::Shared(buf) => {
                // Team-local copy: perfectly isolated.
                let mut v = u64::from_le_bytes([
                    lane.sh_ld::<u8>(&buf, 0)?,
                    lane.sh_ld::<u8>(&buf, 1)?,
                    lane.sh_ld::<u8>(&buf, 2)?,
                    lane.sh_ld::<u8>(&buf, 3)?,
                    lane.sh_ld::<u8>(&buf, 4)?,
                    lane.sh_ld::<u8>(&buf, 5)?,
                    lane.sh_ld::<u8>(&buf, 6)?,
                    lane.sh_ld::<u8>(&buf, 7)?,
                ]);
                for _ in 0..k {
                    v += 1;
                }
                for (i, b) in v.to_le_bytes().iter().enumerate() {
                    lane.sh_st::<u8>(&buf, i, *b)?;
                }
                v
            }
        };
        dl_printf(
            lane,
            "instance %d incremented %d times, sees counter = %d\n",
            &[instance.into(), k.into(), final_count.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn run_with(globals_to_shared: bool) {
    let app = HostApp::new("counter", MODULE, counter_main);
    let lines = parse_arg_file("25\n25\n25\n25\n").unwrap();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 32,
        compiler: CompilerOptions {
            globals_to_shared,
            ..CompilerOptions::default()
        },
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default())
        .expect("counter app launches");
    println!(
        "globals-to-shared {}:",
        if globals_to_shared {
            "ON (isolated)"
        } else {
            "OFF (§3.3 hazard)"
        }
    );
    for out in &res.stdout {
        print!("  {out}");
    }
    println!();
}

fn main() {
    run_with(false);
    run_with(true);
    println!("with the transform off, later instances observe earlier instances'");
    println!("increments through the shared device global; with it on, every");
    println!("instance sees exactly its own 25.");
}
