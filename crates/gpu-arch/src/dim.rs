use serde::{Deserialize, Serialize};

/// A three-dimensional extent or index, as used for CUDA grids and blocks.
///
/// All components are at least 1 for extents; a default-constructed `Dim3`
/// is `(1, 1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A one-dimensional extent `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// A two-dimensional extent `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total number of elements covered by this extent.
    pub const fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linearize an index within this extent (x fastest, z slowest), the
    /// same ordering CUDA uses for thread ids within a block.
    pub const fn linear(&self, idx: Dim3) -> u64 {
        idx.x as u64 + self.x as u64 * (idx.y as u64 + self.y as u64 * idx.z as u64)
    }

    /// Inverse of [`Dim3::linear`].
    pub const fn delinearize(&self, lin: u64) -> Dim3 {
        let x = (lin % self.x as u64) as u32;
        let rest = lin / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Self::new(1, 1, 1)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Self::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Self::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Self::new(x, y, z)
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_components() {
        assert_eq!(Dim3::new(4, 3, 2).count(), 24);
        assert_eq!(Dim3::x(7).count(), 7);
        assert_eq!(Dim3::default().count(), 1);
    }

    #[test]
    fn linear_roundtrips() {
        let ext = Dim3::new(5, 4, 3);
        for z in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    let idx = Dim3::new(x, y, z);
                    let lin = ext.linear(idx);
                    assert_eq!(ext.delinearize(lin), idx);
                }
            }
        }
    }

    #[test]
    fn linear_is_x_fastest() {
        let ext = Dim3::new(8, 2, 1);
        assert_eq!(ext.linear(Dim3::new(3, 0, 0)), 3);
        assert_eq!(ext.linear(Dim3::new(0, 1, 0)), 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(5u32), Dim3::new(5, 1, 1));
        assert_eq!(Dim3::from((5u32, 2u32)), Dim3::new(5, 2, 1));
        assert_eq!(Dim3::from((5u32, 2u32, 3u32)), Dim3::new(5, 2, 3));
    }
}
