//! GPU hardware descriptions and occupancy mathematics.
//!
//! This crate is the "data sheet" layer of the simulated GPU stack: it knows
//! what a device looks like (streaming multiprocessors, warp width, memory
//! bandwidth, latencies) and how a kernel launch configuration maps onto the
//! hardware's resource limits (occupancy, waves). It contains no execution
//! machinery; `gpu-sim` consumes these descriptions.
//!
//! The default device is an NVIDIA A100-40GB-class accelerator, matching the
//! configuration used in the paper's evaluation (§4.2).

mod dim;
mod launch;
mod occupancy;
mod registry;
mod spec;

pub use dim::Dim3;
pub use launch::{LaunchConfig, LaunchError};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use registry::{derate, spec_by_name, DeviceRegistry, RegistryError};
pub use spec::{GpuSpec, MemoryModelParams};
