use serde::{Deserialize, Serialize};

/// Parameters of the analytic memory-system model used by the timing engine.
///
/// These knobs describe mechanisms, not benchmark-specific fudge: per-warp
/// memory-level parallelism bounds how much bandwidth one warp can extract,
/// the row-locality factors describe how DRAM efficiency degrades when many
/// distinct heap regions (one per ensemble instance) are streamed at once,
/// and the L2 parameters drive a capacity-based hit-rate estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModelParams {
    /// Maximum 32-byte sectors a single warp can keep in flight.
    pub max_outstanding_sectors_per_warp: u32,
    /// Average global-memory (DRAM) load-to-use latency in core cycles.
    pub dram_latency_cycles: u32,
    /// DRAM efficiency with a single active heap region (row-buffer friendly).
    pub dram_eff_single_region: f64,
    /// Asymptotic DRAM efficiency as the number of concurrently streamed,
    /// non-contiguous heap regions grows without bound.
    pub dram_eff_many_regions: f64,
    /// How fast efficiency decays toward the asymptote; larger is faster.
    pub region_interference_alpha: f64,
    /// L2 hit latency in core cycles (used to discount hits).
    pub l2_latency_cycles: u32,
    /// Fraction of L2 capacity usable by kernel data (tags, reserved ways).
    pub l2_usable_fraction: f64,
}

impl Default for MemoryModelParams {
    fn default() -> Self {
        Self {
            max_outstanding_sectors_per_warp: 24,
            dram_latency_cycles: 480,
            dram_eff_single_region: 0.92,
            dram_eff_many_regions: 0.65,
            region_interference_alpha: 0.06,
            l2_latency_cycles: 200,
            l2_usable_fraction: 0.85,
        }
    }
}

impl MemoryModelParams {
    /// DRAM efficiency for `regions` concurrently active heap regions.
    ///
    /// Monotone non-increasing in `regions`, equal to
    /// [`Self::dram_eff_single_region`] at 1 and approaching
    /// [`Self::dram_eff_many_regions`] as `regions` grows. This models the
    /// paper's §4.3 observation: ensemble instances allocate from disjoint
    /// heap areas, so concurrent blocks never share DRAM row locality.
    pub fn dram_efficiency(&self, regions: u32) -> f64 {
        let regions = regions.max(1);
        let span = self.dram_eff_single_region - self.dram_eff_many_regions;
        let decay = 1.0 / (1.0 + self.region_interference_alpha * (regions as f64 - 1.0));
        self.dram_eff_many_regions + span * decay
    }

    /// Peak bytes/cycle a single warp can extract from DRAM, given its MLP
    /// window and the load-to-use latency.
    pub fn warp_mlp_bytes_per_cycle(&self) -> f64 {
        self.max_outstanding_sectors_per_warp as f64 * 32.0 / self.dram_latency_cycles as f64
    }
}

/// Description of one GPU device.
///
/// The constructors provide data-sheet-level descriptions of real devices;
/// [`GpuSpec::a100_40gb`] is the paper's evaluation hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (wavefront width on AMD).
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u64,
    /// Shared memory limit for a single block, bytes.
    pub shared_mem_per_block: u64,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Core clock, MHz.
    pub clock_mhz: u32,
    /// Warp instructions each SM can issue per cycle (scheduler count).
    pub issue_slots_per_sm: u32,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bandwidth_gbps: f64,
    /// L2 cache size, bytes.
    pub l2_size_bytes: u64,
    /// Device (global) memory capacity, bytes.
    pub global_mem_bytes: u64,
    /// Host-device interconnect bandwidth, GB/s (PCIe4 x16 class).
    pub pcie_bandwidth_gbps: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Analytic memory-model parameters.
    pub mem_model: MemoryModelParams,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-40GB-class device (the paper's §4.2 configuration).
    pub fn a100_40gb() -> Self {
        Self {
            name: "NVIDIA A100 40GB (simulated)".into(),
            sm_count: 108,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block: 164 * 1024,
            registers_per_sm: 65_536,
            clock_mhz: 1410,
            issue_slots_per_sm: 4,
            dram_bandwidth_gbps: 1555.0,
            l2_size_bytes: 40 * 1024 * 1024,
            global_mem_bytes: 40 * 1024 * 1024 * 1024,
            pcie_bandwidth_gbps: 25.0,
            launch_overhead_us: 6.0,
            mem_model: MemoryModelParams::default(),
        }
    }

    /// NVIDIA V100-SXM2-16GB-class device.
    pub fn v100_16gb() -> Self {
        Self {
            name: "NVIDIA V100 16GB (simulated)".into(),
            sm_count: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 96 * 1024,
            shared_mem_per_block: 96 * 1024,
            registers_per_sm: 65_536,
            clock_mhz: 1530,
            issue_slots_per_sm: 4,
            dram_bandwidth_gbps: 900.0,
            l2_size_bytes: 6 * 1024 * 1024,
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            pcie_bandwidth_gbps: 16.0,
            launch_overhead_us: 7.0,
            mem_model: MemoryModelParams {
                dram_latency_cycles: 440,
                ..MemoryModelParams::default()
            },
        }
    }

    /// AMD MI210-class device (wavefront width 64).
    pub fn mi210() -> Self {
        Self {
            name: "AMD MI210 (simulated)".into(),
            sm_count: 104,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 64 * 1024,
            shared_mem_per_block: 64 * 1024,
            registers_per_sm: 65_536,
            clock_mhz: 1700,
            issue_slots_per_sm: 4,
            dram_bandwidth_gbps: 1638.0,
            l2_size_bytes: 8 * 1024 * 1024,
            global_mem_bytes: 64 * 1024 * 1024 * 1024,
            pcie_bandwidth_gbps: 32.0,
            launch_overhead_us: 8.0,
            mem_model: MemoryModelParams::default(),
        }
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz as f64 * 1e6
    }

    /// Peak DRAM bandwidth expressed in bytes per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps * 1e9 / self.clock_hz()
    }

    /// Host-device transfer bandwidth in bytes per second.
    pub fn pcie_bytes_per_sec(&self) -> f64 {
        self.pcie_bandwidth_gbps * 1e9
    }

    /// Convert a cycle count on this device into seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz()
    }

    /// Number of warps needed to cover `threads` threads.
    pub fn warps_for_threads(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_size)
    }

    /// Usable L2 capacity in bytes under the memory model.
    pub fn l2_usable_bytes(&self) -> f64 {
        self.l2_size_bytes as f64 * self.mem_model.l2_usable_fraction
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a100_40gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_datasheet_numbers() {
        let a = GpuSpec::a100_40gb();
        assert_eq!(a.sm_count, 108);
        assert_eq!(a.max_threads_per_block, 1024);
        assert_eq!(a.global_mem_bytes, 40 << 30);
        // ~1102 bytes/cycle at 1410 MHz and 1555 GB/s.
        let bpc = a.dram_bytes_per_cycle();
        assert!((bpc - 1102.8).abs() < 1.0, "bytes/cycle = {bpc}");
    }

    #[test]
    fn warp_mlp_cap_is_small_fraction_of_peak() {
        let a = GpuSpec::a100_40gb();
        let warp = a.mem_model.warp_mlp_bytes_per_cycle();
        // One warp must not be able to pull anywhere near peak bandwidth:
        // this headroom is what ensemble execution exploits.
        assert!(warp * 20.0 < a.dram_bytes_per_cycle());
    }

    #[test]
    fn dram_efficiency_monotone_and_bounded() {
        let m = MemoryModelParams::default();
        let mut prev = f64::INFINITY;
        for regions in 1..=128 {
            let e = m.dram_efficiency(regions);
            assert!(e <= prev + 1e-12);
            assert!(e <= m.dram_eff_single_region + 1e-12);
            assert!(e >= m.dram_eff_many_regions - 1e-12);
            prev = e;
        }
        assert!((m.dram_efficiency(1) - m.dram_eff_single_region).abs() < 1e-12);
    }

    #[test]
    fn warps_for_threads_rounds_up() {
        let a = GpuSpec::a100_40gb();
        assert_eq!(a.warps_for_threads(1), 1);
        assert_eq!(a.warps_for_threads(32), 1);
        assert_eq!(a.warps_for_threads(33), 2);
        assert_eq!(a.warps_for_threads(1024), 32);
    }

    #[test]
    fn cycles_seconds_roundtrip() {
        let a = GpuSpec::a100_40gb();
        let secs = a.cycles_to_seconds(a.clock_hz());
        assert!((secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn other_devices_construct() {
        assert_eq!(GpuSpec::v100_16gb().sm_count, 80);
        assert_eq!(GpuSpec::mi210().warp_size, 64);
    }
}
