use crate::{Dim3, GpuSpec};
use serde::{Deserialize, Serialize};

/// Errors produced when a launch configuration violates a hardware limit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaunchError {
    /// Block has more threads than the device allows.
    TooManyThreadsPerBlock { requested: u64, limit: u32 },
    /// A grid or block dimension is zero.
    ZeroDimension,
    /// Requested static shared memory exceeds the per-block limit.
    SharedMemTooLarge { requested: u64, limit: u64 },
    /// Grid is empty (zero blocks).
    EmptyGrid,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::TooManyThreadsPerBlock { requested, limit } => write!(
                f,
                "block of {requested} threads exceeds device limit of {limit}"
            ),
            LaunchError::ZeroDimension => write!(f, "grid/block dimensions must be non-zero"),
            LaunchError::SharedMemTooLarge { requested, limit } => write!(
                f,
                "shared memory request of {requested} B exceeds per-block limit of {limit} B"
            ),
            LaunchError::EmptyGrid => write!(f, "grid contains no blocks"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A kernel launch configuration: grid extent, block extent and static
/// shared-memory request, mirroring `<<<grid, block, smem>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    pub grid: Dim3,
    pub block: Dim3,
    pub shared_mem_bytes: u64,
}

impl LaunchConfig {
    /// One-dimensional launch: `blocks` blocks of `threads` threads.
    pub fn linear(blocks: u32, threads: u32) -> Self {
        Self {
            grid: Dim3::x(blocks),
            block: Dim3::x(threads),
            shared_mem_bytes: 0,
        }
    }

    /// Attach a static shared-memory request.
    pub fn with_shared_mem(mut self, bytes: u64) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Total number of blocks in the grid.
    pub fn block_count(&self) -> u64 {
        self.grid.count()
    }

    /// Threads in one block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.count()
    }

    /// Total threads across the launch.
    pub fn total_threads(&self) -> u64 {
        self.block_count() * self.threads_per_block()
    }

    /// Warps in one block on `spec`.
    pub fn warps_per_block(&self, spec: &GpuSpec) -> u32 {
        spec.warps_for_threads(self.threads_per_block() as u32)
    }

    /// Validate the configuration against `spec`'s hard limits.
    pub fn validate(&self, spec: &GpuSpec) -> Result<(), LaunchError> {
        if self.grid.x == 0
            || self.grid.y == 0
            || self.grid.z == 0
            || self.block.x == 0
            || self.block.y == 0
            || self.block.z == 0
        {
            return Err(LaunchError::ZeroDimension);
        }
        if self.block_count() == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        let tpb = self.threads_per_block();
        if tpb > spec.max_threads_per_block as u64 {
            return Err(LaunchError::TooManyThreadsPerBlock {
                requested: tpb,
                limit: spec.max_threads_per_block,
            });
        }
        if self.shared_mem_bytes > spec.shared_mem_per_block {
            return Err(LaunchError::SharedMemTooLarge {
                requested: self.shared_mem_bytes,
                limit: spec.shared_mem_per_block,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_counts() {
        let lc = LaunchConfig::linear(64, 128);
        assert_eq!(lc.block_count(), 64);
        assert_eq!(lc.threads_per_block(), 128);
        assert_eq!(lc.total_threads(), 64 * 128);
        assert_eq!(lc.warps_per_block(&GpuSpec::a100_40gb()), 4);
    }

    #[test]
    fn validate_accepts_paper_configs() {
        let spec = GpuSpec::a100_40gb();
        for n in [1u32, 2, 4, 8, 16, 32, 64] {
            for t in [32u32, 1024] {
                LaunchConfig::linear(n, t).validate(&spec).unwrap();
            }
        }
    }

    #[test]
    fn validate_rejects_oversized_block() {
        let spec = GpuSpec::a100_40gb();
        let err = LaunchConfig::linear(1, 2048).validate(&spec).unwrap_err();
        assert!(matches!(err, LaunchError::TooManyThreadsPerBlock { .. }));
    }

    #[test]
    fn validate_rejects_zero_dims() {
        let spec = GpuSpec::a100_40gb();
        let lc = LaunchConfig {
            grid: Dim3::new(0, 1, 1),
            block: Dim3::x(32),
            shared_mem_bytes: 0,
        };
        assert_eq!(lc.validate(&spec).unwrap_err(), LaunchError::ZeroDimension);
    }

    #[test]
    fn validate_rejects_big_shared_mem() {
        let spec = GpuSpec::a100_40gb();
        let lc = LaunchConfig::linear(1, 32).with_shared_mem(1 << 30);
        assert!(matches!(
            lc.validate(&spec).unwrap_err(),
            LaunchError::SharedMemTooLarge { .. }
        ));
    }

    #[test]
    fn multi_dim_block_threads() {
        // The paper's §3.1 (N/M, M, 1) packing: 128 threads as (32, 4, 1).
        let lc = LaunchConfig {
            grid: Dim3::x(16),
            block: Dim3::xy(32, 4),
            shared_mem_bytes: 0,
        };
        assert_eq!(lc.threads_per_block(), 128);
        lc.validate(&GpuSpec::a100_40gb()).unwrap();
    }
}
