use crate::{GpuSpec, LaunchConfig, LaunchError};
use serde::{Deserialize, Serialize};

/// Which hardware resource bounds the number of resident blocks per SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// The per-SM resident-thread limit.
    Threads,
    /// The per-SM resident-block limit.
    Blocks,
    /// Per-SM shared-memory capacity.
    SharedMem,
}

/// Result of the occupancy calculation for one launch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks that can be resident on one SM simultaneously.
    pub blocks_per_sm: u32,
    /// Warps resident on one SM when fully loaded.
    pub active_warps_per_sm: u32,
    /// Fraction of the SM's warp slots occupied (0, 1].
    pub occupancy: f64,
    /// Blocks the whole device can hold at once.
    pub device_resident_blocks: u64,
    /// Number of sequential "waves" needed to run the whole grid.
    pub waves: u32,
    /// The binding resource.
    pub limiter: OccupancyLimiter,
}

/// Compute the theoretical occupancy of `launch` on `spec`.
///
/// Mirrors the CUDA occupancy calculator restricted to the resources the
/// simulator models (threads, blocks, shared memory; registers are treated
/// as non-binding since the simulated kernels carry no register counts).
pub fn occupancy(spec: &GpuSpec, launch: &LaunchConfig) -> Result<Occupancy, LaunchError> {
    launch.validate(spec)?;

    let tpb = launch.threads_per_block() as u32;
    let warps_per_block = spec.warps_for_threads(tpb);
    // Threads are allocated in warp granularity on real hardware.
    let alloc_threads = warps_per_block * spec.warp_size;

    let by_threads = spec.max_threads_per_sm / alloc_threads.max(1);
    let by_blocks = spec.max_blocks_per_sm;
    let by_smem = spec
        .shared_mem_per_sm
        .checked_div(launch.shared_mem_bytes)
        .map(|v| v as u32)
        .unwrap_or(u32::MAX);

    let blocks_per_sm = by_threads.min(by_blocks).min(by_smem);
    let limiter = if blocks_per_sm == by_threads {
        OccupancyLimiter::Threads
    } else if blocks_per_sm == by_blocks {
        OccupancyLimiter::Blocks
    } else {
        OccupancyLimiter::SharedMem
    };

    let active_warps = blocks_per_sm * warps_per_block;
    let max_warps = spec.max_threads_per_sm / spec.warp_size;
    let device_resident_blocks = blocks_per_sm as u64 * spec.sm_count as u64;
    let waves = launch
        .block_count()
        .div_ceil(device_resident_blocks.max(1))
        .max(1) as u32;

    Ok(Occupancy {
        blocks_per_sm,
        active_warps_per_sm: active_warps,
        occupancy: active_warps as f64 / max_warps as f64,
        device_resident_blocks,
        waves,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_block_occupancy_on_a100() {
        // 1024-thread blocks: 2 blocks/SM, 100% occupancy, thread-limited.
        let spec = GpuSpec::a100_40gb();
        let occ = occupancy(&spec, &LaunchConfig::linear(64, 1024)).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.active_warps_per_sm, 64);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
        assert_eq!(occ.limiter, OccupancyLimiter::Threads);
        assert_eq!(occ.waves, 1);
    }

    #[test]
    fn warp_blocks_are_block_slot_limited() {
        // 32-thread blocks: the 32-blocks/SM limit binds before threads.
        let spec = GpuSpec::a100_40gb();
        let occ = occupancy(&spec, &LaunchConfig::linear(64, 32)).unwrap();
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.limiter, OccupancyLimiter::Blocks);
        assert_eq!(occ.active_warps_per_sm, 32);
        assert!((occ.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ensemble_grids_fit_one_wave() {
        // All paper configurations (up to 64 instances) fit in one wave on
        // a 108-SM device: every instance's team runs concurrently.
        let spec = GpuSpec::a100_40gb();
        for n in [1u32, 2, 4, 8, 16, 32, 64] {
            for t in [32u32, 1024] {
                let occ = occupancy(&spec, &LaunchConfig::linear(n, t)).unwrap();
                assert_eq!(occ.waves, 1, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn shared_mem_can_limit() {
        let spec = GpuSpec::a100_40gb();
        let lc = LaunchConfig::linear(256, 64).with_shared_mem(100 * 1024);
        let occ = occupancy(&spec, &lc).unwrap();
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMem);
    }

    #[test]
    fn waves_round_up() {
        let spec = GpuSpec::a100_40gb();
        // 1024-thread blocks: 216 resident blocks; 217 blocks need 2 waves.
        let occ = occupancy(&spec, &LaunchConfig::linear(217, 1024)).unwrap();
        assert_eq!(occ.device_resident_blocks, 216);
        assert_eq!(occ.waves, 2);
    }

    #[test]
    fn partial_warp_rounds_allocation() {
        let spec = GpuSpec::a100_40gb();
        // 33 threads allocate 2 warps.
        let occ = occupancy(&spec, &LaunchConfig::linear(1, 33)).unwrap();
        assert_eq!(occ.active_warps_per_sm % 2, 0);
    }
}
