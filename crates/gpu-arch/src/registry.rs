//! Multi-device registries.
//!
//! A [`DeviceRegistry`] describes the fleet an ensemble launch may be
//! sharded across: an ordered list of [`GpuSpec`]s, possibly
//! heterogeneous. Registries parse from a compact spec string so the CLI
//! and the sweep harness can describe fleets without JSON:
//!
//! ```text
//! a100                  one A100
//! a100,a100             two identical A100s
//! a100,a100*0.5,v100    an A100, an A100 derated to half speed, a V100
//! ```
//!
//! The `*factor` suffix derates a device: core clock, DRAM bandwidth and
//! SM count all scale by the factor (bytes-per-cycle stays fixed, so the
//! derated device is uniformly `1/factor`× slower on every bound class).
//! Factors above 1 describe an overclocked part the data sheets don't
//! sell; they are accepted for symmetry.

use crate::spec::GpuSpec;

/// Look up a simulated device by short name (the names the harness and
/// CLIs accept).
pub fn spec_by_name(name: &str) -> Option<GpuSpec> {
    match name {
        "a100" => Some(GpuSpec::a100_40gb()),
        "v100" => Some(GpuSpec::v100_16gb()),
        "mi210" => Some(GpuSpec::mi210()),
        _ => None,
    }
}

/// Scale a device's throughput knobs by `factor` (clock, DRAM bandwidth,
/// SM count). `factor` must be finite and positive.
pub fn derate(spec: &GpuSpec, factor: f64) -> GpuSpec {
    let mut s = spec.clone();
    s.name = format!("{} ×{factor}", s.name);
    s.clock_mhz = ((s.clock_mhz as f64 * factor).round() as u32).max(1);
    s.dram_bandwidth_gbps *= factor;
    s.sm_count = ((s.sm_count as f64 * factor).round() as u32).max(1);
    s
}

/// Why a registry spec string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryError(pub String);

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad device registry: {}", self.0)
    }
}

impl std::error::Error for RegistryError {}

/// An ordered fleet of simulated devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRegistry {
    pub devices: Vec<GpuSpec>,
}

impl DeviceRegistry {
    /// `count` identical copies of `spec`.
    pub fn homogeneous(spec: GpuSpec, count: u32) -> Self {
        assert!(count >= 1, "a registry needs at least one device");
        Self {
            devices: vec![spec; count as usize],
        }
    }

    /// Parse a comma-separated device list, each entry a device name with
    /// an optional `*factor` derating suffix (see module docs).
    pub fn parse(text: &str) -> Result<Self, RegistryError> {
        let mut devices = Vec::new();
        for entry in text.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(RegistryError("empty device entry".into()));
            }
            let (name, factor) = match entry.split_once('*') {
                Some((name, f)) => {
                    let factor: f64 = f
                        .parse()
                        .map_err(|_| RegistryError(format!("bad factor '{f}' in '{entry}'")))?;
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(RegistryError(format!(
                            "factor must be positive and finite, got '{f}'"
                        )));
                    }
                    (name.trim(), factor)
                }
                None => (entry, 1.0),
            };
            let spec = spec_by_name(name).ok_or_else(|| {
                RegistryError(format!("unknown device '{name}' (use a100, v100 or mi210)"))
            })?;
            devices.push(if factor == 1.0 {
                spec
            } else {
                derate(&spec, factor)
            });
        }
        if devices.is_empty() {
            return Err(RegistryError("no devices".into()));
        }
        Ok(Self { devices })
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// True when every device has the same spec.
    pub fn is_homogeneous(&self) -> bool {
        self.devices.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_lookup_covers_the_known_devices() {
        assert_eq!(spec_by_name("a100").unwrap().sm_count, 108);
        assert_eq!(spec_by_name("v100").unwrap().sm_count, 80);
        assert_eq!(spec_by_name("mi210").unwrap().warp_size, 64);
        assert!(spec_by_name("h100").is_none());
    }

    #[test]
    fn derate_scales_speed_but_not_bytes_per_cycle() {
        let a = GpuSpec::a100_40gb();
        let half = derate(&a, 0.5);
        assert_eq!(half.clock_mhz, 705);
        assert_eq!(half.sm_count, 54);
        assert!((half.dram_bandwidth_gbps - 777.5).abs() < 1e-9);
        // Clock and bandwidth scale together: the derated part moves the
        // same bytes per core cycle, it just has fewer cycles per second.
        assert!((half.dram_bytes_per_cycle() - a.dram_bytes_per_cycle()).abs() < 1e-9);
        // A fixed cycle count takes twice as long.
        assert!((half.cycles_to_seconds(1e6) / a.cycles_to_seconds(1e6) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn parse_homogeneous_and_derated_fleets() {
        let r = DeviceRegistry::parse("a100,a100").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.is_homogeneous());

        let r = DeviceRegistry::parse("a100, a100*0.5, v100").unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_homogeneous());
        assert_eq!(r.devices[0].sm_count, 108);
        assert_eq!(r.devices[1].sm_count, 54);
        assert_eq!(r.devices[2].sm_count, 80);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DeviceRegistry::parse("").is_err());
        assert!(DeviceRegistry::parse("a100,,v100").is_err());
        assert!(DeviceRegistry::parse("h100").is_err());
        assert!(DeviceRegistry::parse("a100*zero").is_err());
        assert!(DeviceRegistry::parse("a100*0").is_err());
        assert!(DeviceRegistry::parse("a100*-1").is_err());
    }

    #[test]
    fn homogeneous_constructor_replicates() {
        let r = DeviceRegistry::homogeneous(GpuSpec::a100_40gb(), 4);
        assert_eq!(r.len(), 4);
        assert!(r.is_homogeneous());
    }
}
