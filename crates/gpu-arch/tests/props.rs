//! Property-based tests for occupancy and launch validation.

use gpu_arch::{occupancy, Dim3, GpuSpec, LaunchConfig};
use proptest::prelude::*;

proptest! {
    /// Occupancy never exceeds the hardware's warp slots and never goes to
    /// zero for a valid launch.
    #[test]
    fn occupancy_bounded(blocks in 1u32..1000, threads in 1u32..1025, smem in 0u64..160_000) {
        let spec = GpuSpec::a100_40gb();
        let lc = LaunchConfig::linear(blocks, threads).with_shared_mem(smem);
        let occ = occupancy(&spec, &lc).unwrap();
        prop_assert!(occ.blocks_per_sm >= 1);
        prop_assert!(occ.occupancy > 0.0 && occ.occupancy <= 1.0 + 1e-12);
        prop_assert!(occ.active_warps_per_sm * spec.warp_size <= spec.max_threads_per_sm);
        prop_assert!(occ.waves >= 1);
    }

    /// Waves are monotone in the grid size.
    #[test]
    fn waves_monotone_in_blocks(threads in 1u32..1025, b1 in 1u32..2000, b2 in 1u32..2000) {
        let spec = GpuSpec::a100_40gb();
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let w_lo = occupancy(&spec, &LaunchConfig::linear(lo, threads)).unwrap().waves;
        let w_hi = occupancy(&spec, &LaunchConfig::linear(hi, threads)).unwrap().waves;
        prop_assert!(w_hi >= w_lo);
    }

    /// Blocks-per-SM is antitone in per-block resource usage.
    #[test]
    fn blocks_per_sm_antitone_in_threads(blocks in 1u32..64, t1 in 1u32..1025, t2 in 1u32..1025) {
        let spec = GpuSpec::a100_40gb();
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let b_lo = occupancy(&spec, &LaunchConfig::linear(blocks, lo)).unwrap().blocks_per_sm;
        let b_hi = occupancy(&spec, &LaunchConfig::linear(blocks, hi)).unwrap().blocks_per_sm;
        prop_assert!(b_hi <= b_lo);
    }

    /// Dim3 linearization is a bijection on the extent.
    #[test]
    fn dim3_linear_bijective(x in 1u32..20, y in 1u32..20, z in 1u32..20, pick in any::<u64>()) {
        let ext = Dim3::new(x, y, z);
        let lin = pick % ext.count();
        let idx = ext.delinearize(lin);
        prop_assert_eq!(ext.linear(idx), lin);
        prop_assert!(idx.x < x && idx.y < y && idx.z < z);
    }

    /// Validation accepts exactly the configurations within hardware
    /// limits (1-D case).
    #[test]
    fn validation_matches_limits(blocks in 0u32..10, threads in 0u32..3000) {
        let spec = GpuSpec::a100_40gb();
        let lc = LaunchConfig::linear(blocks, threads);
        let valid = blocks >= 1 && threads >= 1 && threads <= spec.max_threads_per_block;
        prop_assert_eq!(lc.validate(&spec).is_ok(), valid);
    }
}
