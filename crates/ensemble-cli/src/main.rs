//! The GPU ensembler command line — the paper's Fig. 5(c) usage:
//!
//! ```text
//! ensemble-cli xsbench -f arguments.txt -n 4 -t 128
//! ```
//!
//! Runs `-n` instances of a built-in benchmark concurrently in one
//! simulated kernel launch, each instance taking its command line from one
//! line of the `-f` argument file. `--pack M` selects the §3.1 packed
//! mapping (M instances per thread block). Every instance's stdout is
//! printed, followed by a launch summary.
//!
//! Observability: `--trace-out t.json` writes a Chrome trace-event
//! timeline of the launch (load in Perfetto / `chrome://tracing`),
//! `--metrics-out m.jsonl` writes one JSON line of metrics per instance
//! plus one for the launch, and `--quiet` suppresses per-instance output.
//! `--timeline` samples device utilization over time (`--sample-interval
//! <cycles>` tunes the rate), adding Chrome counter tracks to the trace
//! and the schema-v5 `timeline` array to the metrics; `--progress` prints
//! status lines to stderr (suppressed by `--quiet`) — with `--batch` the
//! batched driver reports completed/total instances, the observed
//! instances-per-second rate and an ETA after every batch (`eta --`
//! while the measured rate is still ~zero).
//!
//! Monitoring: `--monitor-out snapshots.om` attaches the `dgc-monitor`
//! operational-metrics registry to the run and streams OpenMetrics
//! snapshot blocks to the file from a background thread every
//! `--monitor-interval <ms>` (default 1000), plus a guaranteed final
//! snapshot at exit. Lint, SLO-gate or render the log with the
//! `dgc-monitor` binary. Attaching the monitor never changes the
//! simulated results — traces and metrics stay bit-identical.
//!
//! Post-hoc analysis: `--insight-out report.md` writes the `dgc-insight`
//! run analysis (critical path whose span sum reproduces the reported
//! makespan bit-exactly, blame tables, wave Gantt) and `--flame-out
//! stacks.folded` writes an inferno-compatible folded-stack flamegraph,
//! both rendered from the run's in-process span graph.
//!
//! Fault tolerance: `--faults plan.json` injects a deterministic fault
//! plan and drives the run through the resilient driver, which re-launches
//! failed instances (`--max-attempts`), halves the batch on device OOM
//! (`--auto-batch`), reaps hung instances (`--instance-timeout <cycles>`)
//! and can abort on the first unrecoverable instance (`--fail-fast`). The
//! exit status is non-zero whenever any instance ends failed or skipped
//! after recovery.
//!
//! Multi-device: `--devices M` shards the ensemble across `M` simulated
//! A100s; `--placement round-robin|greedy|lpt` picks the policy (the
//! informed ones bin-pack by pilot-run cost). Combined with the recovery
//! flags, a dead device re-shards its instances onto the survivors. The
//! default `-n` is one instance per argument line; with `--cycle-args`
//! the lines are reused modulo when `-n` exceeds the file.
//!
//! Memory-aware packing (default on): pilot runs record each distinct
//! argument line's peak heap bytes, placement refuses shards that would
//! exceed device capacity, unbatched runs size their batch to the
//! capacity fit, and the heap recycles freed blocks through per-team
//! free lists. `--no-mem-aware` restores the bit-identical legacy
//! behavior (first-fit only, memory-blind placement, OOM-then-halve).

use dgc_core::{
    parse_ensemble_cli, run_ensemble_traced, EnsembleOptions, HostApp, MappingStrategy,
};
use dgc_fault::{
    run_ensemble_resilient_mem_aware, run_ensemble_sharded_resilient_mem_aware, FaultPlan,
    RecoveryPolicy, RecoveryStats,
};
use dgc_monitor::{MonitorRegistry, MonitorWriter};
use dgc_obs::{metrics_jsonl, LaunchMetrics, Recorder};
use dgc_sched::{run_ensemble_sharded_mem_aware, InstanceCosts, Placement};
use gpu_arch::GpuSpec;
use gpu_sim::{DeviceFleet, Gpu};
use host_rpc::HostServices;

fn usage() -> ! {
    eprintln!("usage: ensemble-cli <app> -f <arguments file> [-n <instances>] [-t <thread limit>] [--pack <M>] [--batch <B>]");
    eprintln!(
        "                    [--trace-out <trace.json>] [--metrics-out <metrics.jsonl>] [--quiet] [--cycle-args]"
    );
    eprintln!("                    [--faults <plan.json>] [--max-attempts <K>] [--auto-batch] [--instance-timeout <cycles>] [--fail-fast] [--retry-jitter <seed>]");
    eprintln!("                    [--devices <M>] [--placement round-robin|greedy|lpt]");
    eprintln!("                    [--mem-aware|--no-mem-aware]");
    eprintln!("                    [--timeline] [--sample-interval <cycles>] [--progress]");
    eprintln!("                    [--insight-out <report.md>] [--flame-out <stacks.folded>]");
    eprintln!("                    [--monitor-out <snapshots.om>] [--monitor-interval <ms>]");
    eprintln!("  apps: xsbench, rsbench, amgmk, pagerank");
    std::process::exit(2);
}

/// Pilot-run cost/peak estimation for the memory-aware single-device
/// paths. Returns `None` when mem-aware mode is off or the argument
/// file cannot cover the requested instances (the real driver reports
/// that error itself, keeping the legacy error text).
fn pilot_costs(
    mem_aware: bool,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
) -> Option<InstanceCosts> {
    if !mem_aware || arg_lines.is_empty() {
        return None;
    }
    let n = opts.num_instances.max(1) as usize;
    if !opts.cycle_args && n > arg_lines.len() {
        return None;
    }
    let lines_of: Vec<Vec<String>> = (0..n)
        .map(|i| arg_lines[i % arg_lines.len()].clone())
        .collect();
    match InstanceCosts::estimate(app, &lines_of, opts, &GpuSpec::a100_40gb()) {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let app_name = args.remove(0);
    let Some(app) = dgc_apps::app_by_name(&app_name) else {
        eprintln!("unknown application '{app_name}'");
        usage();
    };
    let cli = match parse_ensemble_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    let text = match std::fs::read_to_string(&cli.arg_file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.arg_file);
            std::process::exit(1);
        }
    };
    // The script-language superset (§3.2 future work): plain files parse
    // identically, @repeat/@for directives generate lines.
    let arg_lines = match dgc_core::expand_arg_script(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let opts = EnsembleOptions {
        num_instances: cli.num_instances.unwrap_or(arg_lines.len() as u32),
        thread_limit: cli.thread_limit,
        cycle_args: cli.cycle_args,
        sample_interval: cli.sample_interval,
        mapping: if cli.pack > 1 {
            MappingStrategy::Packed {
                per_block: cli.pack,
            }
        } else {
            MappingStrategy::OnePerTeam
        },
        ..Default::default()
    };
    let placement: Placement = match cli.placement.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    // The recorder costs nothing unless a timeline was asked for.
    let mut obs = if cli.trace_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    // --monitor-out: stream OpenMetrics snapshots of the run from a
    // background monitor thread. The registry is a pure observation
    // sink — attaching it never changes the simulated results.
    let monitor_writer = match &cli.monitor_out {
        Some(path) => {
            let registry = std::sync::Arc::new(MonitorRegistry::new());
            obs.set_monitor(registry.clone());
            match MonitorWriter::spawn(
                registry,
                path.into(),
                std::time::Duration::from_millis(cli.monitor_interval_ms),
            ) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };

    // Any recovery-related flag routes the run through the resilient
    // driver (an absent --faults file just means an empty plan).
    let resilient = cli.faults.is_some()
        || cli.auto_batch
        || cli.instance_timeout.is_some()
        || cli.fail_fast
        || cli.retry_jitter.is_some();
    let plan = if resilient {
        match &cli.faults {
            Some(path) => {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match FaultPlan::from_json(&text) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            None => FaultPlan::default(),
        }
    } else {
        FaultPlan::default()
    };
    let policy = RecoveryPolicy {
        max_attempts: cli.max_attempts,
        oom_split: cli.auto_batch,
        instance_cycle_budget: cli.instance_timeout,
        fail_fast: cli.fail_fast,
        jitter_seed: cli.retry_jitter,
        ..Default::default()
    };

    type Recovery = Option<(RecoveryStats, LaunchMetrics)>;
    // (devices, placement name, makespan, per-device times, dead devices)
    type MultiDevice = Option<(u32, &'static str, f64, Vec<f64>, Vec<u32>)>;
    let mut launch_override: Option<LaunchMetrics> = None;
    let (result, recovery, multi): (_, Recovery, MultiDevice) = if cli.devices > 1 {
        // Sharded across a homogeneous fleet of A100s.
        let mut fleet = DeviceFleet::homogeneous(GpuSpec::a100_40gb(), cli.devices);
        if resilient {
            match run_ensemble_sharded_resilient_mem_aware(
                &mut fleet,
                &app,
                &arg_lines,
                &opts,
                cli.batch,
                placement,
                &plan,
                &policy,
                &mut obs,
                cli.mem_aware,
            ) {
                Ok(r) => {
                    let lm = r.launch_metrics();
                    let info = (
                        r.devices,
                        r.placement.name(),
                        r.ensemble.total_time_s,
                        r.per_device_time_s.clone(),
                        r.dead_devices.clone(),
                    );
                    (r.ensemble, Some((r.recovery, lm)), Some(info))
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            match run_ensemble_sharded_mem_aware(
                &mut fleet,
                &app,
                &arg_lines,
                &opts,
                cli.batch,
                placement,
                &mut obs,
                cli.mem_aware,
            ) {
                Ok(r) => {
                    launch_override = Some(r.launch_metrics());
                    let info = (
                        r.devices,
                        r.placement.name(),
                        r.makespan_s(),
                        r.per_device_time_s.clone(),
                        Vec::new(),
                    );
                    (r.ensemble, None, Some(info))
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else if resilient {
        let mut gpu = Gpu::a100();
        // Memory-aware recovery sizes chunks from pilot peaks, so an
        // over-capacity ensemble sequences up front instead of paying
        // the OOM-then-halve tax. `--no-mem-aware` (costs = None) keeps
        // the legacy driver bit-identical.
        let costs = pilot_costs(cli.mem_aware, &app, &arg_lines, &opts);
        match run_ensemble_resilient_mem_aware(
            &mut gpu,
            &app,
            &arg_lines,
            &opts,
            cli.batch,
            &plan,
            &policy,
            &mut obs,
            costs.as_ref(),
        ) {
            Ok(r) => {
                let lm = r.launch_metrics();
                (r.ensemble, Some((r.recovery, lm)), None)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let mut gpu = Gpu::a100();
        // Memory-aware single-device runs recycle blocks through the
        // heap's free lists and, when no explicit --batch was given,
        // batch at the pilot-measured capacity fit so memory-hungry
        // ensembles sequence instead of OOM-ing.
        let eff_batch = if cli.mem_aware {
            gpu.mem.set_free_lists(true);
            match pilot_costs(cli.batch == 0, &app, &arg_lines, &opts) {
                Some(costs) => {
                    let n = opts.num_instances.max(1);
                    let fit = costs.mem_fit_count(n, gpu.mem.capacity());
                    if fit < n {
                        fit
                    } else {
                        0
                    }
                }
                None => cli.batch,
            }
        } else {
            cli.batch
        };
        let res = if eff_batch > 0 {
            // Per-batch progress with rate + ETA from the wall clock and
            // the completed/total instance counts.
            let report_progress = cli.progress && !cli.quiet;
            let started = std::time::Instant::now();
            dgc_core::run_ensemble_batched_progress(
                &mut gpu,
                &app,
                &arg_lines,
                &opts,
                eff_batch,
                &mut obs,
                &mut |done, total| {
                    if !report_progress || done == 0 {
                        return;
                    }
                    let elapsed_s = started.elapsed().as_secs_f64();
                    let rate = if elapsed_s > 0.0 {
                        done as f64 / elapsed_s
                    } else {
                        0.0
                    };
                    let eta = dgc_core::format_eta_s(u64::from(total.saturating_sub(done)), rate);
                    eprintln!(
                        "progress: {done}/{total} instances | {rate:.1} instances/s | eta {eta}"
                    );
                },
            )
        } else {
            run_ensemble_traced(
                &mut gpu,
                &app,
                &arg_lines,
                &opts,
                HostServices::default(),
                &mut obs,
            )
        };
        match res {
            Ok(r) => (r, None, None),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };

    if !cli.quiet {
        for (i, out) in result.stdout.iter().enumerate() {
            println!("=== instance {i} ===");
            print!("{out}");
            match &result.instances[i] {
                o if o.oom => println!("[device out of memory]"),
                o => {
                    if let Some(err) = &o.error {
                        println!("[trap: {err}]");
                    }
                }
            }
        }
    }
    println!("=== launch summary ===");
    println!("{}", result.report.summary());
    println!(
        "kernel time {:.3} ms | total (with transfers) {:.3} ms | RPC calls {}",
        result.kernel_time_s * 1e3,
        result.total_time_s * 1e3,
        result.rpc_stats.total()
    );
    if let Some((devices, placement_name, makespan_s, per_device, dead)) = &multi {
        let per: Vec<String> = per_device
            .iter()
            .map(|t| format!("{:.3}", t * 1e3))
            .collect();
        print!(
            "devices {devices} (placement {placement_name}) | makespan {:.3} ms | per-device ms [{}]",
            makespan_s * 1e3,
            per.join(", ")
        );
        if dead.is_empty() {
            println!();
        } else {
            let d: Vec<String> = dead.iter().map(|d| d.to_string()).collect();
            println!(" | dead devices [{}]", d.join(", "));
        }
    }

    let failed = result.failed_count();
    let oom = result.oom_count();
    let observing = cli.quiet || cli.trace_out.is_some() || cli.metrics_out.is_some();
    if failed > 0 || observing {
        println!(
            "instances {} | failed {failed} | oom {oom}",
            result.instances.len()
        );
    }
    // --progress: status on stderr, suppressed by --quiet. The simulated
    // run is synchronous, so the periodic status collapses into one line
    // per launch, emitted at completion.
    if cli.progress && !cli.quiet {
        let recovered = recovery.as_ref().map(|(r, _)| r.recovered).unwrap_or(0);
        // Timeline-sampled mean when --timeline ran; otherwise the
        // launch-aggregate issue utilization.
        let util = dgc_core::utilization_mean(&result.timeline.issue_rates())
            .unwrap_or(result.report.issue_utilization);
        eprintln!(
            "progress: waves {} | instances {}/{} ok | recovered {recovered} | device utilization {:.1}%",
            result.report.waves,
            result.instances.len() as u32 - failed,
            result.instances.len(),
            util * 100.0
        );
    }
    if let Some((rec, _)) = &recovery {
        println!(
            "recovery: attempts {} | retried {} | recovered {} | unrecovered {} | oom splits {} (final batch {}) | backoff {:.3} ms",
            rec.attempts,
            rec.retried,
            rec.recovered,
            rec.unrecovered,
            rec.oom_splits,
            rec.final_batch,
            rec.backoff_s * 1e3
        );
        if rec.skipped > 0 {
            println!("fail-fast: {} instance(s) skipped", rec.skipped);
        }
    }

    if let Some(path) = &cli.trace_out {
        if let Err(e) = dgc_obs::write_atomic(path, obs.to_chrome_trace()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote trace {path} ({} events)", obs.events().len());
    }
    if let Some(path) = &cli.insight_out {
        // Every driver reports its makespan as total_time_s (sharded
        // drivers set it to the fleet makespan), so the report's
        // bit-exactness check compares against the right number.
        let report = dgc_insight::render_report(&result.graph, Some(result.total_time_s));
        if let Err(e) = dgc_obs::write_atomic(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote insight report {path}");
    }
    if let Some(path) = &cli.flame_out {
        let stacks = dgc_insight::folded_stacks(&result.graph);
        if let Err(e) = dgc_obs::write_atomic(path, &stacks) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote flamegraph {path} ({} stacks)",
            stacks.lines().count()
        );
    }
    if let Some(path) = &cli.metrics_out {
        let launch = recovery
            .as_ref()
            .map(|(_, lm)| lm.clone())
            .or(launch_override)
            .unwrap_or_else(|| result.launch_metrics());
        let jsonl = metrics_jsonl(&result.metrics, &launch);
        if let Err(e) = dgc_obs::write_atomic(path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote metrics {path} ({} instance records + 1 launch record)",
            result.metrics.len()
        );
    }
    if let Some(writer) = monitor_writer {
        // Joins the monitor thread after a guaranteed final snapshot, so
        // the log always ends with the run's complete totals.
        let path = cli.monitor_out.as_deref().unwrap_or_default().to_string();
        if let Err(e) = writer.stop() {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote monitor snapshots {path}");
    }

    std::process::exit(if failed == 0 { 0 } else { 1 });
}
