//! End-to-end CLI tests: flag routing and exit codes through the real
//! binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ensemble-cli")
}

/// Write an argument file with `lines` xsbench-sized lines and return
/// its path.
fn arg_file(name: &str, lines: usize) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ensemble-cli-test-{name}.txt"));
    let text = "-l 200 -p 100\n".repeat(lines);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

#[test]
fn arg_shortfall_fails_with_a_diagnostic_naming_both_counts() {
    let f = arg_file("shortfall", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "-n", "5"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("5 instances"), "{err}");
    assert!(err.contains("only 2"), "{err}");
    assert!(err.contains("--cycle-args"), "{err}");
}

#[test]
fn cycle_args_opts_back_into_modulo_reuse() {
    let f = arg_file("cycle", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "-n",
        "5",
        "--cycle-args",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("instances 5 | failed 0"), "{stdout}");
}

#[test]
fn multi_device_run_reports_placement_and_makespan() {
    let f = arg_file("devices", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "lpt",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("devices 2 (placement lpt)"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn unknown_placement_is_a_usage_error() {
    let f = arg_file("placement", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "optimal",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown placement"), "{err}");
}

#[test]
fn zero_devices_is_a_usage_error() {
    let f = arg_file("zero-devices", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "--devices", "0"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn multi_device_metrics_carry_schema_v4_fields() {
    let f = arg_file("metrics", 4);
    let m = std::env::temp_dir().join("ensemble-cli-test-metrics-out.jsonl");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--quiet",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"devices\":2"), "{launch}");
    assert!(launch.contains("\"makespan_s\""), "{launch}");
    assert!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"instance\""))
            .all(|l| l.contains("\"device\":")),
        "every instance record names its device"
    );
}
