//! End-to-end CLI tests: flag routing and exit codes through the real
//! binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ensemble-cli")
}

/// Write an argument file with `lines` xsbench-sized lines and return
/// its path.
fn arg_file(name: &str, lines: usize) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ensemble-cli-test-{name}.txt"));
    let text = "-l 200 -p 100\n".repeat(lines);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

#[test]
fn arg_shortfall_fails_with_a_diagnostic_naming_both_counts() {
    let f = arg_file("shortfall", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "-n", "5"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("5 instances"), "{err}");
    assert!(err.contains("only 2"), "{err}");
    assert!(err.contains("--cycle-args"), "{err}");
}

#[test]
fn cycle_args_opts_back_into_modulo_reuse() {
    let f = arg_file("cycle", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "-n",
        "5",
        "--cycle-args",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("instances 5 | failed 0"), "{stdout}");
}

#[test]
fn multi_device_run_reports_placement_and_makespan() {
    let f = arg_file("devices", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "lpt",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("devices 2 (placement lpt)"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn unknown_placement_is_a_usage_error() {
    let f = arg_file("placement", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "optimal",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown placement"), "{err}");
}

#[test]
fn zero_devices_is_a_usage_error() {
    let f = arg_file("zero-devices", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "--devices", "0"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn progress_reports_to_stderr_and_quiet_suppresses_it() {
    let f = arg_file("progress", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "--progress"]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("progress: waves"), "{err}");
    assert!(err.contains("2/2 ok"), "{err}");
    assert!(err.contains("recovered 0"), "{err}");
    assert!(err.contains("device utilization"), "{err}");
    // The status line goes to stderr only.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("progress:"));
    // --quiet wins over --progress.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--progress",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("progress:"), "{err}");
}

#[test]
fn batched_progress_reports_rate_and_eta_per_batch() {
    let f = arg_file("progress-eta", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--batch",
        "2",
        "--progress",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    // Two batches of two: both completion counts appear, with the
    // observed rate and an ETA, before the final summary line.
    assert!(err.contains("progress: 2/4 instances"), "{err}");
    assert!(err.contains("progress: 4/4 instances"), "{err}");
    assert!(err.contains("instances/s | eta"), "{err}");
    assert!(err.contains("progress: waves"), "{err}");
    // --quiet still suppresses every progress line.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--batch",
        "2",
        "--progress",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert!(!String::from_utf8_lossy(&out.stderr).contains("progress:"));
}

#[test]
fn batched_progress_eta_is_finite_or_dashed_never_inf() {
    let f = arg_file("progress-eta-finite", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--batch",
        "1",
        "--progress",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    let etas: Vec<&str> = err
        .lines()
        .filter_map(|l| l.split(" | eta ").nth(1))
        .collect();
    assert!(!etas.is_empty(), "no eta columns: {err}");
    // Every ETA is either the `--` placeholder or a finite seconds
    // value — `inf`/`NaN` never reach the terminal.
    for eta in etas {
        let ok = eta == "--"
            || eta
                .strip_suffix(" s")
                .and_then(|v| v.parse::<f64>().ok())
                .is_some_and(|v| v.is_finite() && v >= 0.0);
        assert!(ok, "bad eta column {eta:?}: {err}");
    }
    // The degenerate case itself: a ~zero measured rate dashes out.
    assert_eq!(dgc_core::format_eta_s(3, 0.0), "--");
}

#[test]
fn monitor_out_streams_lintable_snapshots_and_leaves_results_bit_identical() {
    let f = arg_file("monitor", 4);
    let om = std::env::temp_dir().join("ensemble-cli-test-monitor.om");
    let trace_on = std::env::temp_dir().join("ensemble-cli-test-monitor-trace-on.json");
    let trace_off = std::env::temp_dir().join("ensemble-cli-test-monitor-trace-off.json");
    let metrics_on = std::env::temp_dir().join("ensemble-cli-test-monitor-metrics-on.jsonl");
    let metrics_off = std::env::temp_dir().join("ensemble-cli-test-monitor-metrics-off.jsonl");
    let base = |trace: &PathBuf, metrics: &PathBuf| {
        vec![
            "xsbench".to_string(),
            "-f".to_string(),
            f.to_str().unwrap().to_string(),
            "--batch".to_string(),
            "2".to_string(),
            "--quiet".to_string(),
            "--trace-out".to_string(),
            trace.to_str().unwrap().to_string(),
            "--metrics-out".to_string(),
            metrics.to_str().unwrap().to_string(),
        ]
    };
    let mut with_monitor = base(&trace_on, &metrics_on);
    with_monitor.extend([
        "--monitor-out".to_string(),
        om.to_str().unwrap().to_string(),
    ]);
    let out = Command::new(bin()).args(&with_monitor).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("wrote monitor snapshots"), "{err}");

    // The snapshot log lints under the strict OpenMetrics re-parser and
    // round-trips bit-exactly through it.
    let log = std::fs::read_to_string(&om).unwrap();
    let series = dgc_monitor::parse_series(&log).expect("snapshot log lints");
    assert!(!series.is_empty());
    let rendered: String = series.iter().map(|s| s.render()).collect();
    assert_eq!(rendered, log, "render(parse(log)) != log");
    let last = series.last().unwrap();
    assert_eq!(last.sum("dgc_instances_total", &[]), Some(4.0), "{log}");
    assert!(
        last.sum("dgc_kernel_launches_total", &[]).unwrap_or(0.0) >= 1.0,
        "{log}"
    );
    assert!(
        last.sum("dgc_monitor_snapshots_total", &[]).unwrap_or(0.0) >= 1.0,
        "{log}"
    );

    // Monitoring is pure observation: the simulated results are
    // bit-identical to a run without --monitor-out.
    let out = Command::new(bin())
        .args(base(&trace_off, &metrics_off))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert_eq!(
        std::fs::read(&trace_on).unwrap(),
        std::fs::read(&trace_off).unwrap(),
        "trace bytes changed under monitoring"
    );
    assert_eq!(
        std::fs::read(&metrics_on).unwrap(),
        std::fs::read(&metrics_off).unwrap(),
        "metrics bytes changed under monitoring"
    );
}

#[test]
fn insight_and_flame_outputs_render_from_the_run_graph() {
    let f = arg_file("insight", 2);
    let report = std::env::temp_dir().join("ensemble-cli-test-insight.md");
    let flame = std::env::temp_dir().join("ensemble-cli-test-flame.folded");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--insight-out",
        report.to_str().unwrap(),
        "--flame-out",
        flame.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let md = std::fs::read_to_string(&report).unwrap();
    // The in-process graph replays the reported makespan bit-exactly.
    assert!(md.contains("reproduces it bit-exactly"), "{md}");
    for needle in ["## Critical path", "By stall bucket", "## Wave Gantt"] {
        assert!(md.contains(needle), "missing {needle}: {md}");
    }
    let folded = std::fs::read_to_string(&flame).unwrap();
    dgc_insight::validate_folded(&folded).expect("flamegraph validates");
    assert!(folded.contains("dev0;round 0;xsbench-x2;"), "{folded}");
}

#[test]
fn sharded_insight_report_covers_both_device_lanes() {
    let f = arg_file("insight-sharded", 4);
    let report = std::env::temp_dir().join("ensemble-cli-test-insight-sharded.md");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--quiet",
        "--insight-out",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.contains("devices: 2"), "{md}");
    assert!(md.contains("reproduces it bit-exactly"), "{md}");
}

#[test]
fn timeline_flag_adds_counter_tracks_to_traces() {
    let f = arg_file("timeline-trace", 2);
    let plain = std::env::temp_dir().join("ensemble-cli-test-trace-plain.json");
    let sampled = std::env::temp_dir().join("ensemble-cli-test-trace-sampled.json");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--trace-out",
        plain.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--timeline",
        "--trace-out",
        sampled.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let plain_json = std::fs::read_to_string(&plain).unwrap();
    let sampled_json = std::fs::read_to_string(&sampled).unwrap();
    // Counter tracks appear only under --timeline; without the flag the
    // trace bytes are identical to the pre-telemetry output.
    assert!(
        !plain_json.contains("\"ph\":\"C\""),
        "counters without --timeline"
    );
    assert!(
        sampled_json.contains("\"ph\":\"C\""),
        "no counters with --timeline"
    );
    for track in [
        "\"utilization\"",
        "\"active_teams\"",
        "\"stall_share\"",
        "\"heap_bytes\"",
    ] {
        assert!(sampled_json.contains(track), "missing {track} track");
    }
}

#[test]
fn timeline_flag_fills_timeline_metrics() {
    let f = arg_file("timeline-metrics", 2);
    let m = std::env::temp_dir().join("ensemble-cli-test-timeline-metrics.jsonl");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--timeline",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"schema\":6"), "{launch}");
    assert!(launch.contains("\"timeline\":[{"), "{launch}");
    assert!(launch.contains("\"utilization_mean\":"), "{launch}");
    assert!(!launch.contains("\"utilization_mean\":null"), "{launch}");
    // Without --timeline the timeline fields stay null/empty.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"timeline\":[]"), "{launch}");
    assert!(launch.contains("\"utilization_mean\":null"), "{launch}");
}

#[test]
fn multi_device_metrics_carry_schema_v4_fields() {
    let f = arg_file("metrics", 4);
    let m = std::env::temp_dir().join("ensemble-cli-test-metrics-out.jsonl");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--quiet",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"devices\":2"), "{launch}");
    assert!(launch.contains("\"makespan_s\""), "{launch}");
    assert!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"instance\""))
            .all(|l| l.contains("\"device\":")),
        "every instance record names its device"
    );
}
