//! End-to-end CLI tests: flag routing and exit codes through the real
//! binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ensemble-cli")
}

/// Write an argument file with `lines` xsbench-sized lines and return
/// its path.
fn arg_file(name: &str, lines: usize) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ensemble-cli-test-{name}.txt"));
    let text = "-l 200 -p 100\n".repeat(lines);
    std::fs::write(&path, text).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

#[test]
fn arg_shortfall_fails_with_a_diagnostic_naming_both_counts() {
    let f = arg_file("shortfall", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "-n", "5"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("5 instances"), "{err}");
    assert!(err.contains("only 2"), "{err}");
    assert!(err.contains("--cycle-args"), "{err}");
}

#[test]
fn cycle_args_opts_back_into_modulo_reuse() {
    let f = arg_file("cycle", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "-n",
        "5",
        "--cycle-args",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("instances 5 | failed 0"), "{stdout}");
}

#[test]
fn multi_device_run_reports_placement_and_makespan() {
    let f = arg_file("devices", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "lpt",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("devices 2 (placement lpt)"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn unknown_placement_is_a_usage_error() {
    let f = arg_file("placement", 2);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--placement",
        "optimal",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown placement"), "{err}");
}

#[test]
fn zero_devices_is_a_usage_error() {
    let f = arg_file("zero-devices", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "--devices", "0"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn progress_reports_to_stderr_and_quiet_suppresses_it() {
    let f = arg_file("progress", 2);
    let out = run(&["xsbench", "-f", f.to_str().unwrap(), "--progress"]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("progress: waves"), "{err}");
    assert!(err.contains("2/2 ok"), "{err}");
    assert!(err.contains("recovered 0"), "{err}");
    assert!(err.contains("device utilization"), "{err}");
    // The status line goes to stderr only.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("progress:"));
    // --quiet wins over --progress.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--progress",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("progress:"), "{err}");
}

#[test]
fn batched_progress_reports_rate_and_eta_per_batch() {
    let f = arg_file("progress-eta", 4);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--batch",
        "2",
        "--progress",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let err = String::from_utf8_lossy(&out.stderr);
    // Two batches of two: both completion counts appear, with the
    // observed rate and an ETA, before the final summary line.
    assert!(err.contains("progress: 2/4 instances"), "{err}");
    assert!(err.contains("progress: 4/4 instances"), "{err}");
    assert!(err.contains("instances/s | eta"), "{err}");
    assert!(err.contains("progress: waves"), "{err}");
    // --quiet still suppresses every progress line.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--batch",
        "2",
        "--progress",
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert!(!String::from_utf8_lossy(&out.stderr).contains("progress:"));
}

#[test]
fn insight_and_flame_outputs_render_from_the_run_graph() {
    let f = arg_file("insight", 2);
    let report = std::env::temp_dir().join("ensemble-cli-test-insight.md");
    let flame = std::env::temp_dir().join("ensemble-cli-test-flame.folded");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--insight-out",
        report.to_str().unwrap(),
        "--flame-out",
        flame.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let md = std::fs::read_to_string(&report).unwrap();
    // The in-process graph replays the reported makespan bit-exactly.
    assert!(md.contains("reproduces it bit-exactly"), "{md}");
    for needle in ["## Critical path", "By stall bucket", "## Wave Gantt"] {
        assert!(md.contains(needle), "missing {needle}: {md}");
    }
    let folded = std::fs::read_to_string(&flame).unwrap();
    dgc_insight::validate_folded(&folded).expect("flamegraph validates");
    assert!(folded.contains("dev0;round 0;xsbench-x2;"), "{folded}");
}

#[test]
fn sharded_insight_report_covers_both_device_lanes() {
    let f = arg_file("insight-sharded", 4);
    let report = std::env::temp_dir().join("ensemble-cli-test-insight-sharded.md");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--quiet",
        "--insight-out",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let md = std::fs::read_to_string(&report).unwrap();
    assert!(md.contains("devices: 2"), "{md}");
    assert!(md.contains("reproduces it bit-exactly"), "{md}");
}

#[test]
fn timeline_flag_adds_counter_tracks_to_traces() {
    let f = arg_file("timeline-trace", 2);
    let plain = std::env::temp_dir().join("ensemble-cli-test-trace-plain.json");
    let sampled = std::env::temp_dir().join("ensemble-cli-test-trace-sampled.json");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--trace-out",
        plain.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--timeline",
        "--trace-out",
        sampled.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let plain_json = std::fs::read_to_string(&plain).unwrap();
    let sampled_json = std::fs::read_to_string(&sampled).unwrap();
    // Counter tracks appear only under --timeline; without the flag the
    // trace bytes are identical to the pre-telemetry output.
    assert!(
        !plain_json.contains("\"ph\":\"C\""),
        "counters without --timeline"
    );
    assert!(
        sampled_json.contains("\"ph\":\"C\""),
        "no counters with --timeline"
    );
    for track in [
        "\"utilization\"",
        "\"active_teams\"",
        "\"stall_share\"",
        "\"heap_bytes\"",
    ] {
        assert!(sampled_json.contains(track), "missing {track} track");
    }
}

#[test]
fn timeline_flag_fills_schema_v5_metrics() {
    let f = arg_file("timeline-metrics", 2);
    let m = std::env::temp_dir().join("ensemble-cli-test-timeline-metrics.jsonl");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--timeline",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"schema\":5"), "{launch}");
    assert!(launch.contains("\"timeline\":[{"), "{launch}");
    assert!(launch.contains("\"utilization_mean\":"), "{launch}");
    assert!(!launch.contains("\"utilization_mean\":null"), "{launch}");
    // Without --timeline the v5 fields stay null/empty.
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--quiet",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"timeline\":[]"), "{launch}");
    assert!(launch.contains("\"utilization_mean\":null"), "{launch}");
}

#[test]
fn multi_device_metrics_carry_schema_v4_fields() {
    let f = arg_file("metrics", 4);
    let m = std::env::temp_dir().join("ensemble-cli-test-metrics-out.jsonl");
    let out = run(&[
        "xsbench",
        "-f",
        f.to_str().unwrap(),
        "--devices",
        "2",
        "--quiet",
        "--metrics-out",
        m.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    let jsonl = std::fs::read_to_string(&m).unwrap();
    let launch = jsonl
        .lines()
        .find(|l| l.contains("\"record\":\"launch\""))
        .expect("launch record present");
    assert!(launch.contains("\"devices\":2"), "{launch}");
    assert!(launch.contains("\"makespan_s\""), "{launch}");
    assert!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"instance\""))
            .all(|l| l.contains("\"device\":")),
        "every instance record names its device"
    );
}
