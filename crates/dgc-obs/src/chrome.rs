//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).

use crate::recorder::{Recorder, TraceEvent};
use serde::{Serialize, Value};

impl Serialize for TraceEvent {
    // Hand-rolled: the trace-event format wants `ph` as a string, `dur`
    // only on complete events, a scope field on instants, and `args`
    // omitted when empty — shapes the derive can't express.
    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("cat".into(), Value::Str(self.cat.clone())),
            ("ph".into(), Value::Str(self.ph.to_string())),
            ("ts".into(), Value::F64(self.ts)),
            ("pid".into(), Value::U64(self.pid as u64)),
            ("tid".into(), Value::U64(self.tid as u64)),
        ];
        if let Some(dur) = self.dur {
            obj.push(("dur".into(), Value::F64(dur)));
        }
        if self.ph == 'i' {
            // Instant scope: thread-local arrow in the viewer.
            obj.push(("s".into(), Value::Str("t".into())));
        }
        if !self.args.is_empty() {
            obj.push(("args".into(), Value::Object(self.args.clone())));
        }
        Value::Object(obj)
    }
}

fn metadata_event(name: &str, pid: u32, tid: Option<u32>, value: &str) -> Value {
    let mut obj: Vec<(String, Value)> = vec![
        ("name".into(), Value::Str(name.to_string())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::U64(pid as u64)),
    ];
    if let Some(tid) = tid {
        obj.push(("tid".into(), Value::U64(tid as u64)));
    }
    obj.push((
        "args".into(),
        Value::Object(vec![("name".into(), Value::Str(value.to_string()))]),
    ));
    Value::Object(obj)
}

impl Recorder {
    /// Render everything recorded so far as a Chrome trace-event JSON
    /// document: `{"traceEvents": [...]}` with lane-name metadata first,
    /// then the spans/instants in recording order.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.events().len() + 8);
        for (pid, name) in self.process_names() {
            events.push(metadata_event("process_name", *pid, None, name));
        }
        for ((pid, tid), name) in self.thread_names() {
            events.push(metadata_event("thread_name", *pid, Some(*tid), name));
        }
        events.extend(self.events().iter().map(|e| e.to_value()));
        let doc = Value::Object(vec![("traceEvents".to_string(), Value::Array(events))]);
        serde_json::to_string(&doc).expect("value serialization is total")
    }
}

/// Structural sanity check for a Chrome trace document: parses the JSON,
/// requires a `traceEvents` array whose entries carry the mandatory
/// fields, non-negative timestamps and durations, and a known phase.
/// Returns the number of non-metadata events.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut payload = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |k: &str| {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing `{k}`"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `ph` not a string"))?;
        field("name")?;
        field("pid")?;
        match ph {
            "M" => continue,
            "X" => {
                let ts = field("ts")?.as_f64().unwrap_or(-1.0);
                let dur = field("dur")?.as_f64().unwrap_or(-1.0);
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur ({ts}, {dur})"));
                }
            }
            "i" => {
                let ts = field("ts")?.as_f64().unwrap_or(-1.0);
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts ({ts})"));
                }
            }
            "C" => {
                let ts = field("ts")?.as_f64().unwrap_or(-1.0);
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts ({ts})"));
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
        payload += 1;
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_and_counts_payload_events() {
        let mut r = Recorder::enabled();
        r.name_process(0, "loader");
        r.name_process(1, "SM 0");
        r.name_thread(1, 4, "block 4");
        r.span(0, 0, "h2d argv", "loader", 0.0, 3.5);
        r.span(1, 4, "block 4", "block", 5.0, 100.0);
        r.instant(1, 4, "rpc stall ×2", "rpc", 80.0);
        let json = r.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 3);
        // Metadata precedes payload and names the lanes.
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("loader")
        );
    }

    #[test]
    fn counter_events_export_and_validate() {
        let mut r = Recorder::enabled();
        r.counter_args(
            0,
            0,
            "utilization",
            "counter",
            12.5,
            vec![
                ("issue".into(), Value::F64(0.4)),
                ("dram".into(), Value::F64(0.1)),
            ],
        );
        let json = r.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let ev = &doc.get("traceEvents").unwrap().as_array().unwrap()[0];
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("C"));
        // Counters carry no duration or instant scope, only numeric args.
        assert!(ev.get("dur").is_none());
        assert!(ev.get("s").is_none());
        assert_eq!(
            ev.get("args").unwrap().get("issue").unwrap().as_f64(),
            Some(0.4)
        );
        // Negative counter timestamps are rejected like spans.
        let bad = r#"{"traceEvents":[{"name":"c","ph":"C","pid":0,"tid":0,"ts":-1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn empty_recorder_exports_empty_trace() {
        let r = Recorder::disabled();
        let json = r.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 0);
    }

    #[test]
    fn enabled_but_empty_recorder_exports_parseable_trace() {
        // An enabled recorder that never saw a span still produces a
        // document Perfetto can open: empty traceEvents, zero payload.
        let r = Recorder::enabled();
        let json = r.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 0);
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_array().is_some());
    }

    #[test]
    fn unclosed_begin_span_is_cleanly_rejected() {
        // The exporter only emits complete ("X") events, so a dangling
        // "B" (begin-without-end, i.e. an unclosed span) can only come
        // from a foreign tool. The validator must reject it with a
        // message, not panic or mis-count it.
        let json =
            r#"{"traceEvents":[{"name":"open","cat":"block","ph":"B","ts":1.0,"pid":1,"tid":0}]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("unknown phase"), "got: {err}");
    }

    #[test]
    fn out_of_order_timestamps_still_export_parseable_trace() {
        // Spans recorded out of timestamp order (later span first) are
        // legal in the trace-event format — viewers sort by ts — so the
        // export must validate, preserve recording order, and keep both
        // events intact.
        let mut r = Recorder::enabled();
        r.span(1, 0, "late", "block", 500.0, 100.0);
        r.span(1, 0, "early", "block", 0.0, 50.0);
        r.instant(1, 0, "mid", "rpc", 250.0);
        let json = r.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 3);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts, vec![500.0, 0.0, 250.0]);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(validate_chrome_trace(
            r#"{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":-1,"dur":1}]}"#
        )
        .is_err());
    }
}
