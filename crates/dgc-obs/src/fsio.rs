//! Crash-atomic file output.
//!
//! Every artifact the tools emit (`--metrics-out`, `--trace-out`,
//! `--insight-out`, dashboards, bench reports) used to be written in
//! place with `std::fs::write` — a crash or `kill -9` mid-write leaves a
//! half-written file that downstream gates then parse as corrupt data.
//! [`write_atomic`] closes that window: the bytes land in a `<path>.tmp`
//! sibling, are fsync'd, and only then renamed over the destination.
//! POSIX `rename(2)` within one directory is atomic, so readers observe
//! either the complete old file or the complete new one, never a tear.
//!
//! Append-only logs (the monitor snapshot stream, the serve job journal)
//! are *not* candidates for this helper — they get their integrity from
//! per-record framing instead (CRC-framed lines a lossy loader can
//! re-validate record by record).

use std::io::Write;
use std::path::Path;

/// Write `contents` to `path` crash-atomically: `<path>.tmp` + fsync +
/// rename. On any error the destination is untouched (a stale `.tmp`
/// sibling may remain; the next successful write replaces it).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_ref())?;
    // Flush to stable storage before the rename makes the file visible:
    // otherwise a power loss could expose a renamed-but-empty file.
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dgc-obs-fsio-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file_and_leaves_no_tmp_behind() {
        let dir = tmp_dir("new");
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"a\":1}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":1}\n");
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replaces_existing_file_whole() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.txt");
        write_atomic(&path, "old contents, quite long").unwrap();
        write_atomic(&path, "new").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_on_missing_directory_leaves_nothing() {
        let path = std::path::Path::new("/nonexistent-dir/deep/out.json");
        assert!(write_atomic(path, "x").is_err());
        assert!(!path.exists());
    }
}
