//! The causal span graph of an ensemble run.
//!
//! Every driver — plain, batched, resilient, sharded — accumulates its
//! reported makespan as a fold over per-launch wall-time addends (plus
//! backoff waits, plus per-round maxima over device lanes). This module
//! records those *exact* f64 addends in accumulation order, so
//! [`SpanGraph::replay_makespan_s`] reproduces the reported makespan
//! **bit-exactly**: the replay performs the same additions, in the same
//! association, as the driver did.
//!
//! Each [`LaunchNode`] additionally carries the in-kernel critical chain
//! (from [`gpu_sim::ScheduleDetail::critical_chain`]), per-block stall
//! buckets, and the wave layout — the raw material `dgc-insight` turns
//! into critical-path extraction, blame tables, flamegraphs and Gantt
//! summaries.
//!
//! Graphs are produced two ways:
//!
//! * **in-process** — `dgc-core` builds one node per kernel launch; the
//!   outer drivers re-stamp device/round/instances exactly as they do
//!   for instance metrics. This path is exact.
//! * **post-hoc** — [`SpanGraph::from_chrome_trace`] reconstructs an
//!   approximate graph from a merged Chrome trace (`merge_shifted` lane
//!   groups). Durations come back through the µs domain, so sums are
//!   only approximate; the reconstruction normalizes the cycle domain to
//!   microseconds (`cycle_s = 1e-6`).

use crate::recorder::{DEVICE_PID_STRIDE, PID_HOST};
use gpu_sim::{ScheduleDetail, StallBuckets};
use serde::Value;

/// One hop of a kernel's critical chain: a block on the chain, plus the
/// scheduling gap it spent queued after its predecessor freed the SM
/// slot. Residence plus gaps telescopes to the kernel's cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    pub block: u32,
    pub sm: u32,
    pub wave: u32,
    pub start_cycle: f64,
    pub end_cycle: f64,
    /// Idle cycles between the predecessor's completion (or cycle 0) and
    /// this block's placement.
    pub gap_cycles: f64,
    /// The hop's stall-cycle decomposition (zero buckets when stall
    /// collection was off). Block-level buckets sum to `end_cycle`.
    pub stall: StallBuckets,
}

impl CriticalHop {
    /// Build the hop list from a kernel's recorded schedule.
    pub fn chain_from_schedule(sched: &ScheduleDetail) -> Vec<CriticalHop> {
        let mut prev_end = 0.0;
        sched
            .critical_chain()
            .into_iter()
            .map(|b| {
                let hop = CriticalHop {
                    block: b.block,
                    sm: b.sm,
                    wave: b.wave,
                    start_cycle: b.start_cycle,
                    end_cycle: b.end_cycle,
                    gap_cycles: b.start_cycle - prev_end,
                    stall: b.stalls.unwrap_or_default(),
                };
                prev_end = b.end_cycle;
                hop
            })
            .collect()
    }
}

/// One kernel launch of the run: the host transfer spans around it, the
/// exact wall-time addend the driver accumulated for it, and the
/// in-device structure needed for blame attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchNode {
    /// Kernel name (`app-x<N>` of this launch's chunk).
    pub kernel: String,
    /// Fleet index of the device that ran the launch (0 outside the
    /// sharded drivers).
    pub device: u32,
    /// Retry round (0 = first attempt), mirroring `InstanceMetrics::attempt`.
    pub round: u32,
    /// True when the launch ran concurrently with other devices' launches
    /// of the same round (sharded drivers): the round then costs the
    /// slowest device lane, not the sum.
    pub concurrent: bool,
    /// Launch-timeline offset where this node begins, seconds.
    pub start_s: f64,
    /// H2D argv transfer, seconds.
    pub h2d_s: f64,
    /// Kernel envelope (launch overhead + simulated cycles), seconds.
    pub kernel_s: f64,
    /// D2H result transfer, seconds.
    pub d2h_s: f64,
    /// The **exact** f64 the driver added to its makespan accumulator
    /// for this launch (`kernel_s + (h2d_s + d2h_s)` in the driver's own
    /// association). Replay uses this value verbatim.
    pub total_s: f64,
    /// Launch overhead component of `kernel_s`, seconds.
    pub overhead_s: f64,
    /// Seconds per simulated cycle on this device (converts chain and
    /// stall cycles to wall time).
    pub cycle_s: f64,
    /// Scheduling waves of the kernel.
    pub waves: u32,
    /// Teams (instances) per block of this launch.
    pub teams_per_block: u32,
    /// Global instance ids, in local team order.
    pub instances: Vec<u32>,
    /// Per-block stall buckets, indexed like the launch's blocks (each
    /// sums to that block's end cycle). Empty when stalls were off.
    pub block_stalls: Vec<StallBuckets>,
    /// Per-wave `(start_cycle, end_cycle, blocks)` rows.
    pub wave_spans: Vec<(f64, f64, u32)>,
    /// The kernel's critical chain, start-ordered.
    pub chain: Vec<CriticalHop>,
}

impl LaunchNode {
    /// Global instance ids resident in `block`, given the launch's
    /// packing. Empty for an out-of-range block.
    pub fn block_instances(&self, block: u32) -> &[u32] {
        let tpb = self.teams_per_block.max(1) as usize;
        let lo = (block as usize * tpb).min(self.instances.len());
        let hi = ((block as usize + 1) * tpb).min(self.instances.len());
        &self.instances[lo..hi]
    }

    /// The kernel's simulated cycles (critical chain end), 0 for an
    /// empty chain.
    pub fn kernel_cycles(&self) -> f64 {
        self.chain.last().map(|h| h.end_cycle).unwrap_or(0.0)
    }
}

/// A node of the causal span graph, in driver accumulation order.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanNode {
    Launch(LaunchNode),
    /// Simulated backoff wait before retry round `round`.
    Backoff {
        round: u32,
        wait_s: f64,
    },
}

/// The causal span graph of one ensemble run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanGraph {
    /// Nodes in the order the driver accumulated their wall time.
    pub nodes: Vec<SpanNode>,
}

impl SpanGraph {
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn push_launch(&mut self, node: LaunchNode) {
        self.nodes.push(SpanNode::Launch(node));
    }

    pub fn push_backoff(&mut self, round: u32, wait_s: f64) {
        self.nodes.push(SpanNode::Backoff { round, wait_s });
    }

    /// Append another graph's nodes (batched/resilient accumulation).
    pub fn merge(&mut self, other: SpanGraph) {
        self.nodes.extend(other.nodes);
    }

    /// The launch nodes, in accumulation order.
    pub fn launches(&self) -> impl Iterator<Item = &LaunchNode> {
        self.nodes.iter().filter_map(|n| match n {
            SpanNode::Launch(l) => Some(l),
            SpanNode::Backoff { .. } => None,
        })
    }

    /// Stamp every launch with the device lane that ran it and whether
    /// it ran concurrently with other lanes (sharded drivers, mirroring
    /// `InstanceMetrics::device`).
    pub fn stamp_device(&mut self, device: u32, concurrent: bool) {
        for n in &mut self.nodes {
            if let SpanNode::Launch(l) = n {
                l.device = device;
                l.concurrent = concurrent;
            }
        }
    }

    /// Stamp every launch with its retry round (resilient drivers).
    pub fn stamp_round(&mut self, round: u32) {
        for n in &mut self.nodes {
            if let SpanNode::Launch(l) = n {
                l.round = round;
            }
        }
    }

    /// Shift every launch's start on the launch timeline (batched and
    /// resilient drivers, in lockstep with the `end_time_s` shift they
    /// apply to instance metrics).
    pub fn shift_start_s(&mut self, delta_s: f64) {
        for n in &mut self.nodes {
            if let SpanNode::Launch(l) = n {
                l.start_s += delta_s;
            }
        }
    }

    /// Remap local instance ids to global ones (`map[local] = global`),
    /// exactly as the outer drivers re-stamp `InstanceMetrics::instance`.
    pub fn remap_instances(&mut self, map: &[u32]) {
        for n in &mut self.nodes {
            if let SpanNode::Launch(l) = n {
                for i in &mut l.instances {
                    if let Some(&g) = map.get(*i as usize) {
                        *i = g;
                    }
                }
            }
        }
    }

    /// Number of distinct device lanes observed.
    pub fn devices(&self) -> u32 {
        self.launches().map(|l| l.device + 1).max().unwrap_or(0)
    }

    /// Number of retry rounds observed (1 = no retries).
    pub fn rounds(&self) -> u32 {
        self.launches().map(|l| l.round + 1).max().unwrap_or(0)
    }

    /// Replay the drivers' makespan accumulation over the graph:
    ///
    /// * a backoff node adds its wait to the accumulator;
    /// * a non-concurrent launch adds its `total_s` directly (plain,
    ///   batched and single-device resilient drivers keep one running
    ///   accumulator);
    /// * a run of concurrent launches of one round folds each device
    ///   lane from zero and adds the slowest lane (the sharded drivers'
    ///   per-round makespan).
    ///
    /// Because every addition uses the driver's own addend in the
    /// driver's own association, the result is bit-exact against the
    /// reported makespan.
    pub fn replay_makespan_s(&self) -> f64 {
        let mut acc = 0.0f64;
        let mut i = 0usize;
        while i < self.nodes.len() {
            match &self.nodes[i] {
                SpanNode::Backoff { wait_s, .. } => {
                    acc += wait_s;
                    i += 1;
                }
                SpanNode::Launch(n) if !n.concurrent => {
                    acc += n.total_s;
                    i += 1;
                }
                SpanNode::Launch(first) => {
                    let round = first.round;
                    let mut lanes: Vec<(u32, f64)> = Vec::new();
                    while let Some(SpanNode::Launch(m)) = self.nodes.get(i) {
                        if !m.concurrent || m.round != round {
                            break;
                        }
                        match lanes.iter_mut().find(|(d, _)| *d == m.device) {
                            Some(l) => l.1 += m.total_s,
                            None => lanes.push((m.device, m.total_s)),
                        }
                        i += 1;
                    }
                    acc += lanes.iter().fold(0.0f64, |m, &(_, t)| m.max(t));
                }
            }
        }
        acc
    }

    /// Reconstruct an approximate span graph from a merged Chrome trace
    /// (the `--trace-out` artifact). Per device lane group
    /// ([`DEVICE_PID_STRIDE`]): every `kernel` span becomes a launch
    /// node, paired with the nearest preceding `h2d argv` span and the
    /// nearest following `d2h results` span; `block` spans inside the
    /// kernel envelope rebuild the schedule (stall args scale the span
    /// µs into bucket shares); `retry round` recovery instants become
    /// backoff nodes.
    ///
    /// The reconstruction works in the µs domain (`cycle_s = 1e-6`,
    /// cycles ≡ µs) and assumes one instance per block, so sums are
    /// approximate — exact replay needs the in-process graph.
    pub fn from_chrome_trace(text: &str) -> Result<SpanGraph, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| format!("trace JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "trace without traceEvents".to_string())?;

        struct Span {
            pid: u32,
            ts: f64,
            dur: f64,
            tid: u32,
            name: String,
            args: Vec<(String, f64)>,
        }
        let mut kernels: Vec<Span> = Vec::new();
        let mut h2ds: Vec<Span> = Vec::new();
        let mut d2hs: Vec<Span> = Vec::new();
        let mut blocks: Vec<Span> = Vec::new();
        let mut backoffs: Vec<(f64, u32, f64)> = Vec::new(); // (ts, round, wait_s)

        for e in events {
            let get = |k: &str| e.get(k);
            let ph = get("ph").and_then(|v| v.as_str()).unwrap_or("");
            let cat = get("cat").and_then(|v| v.as_str()).unwrap_or("");
            let name = get("name").and_then(|v| v.as_str()).unwrap_or("");
            let pid = get("pid").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let tid = get("tid").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let ts = get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let dur = get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let num_args: Vec<(String, f64)> = get("args")
                .and_then(|v| v.as_object())
                .map(|o| {
                    o.iter()
                        .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                        .collect()
                })
                .unwrap_or_default();
            let span = || Span {
                pid,
                ts,
                dur,
                tid,
                name: name.to_string(),
                args: num_args.clone(),
            };
            match (ph, cat) {
                ("X", "kernel") => kernels.push(span()),
                ("X", "loader") if name == "h2d argv" => h2ds.push(span()),
                ("X", "loader") if name == "d2h results" => d2hs.push(span()),
                ("X", "block") => blocks.push(span()),
                ("i", "recovery") if name.starts_with("retry round") => {
                    let round: u32 = name
                        .rsplit(' ')
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    let wait = num_args
                        .iter()
                        .find(|(k, _)| k == "backoff_s")
                        .map(|&(_, v)| v)
                        .unwrap_or(0.0);
                    backoffs.push((ts, round, wait));
                }
                _ => {}
            }
        }
        if kernels.is_empty() {
            return Err("trace has no kernel spans".into());
        }

        let mut devices: Vec<u32> = kernels.iter().map(|k| k.pid / DEVICE_PID_STRIDE).collect();
        devices.sort_unstable();
        devices.dedup();
        let multi_device = devices.len() > 1;

        // (sort key, node) — interleave kernels and backoffs by timestamp.
        let mut ordered: Vec<(f64, SpanNode)> = backoffs
            .iter()
            .map(|&(ts, round, wait_s)| (ts, SpanNode::Backoff { round, wait_s }))
            .collect();
        kernels.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
        for k in &kernels {
            let dev = k.pid / DEVICE_PID_STRIDE;
            let same_dev = |s: &&Span| s.pid / DEVICE_PID_STRIDE == dev;
            let h2d = h2ds
                .iter()
                .filter(same_dev)
                .filter(|s| s.ts <= k.ts + 1e-6)
                .max_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
            let d2h = d2hs
                .iter()
                .filter(same_dev)
                .filter(|s| s.ts >= k.ts + k.dur - 1e-6)
                .min_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap_or(std::cmp::Ordering::Equal));
            let kblocks: Vec<&Span> = blocks
                .iter()
                .filter(|s| {
                    s.pid / DEVICE_PID_STRIDE == dev
                        && s.pid % DEVICE_PID_STRIDE != PID_HOST
                        && s.ts >= k.ts - 1e-6
                        && s.ts + s.dur <= k.ts + k.dur + 1e-6
                })
                .collect();
            // The device-cycle origin: the earliest block placement (a
            // wave-0 block starts at cycle 0, so this recovers the launch
            // overhead boundary).
            let origin = kblocks
                .iter()
                .map(|s| s.ts)
                .fold(f64::INFINITY, f64::min)
                .min(k.ts + k.dur);
            let mut sched = ScheduleDetail::default();
            let mut max_wave = 0u32;
            for b in &kblocks {
                let wave = b
                    .args
                    .iter()
                    .find(|(n, _)| n == "wave")
                    .map(|&(_, v)| v as u32)
                    .unwrap_or(0);
                max_wave = max_wave.max(wave);
                let start = b.ts - origin;
                let end = b.ts + b.dur - origin;
                // Stall args are cycles summing to the block's end cycle;
                // rescale them onto the µs domain.
                let raw: Vec<(String, f64)> = b
                    .args
                    .iter()
                    .filter(|(n, _)| n.starts_with("stall_"))
                    .cloned()
                    .collect();
                let raw_total: f64 = raw.iter().map(|&(_, v)| v).sum();
                let stalls = (raw_total > 0.0).then(|| {
                    let scale = end / raw_total;
                    let of = |name: &str| {
                        raw.iter()
                            .find(|(n, _)| n == name)
                            .map(|&(_, v)| v * scale)
                            .unwrap_or(0.0)
                    };
                    StallBuckets {
                        compute: of("stall_compute"),
                        dram_bw: of("stall_dram_bw"),
                        mlp: of("stall_mlp"),
                        rpc: of("stall_rpc"),
                        alloc: of("stall_alloc"),
                        wave_tail: of("stall_wave_tail"),
                    }
                });
                sched.blocks.push(gpu_sim::BlockSchedule {
                    block: b.tid,
                    sm: (b.pid % DEVICE_PID_STRIDE).saturating_sub(1),
                    wave,
                    start_cycle: start,
                    end_cycle: end,
                    stalls,
                });
            }
            for w in 0..=max_wave {
                let start = sched
                    .blocks
                    .iter()
                    .filter(|b| b.wave == w)
                    .map(|b| b.start_cycle)
                    .fold(f64::INFINITY, f64::min);
                sched
                    .wave_starts
                    .push(if start.is_finite() { start } else { 0.0 });
            }
            let h2d_s = h2d.map(|s| s.dur / 1e6).unwrap_or(0.0);
            let d2h_s = d2h.map(|s| s.dur / 1e6).unwrap_or(0.0);
            let kernel_s = k.dur / 1e6;
            let instances: Vec<u32> = sched.blocks.iter().map(|b| b.block).collect();
            let node = LaunchNode {
                kernel: k.name.clone(),
                device: dev,
                round: 0,
                concurrent: multi_device,
                start_s: h2d.map(|s| s.ts / 1e6).unwrap_or(k.ts / 1e6),
                h2d_s,
                kernel_s,
                d2h_s,
                total_s: kernel_s + (h2d_s + d2h_s),
                overhead_s: (origin - k.ts).max(0.0) / 1e6,
                cycle_s: 1e-6,
                waves: sched.waves().max(1),
                teams_per_block: 1,
                instances,
                block_stalls: sched
                    .blocks
                    .iter()
                    .map(|b| b.stalls.unwrap_or_default())
                    .collect(),
                wave_spans: sched.wave_spans(),
                chain: CriticalHop::chain_from_schedule(&sched),
            };
            ordered.push((k.ts, SpanNode::Launch(node)));
        }
        ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Ok(SpanGraph {
            nodes: ordered.into_iter().map(|(_, n)| n).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(device: u32, round: u32, concurrent: bool, total_s: f64) -> LaunchNode {
        LaunchNode {
            kernel: "app-x1".into(),
            device,
            round,
            concurrent,
            start_s: 0.0,
            h2d_s: 0.0,
            kernel_s: total_s,
            d2h_s: 0.0,
            total_s,
            overhead_s: 0.0,
            cycle_s: 1e-9,
            waves: 1,
            teams_per_block: 1,
            instances: vec![0],
            block_stalls: Vec::new(),
            wave_spans: Vec::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn replay_folds_direct_nodes_like_one_accumulator() {
        // Values chosen so association matters: (a + b) + c != a + (b + c).
        let (a, b, c) = (0.1f64, 0.2f64, 0.3f64);
        assert_ne!((a + b) + c, a + (b + c));
        let mut g = SpanGraph::default();
        g.push_launch(launch(0, 0, false, a));
        g.push_launch(launch(0, 0, false, b));
        g.push_launch(launch(0, 0, false, c));
        let mut acc = 0.0f64;
        acc += a;
        acc += b;
        acc += c;
        assert_eq!(g.replay_makespan_s(), acc);
    }

    #[test]
    fn replay_takes_the_slowest_lane_of_a_concurrent_round() {
        let mut g = SpanGraph::default();
        g.push_launch(launch(0, 0, true, 0.1));
        g.push_launch(launch(1, 0, true, 0.25));
        g.push_launch(launch(0, 0, true, 0.05));
        assert_eq!(g.replay_makespan_s(), 0.25);
        // A second round with backoff between: per-round maxima sum.
        g.push_backoff(1, 0.5);
        g.push_launch(launch(1, 1, true, 0.125));
        let expect = {
            let mut acc = 0.25f64;
            acc += 0.5;
            acc += 0.125;
            acc
        };
        assert_eq!(g.replay_makespan_s(), expect);
    }

    #[test]
    fn stamps_and_remap_rewrite_launch_nodes_only() {
        let mut g = SpanGraph::default();
        g.push_backoff(1, 0.5);
        let mut l = launch(0, 0, false, 1.0);
        l.instances = vec![0, 1];
        g.push_launch(l);
        g.stamp_device(3, true);
        g.stamp_round(2);
        g.shift_start_s(4.0);
        g.remap_instances(&[7, 9]);
        let node = g.launches().next().unwrap();
        assert_eq!(node.device, 3);
        assert!(node.concurrent);
        assert_eq!(node.round, 2);
        assert_eq!(node.start_s, 4.0);
        assert_eq!(node.instances, vec![7, 9]);
        assert_eq!(g.rounds(), 3);
        assert_eq!(g.devices(), 4);
        assert!(matches!(g.nodes[0], SpanNode::Backoff { round: 1, .. }));
    }

    #[test]
    fn block_instances_respects_packing() {
        let mut l = launch(0, 0, false, 1.0);
        l.teams_per_block = 2;
        l.instances = vec![4, 5, 6];
        assert_eq!(l.block_instances(0), &[4, 5]);
        assert_eq!(l.block_instances(1), &[6]);
        assert_eq!(l.block_instances(2), &[] as &[u32]);
    }

    #[test]
    fn chain_from_schedule_carries_gaps_and_stalls() {
        let mk = |block, sm, start: f64, end: f64| gpu_sim::BlockSchedule {
            block,
            sm,
            wave: 0,
            start_cycle: start,
            end_cycle: end,
            stalls: Some(StallBuckets {
                compute: end,
                ..StallBuckets::default()
            }),
        };
        let sched = ScheduleDetail {
            blocks: vec![mk(0, 0, 0.0, 100.0), mk(1, 0, 110.0, 300.0)],
            phase_spans: Vec::new(),
            wave_starts: vec![0.0],
        };
        let chain = CriticalHop::chain_from_schedule(&sched);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].gap_cycles, 0.0);
        assert_eq!(chain[1].gap_cycles, 10.0);
        assert_eq!(chain[1].stall.compute, 300.0);
    }

    #[test]
    fn from_chrome_trace_rebuilds_kernel_and_blocks() {
        use crate::recorder::{sm_pid, Recorder};
        let mut rec = Recorder::enabled();
        rec.span_args(
            PID_HOST,
            0,
            "h2d argv",
            "loader",
            0.0,
            10.0,
            vec![("bytes".into(), Value::U64(64))],
        );
        rec.span(PID_HOST, 0, "app-x2", "kernel", 10.0, 100.0);
        // Launch overhead 5 µs: blocks start at ts 15.
        rec.span_args(
            sm_pid(0),
            0,
            "block 0",
            "block",
            15.0,
            60.0,
            vec![
                ("wave".into(), Value::U64(0)),
                ("stall_compute".into(), Value::F64(45.0)),
                ("stall_wave_tail".into(), Value::F64(15.0)),
            ],
        );
        rec.span_args(
            sm_pid(1),
            1,
            "block 1",
            "block",
            15.0,
            95.0,
            vec![
                ("wave".into(), Value::U64(0)),
                ("stall_compute".into(), Value::F64(95.0)),
            ],
        );
        rec.span(PID_HOST, 0, "d2h results", "loader", 110.0, 2.0);
        let g = SpanGraph::from_chrome_trace(&rec.to_chrome_trace()).unwrap();
        assert_eq!(g.nodes.len(), 1);
        let n = g.launches().next().unwrap();
        assert_eq!(n.kernel, "app-x2");
        assert_eq!(n.device, 0);
        assert!(!n.concurrent);
        assert!((n.h2d_s - 10e-6).abs() < 1e-12);
        assert!((n.kernel_s - 100e-6).abs() < 1e-12);
        assert!((n.d2h_s - 2e-6).abs() < 1e-12);
        assert!((n.overhead_s - 5e-6).abs() < 1e-12);
        // The critical block is block 1 (95 µs); chain ends there.
        assert_eq!(n.chain.last().unwrap().block, 1);
        assert_eq!(n.chain.last().unwrap().end_cycle, 95.0);
        // Stall args rescale onto the µs domain: compute bucket = end.
        assert!((n.chain.last().unwrap().stall.compute - 95.0).abs() < 1e-9);
        // Replay approximates the wall total: 10 + 100 + 2 µs.
        assert!((g.replay_makespan_s() - 112e-6).abs() < 1e-12);
        // Malformed input errors instead of panicking.
        assert!(SpanGraph::from_chrome_trace("not json").is_err());
        assert!(SpanGraph::from_chrome_trace("{\"traceEvents\":[]}").is_err());
    }
}
