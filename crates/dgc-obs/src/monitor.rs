//! The live-telemetry sink drivers stream operational events into.
//!
//! [`MonitorSink`] is the narrow waist between the ensemble drivers and
//! whatever operational backend is listening (the `dgc-monitor` metrics
//! registry, a test probe, nothing at all). The sink hangs off the
//! [`crate::Recorder`] every driver already threads through, so wiring
//! monitoring up changes no driver signatures, and leaving it unset costs
//! one `Option` check per event.
//!
//! Every method takes `&self` and must be cheap and non-blocking: sinks
//! are shared across the per-device threads of a sharded launch behind an
//! [`Arc`]. Crucially, sinks **observe** the run — they are handed copies
//! of values the driver already computed and can never feed anything back
//! into the simulation, which is how `--monitor-out` keeps simulated
//! results bit-identical to an unmonitored run.

use std::sync::Arc;

/// Receiver for operational events streamed out of a running ensemble.
///
/// All methods default to no-ops so sinks implement only what they count.
/// `device` arguments are fleet-relative ordinals (0 for single-device
/// drivers); sharded drivers re-stamp them via [`DeviceStamped`].
pub trait MonitorSink: Send + Sync {
    /// An instance reached a final outcome for this launch: `ok` says
    /// whether it succeeded, `latency_s` is its simulated end-to-end time
    /// within the launch.
    fn instance_done(&self, device: u32, ok: bool, latency_s: f64) {
        let _ = (device, ok, latency_s);
    }

    /// A previously-failed instance succeeded on a retry round.
    fn instance_recovered(&self, device: u32) {
        let _ = device;
    }

    /// An instance was queued for another attempt.
    fn retry_scheduled(&self, device: u32) {
        let _ = device;
    }

    /// The recovery loop halved the batch after an OOM round.
    fn oom_split(&self, new_batch: u32) {
        let _ = new_batch;
    }

    /// The recovery loop charged `seconds` of backoff wait.
    fn backoff_wait(&self, seconds: f64) {
        let _ = seconds;
    }

    /// A kernel launch finished on `device`: `busy_s` of simulated lane
    /// time covering `instances` instances.
    fn kernel_launch(&self, device: u32, instances: u32, busy_s: f64) {
        let _ = (device, instances, busy_s);
    }

    /// A team finished its functional execution inside a running kernel
    /// (`done` of `total` so far) — the finest-grained liveness signal.
    fn team_done(&self, device: u32, done: u32, total: u32) {
        let _ = (device, done, total);
    }

    /// Heap occupancy on `device` after a launch: live bytes, the
    /// allocation high-water mark, and capacity.
    fn heap_sample(&self, device: u32, in_use: u64, high_water: u64, capacity: u64) {
        let _ = (device, in_use, high_water, capacity);
    }

    /// RPC traffic attributable to the event being reported: `calls`
    /// round trips of which `failures` errored.
    fn rpc_activity(&self, calls: u64, failures: u64) {
        let _ = (calls, failures);
    }

    /// A whole device died mid-run.
    fn device_dead(&self, device: u32) {
        let _ = device;
    }

    /// Mean issue-slot utilization over a finished launch on `device`.
    fn utilization_sample(&self, device: u32, mean: f64) {
        let _ = (device, mean);
    }
}

/// Forwarding sink that overrides the device ordinal on every event.
///
/// Sharded drivers run each device's shard with a private [`crate::Recorder`];
/// cloning the parent sink through `DeviceStamped` makes those per-device
/// streams land under the right device label without the inner sink (or
/// the single-device driver underneath) knowing which lane it is on.
pub struct DeviceStamped {
    inner: Arc<dyn MonitorSink>,
    device: u32,
}

impl DeviceStamped {
    /// Wrap `inner` so every event reports `device`.
    pub fn stamp(inner: Arc<dyn MonitorSink>, device: u32) -> Arc<dyn MonitorSink> {
        Arc::new(DeviceStamped { inner, device })
    }
}

impl MonitorSink for DeviceStamped {
    fn instance_done(&self, _device: u32, ok: bool, latency_s: f64) {
        self.inner.instance_done(self.device, ok, latency_s);
    }

    fn instance_recovered(&self, _device: u32) {
        self.inner.instance_recovered(self.device);
    }

    fn retry_scheduled(&self, _device: u32) {
        self.inner.retry_scheduled(self.device);
    }

    fn oom_split(&self, new_batch: u32) {
        self.inner.oom_split(new_batch);
    }

    fn backoff_wait(&self, seconds: f64) {
        self.inner.backoff_wait(seconds);
    }

    fn kernel_launch(&self, _device: u32, instances: u32, busy_s: f64) {
        self.inner.kernel_launch(self.device, instances, busy_s);
    }

    fn team_done(&self, _device: u32, done: u32, total: u32) {
        self.inner.team_done(self.device, done, total);
    }

    fn heap_sample(&self, _device: u32, in_use: u64, high_water: u64, capacity: u64) {
        self.inner
            .heap_sample(self.device, in_use, high_water, capacity);
    }

    fn rpc_activity(&self, calls: u64, failures: u64) {
        self.inner.rpc_activity(calls, failures);
    }

    fn device_dead(&self, _device: u32) {
        self.inner.device_dead(self.device);
    }

    fn utilization_sample(&self, _device: u32, mean: f64) {
        self.inner.utilization_sample(self.device, mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    #[derive(Default)]
    struct Probe {
        devices: std::sync::Mutex<Vec<u32>>,
        calls: AtomicU64,
        splits: AtomicU32,
    }

    impl MonitorSink for Probe {
        fn instance_done(&self, device: u32, _ok: bool, _latency_s: f64) {
            self.devices.lock().unwrap().push(device);
        }

        fn rpc_activity(&self, calls: u64, _failures: u64) {
            self.calls.fetch_add(calls, Ordering::Relaxed);
        }

        fn oom_split(&self, new_batch: u32) {
            self.splits.store(new_batch, Ordering::Relaxed);
        }
    }

    #[test]
    fn default_methods_are_no_ops() {
        struct Nothing;
        impl MonitorSink for Nothing {}
        let s = Nothing;
        s.instance_done(0, true, 1.0);
        s.team_done(0, 1, 2);
        s.device_dead(3);
    }

    #[test]
    fn device_stamped_overrides_device_and_forwards_the_rest() {
        let probe = Arc::new(Probe::default());
        let stamped = DeviceStamped::stamp(probe.clone(), 7);
        stamped.instance_done(0, true, 0.5);
        stamped.instance_done(3, false, 0.1);
        stamped.rpc_activity(4, 1);
        stamped.oom_split(2);
        assert_eq!(*probe.devices.lock().unwrap(), vec![7, 7]);
        assert_eq!(probe.calls.load(Ordering::Relaxed), 4);
        assert_eq!(probe.splits.load(Ordering::Relaxed), 2);
    }
}
