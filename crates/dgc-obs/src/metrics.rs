//! Per-instance and launch-wide metrics, with a JSONL exporter.

use crate::timeline::TimelinePoint;
use gpu_sim::StallBuckets;
use host_rpc::RpcStats;
use serde::{Deserialize, Serialize, Value};

/// Version of the JSONL metrics schema emitted by [`metrics_jsonl`] (and
/// stamped into every launch record). Bump whenever a record field
/// changes shape or meaning so profile-diff tooling can refuse to compare
/// incompatible snapshots.
///
/// * v1 — PR 1: instance + launch records, no stall or percentile fields.
/// * v2 — PR 2: per-instance `stall` bucket object, launch-level
///   `schema`, `latency` and `rpc_stall` percentile objects.
/// * v3 — PR 4: recovery fields. Per-instance `timed_out` and
///   `attempt`; launch-level `attempts`, `retried`, `recovered`,
///   `unrecovered`, `timeouts`, `oom_splits`, `final_batch` and
///   `backoff_s`. For resilient runs `failed`/`oom` count failures
///   *cumulatively across attempts*; `unrecovered` is the count after
///   recovery (what v2's `failed` meant for a single-shot launch).
/// * v4 — PR 5: multi-device fields. Per-instance `device` (the
///   fleet index the instance ran on; 0 for single-device launches);
///   launch-level `devices` (fleet size, 1 outside the sharded driver)
///   and `makespan_s` (max per-device wall time; equals `total_time_s`
///   for single-device launches).
/// * v5 — PR 5: utilization-timeline fields. Launch-level
///   `timeline` (periodic [`TimelinePoint`] samples; empty when sampling
///   was off) plus `utilization_mean` and `utilization_p95` (rollups of
///   the timeline's issue-rate series; `null` when sampling was off).
/// * v6 — this version: allocator fields. The per-instance (and
///   timeline) `stall` object gains an `alloc` bucket; launch-level
///   `peak_mem_bytes` (per-device heap high-water marks, fleet-indexed),
///   `fragmentation` (worst end-of-round free-space fragmentation
///   observed on any device, [0, 1]) and `alloc_fallbacks` (allocations
///   that took the global first-fit path while per-team free lists were
///   enabled; 0 when free lists were off).
pub const METRICS_SCHEMA_VERSION: u32 = 6;

/// Fixed-bucket base-2 logarithmic histogram over `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` — i.e. a value lands in the bucket of its bit width.
/// 65 counters cover the full `u64` range with no allocation and O(1)
/// recording, the classic trade of ≤ 2× value resolution for a tiny,
/// mergeable footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            counts: [0; 65],
            total: 0,
        }
    }
}

impl Log2Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (what percentile queries
    /// report).
    fn bucket_max(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another histogram's samples into this one (buckets align by
    /// construction — both are fixed base-2).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Per-bucket `(inclusive upper bound, count)` pairs, low to high —
    /// how cumulative-bucket exporters (OpenMetrics `_bucket{le=...}`)
    /// read the histogram without widening its API per bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (Self::bucket_max(i), c))
    }

    /// Upper bound of the bucket containing the `p`-quantile sample
    /// (`p` in `[0, 1]`); 0 for an empty histogram. The bound
    /// overestimates the true quantile by at most 2×.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_max(i);
            }
        }
        u64::MAX
    }
}

/// p50/p90/p99 summary of a latency population, in seconds. Derived from
/// a [`Log2Histogram`] over nanoseconds, so each value carries that
/// histogram's ≤ 2× bucket resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    pub p50_s: f64,
    pub p90_s: f64,
    pub p99_s: f64,
}

impl LatencyPercentiles {
    /// Summarize a population of durations given in seconds.
    pub fn from_seconds(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Log2Histogram::new();
        for s in samples {
            h.record((s.max(0.0) * 1e9).round() as u64);
        }
        Self::from_ns_histogram(&h)
    }

    /// Summarize an already-built nanosecond histogram.
    pub fn from_ns_histogram(h: &Log2Histogram) -> Self {
        Self {
            p50_s: h.percentile(0.50) as f64 * 1e-9,
            p90_s: h.percentile(0.90) as f64 * 1e-9,
            p99_s: h.percentile(0.99) as f64 * 1e-9,
        }
    }
}

/// Host-RPC round trips broken down by service, as seen by one instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RpcCallCounts {
    pub stdio: u64,
    pub fs: u64,
    pub clock: u64,
    pub exit: u64,
    /// Requests answered with an error response (already included in the
    /// per-service counts).
    pub errors: u64,
}

impl RpcCallCounts {
    /// Total round trips (errors are not double-counted).
    pub fn total(&self) -> u64 {
        self.stdio + self.fs + self.clock + self.exit
    }
}

impl From<RpcStats> for RpcCallCounts {
    fn from(s: RpcStats) -> Self {
        Self {
            stdio: s.stdio_calls,
            fs: s.fs_calls,
            clock: s.clock_calls,
            exit: s.exit_calls,
            errors: s.errors,
        }
    }
}

/// Everything the simulator knows about one instance of an ensemble
/// launch, flattened for export. One JSONL record per instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceMetrics {
    /// Instance id within the launch (its heap-region tag).
    pub instance: u32,
    /// `__user_main`'s return value, `None` if the instance trapped.
    pub exit_code: Option<i32>,
    pub trapped: bool,
    /// Trapped specifically on device-heap exhaustion.
    pub oom: bool,
    /// Killed by the watchdog after exceeding its cycle budget (subset of
    /// `trapped`).
    pub timed_out: bool,
    /// Recovery attempt that produced this record: 0 for the first launch,
    /// `n` for the n-th retry. Always 0 outside the resilient driver.
    pub attempt: u32,
    /// Fleet index of the device the instance ran on. Always 0 outside
    /// the sharded driver.
    pub device: u32,
    /// Simulated completion time of the instance's block, seconds from
    /// launch-sequence start.
    pub end_time_s: f64,
    /// Completion cycle of the instance's block within its kernel.
    pub cycles: f64,
    /// Warp-instructions executed by the instance's team.
    pub warp_insts: f64,
    /// Bytes the instance's loads/stores actually needed.
    pub useful_bytes: f64,
    /// Bytes moved after coalescing into 32 B sectors.
    pub moved_bytes: f64,
    /// 32 B sector transactions.
    pub sectors: u64,
    /// High-water mark of the instance's device-heap region, bytes.
    pub heap_peak_bytes: u64,
    /// RPC round trips by service.
    pub rpc: RpcCallCounts,
    /// Modeled warp-visible time spent waiting on host round trips.
    pub rpc_stall_s: f64,
    /// Stall-cycle decomposition of the instance's block: exclusive
    /// buckets summing to `cycles` (instances packed into one block share
    /// their block's decomposition).
    pub stall: StallBuckets,
}

/// Launch-wide rollup: one JSONL record per ensemble launch, after the
/// per-instance records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchMetrics {
    /// [`METRICS_SCHEMA_VERSION`] at export time.
    pub schema: u32,
    pub kernel: String,
    pub instances: u32,
    /// Instances that trapped or exited non-zero. Under the resilient
    /// driver this counts failures cumulatively across every attempt;
    /// `unrecovered` holds the count that survived recovery.
    pub failed: u32,
    /// Subset of `failed` that ran out of device-heap memory.
    pub oom: u32,
    pub kernel_time_s: f64,
    pub total_time_s: f64,
    /// Devices the launch was sharded across (1 outside the sharded
    /// driver).
    pub devices: u32,
    /// Maximum per-device wall time — the sharded launch's completion
    /// time. Equals `total_time_s` for single-device launches.
    pub makespan_s: f64,
    pub waves: u32,
    pub rpc_total: u64,
    /// Recovery rounds executed (1 = no retries were needed; always 1
    /// outside the resilient driver).
    pub attempts: u32,
    /// Distinct instances that were re-launched at least once.
    pub retried: u32,
    /// Instances that failed at least once but ultimately succeeded.
    pub recovered: u32,
    /// Instances still failed (or skipped) after all recovery attempts.
    /// Equals `failed` outside the resilient driver.
    pub unrecovered: u32,
    /// Instances whose *final* attempt was killed by the watchdog.
    pub timeouts: u32,
    /// Times the concurrent batch was halved after a device OOM
    /// (graceful degradation).
    pub oom_splits: u32,
    /// Concurrent batch size of the last kernel actually launched.
    pub final_batch: u32,
    /// Simulated seconds spent in exponential backoff between attempts.
    pub backoff_s: f64,
    /// Instance completion-time percentiles (seconds from launch start).
    pub latency: LatencyPercentiles,
    /// Per-instance RPC-stall percentiles (seconds).
    pub rpc_stall: LatencyPercentiles,
    /// Mean of the timeline's issue-rate samples (schema v5); `None`
    /// when utilization sampling was off.
    pub utilization_mean: Option<f64>,
    /// 95th-percentile (nearest-rank) issue-rate sample (schema v5);
    /// `None` when utilization sampling was off.
    pub utilization_p95: Option<f64>,
    /// Periodic utilization samples (schema v5); empty when sampling was
    /// off.
    pub timeline: Vec<TimelinePoint>,
    /// Device-heap high-water mark per device, bytes, fleet-indexed
    /// (schema v6). Single-device launches carry one entry.
    pub peak_mem_bytes: Vec<u64>,
    /// Worst end-of-round free-space fragmentation observed on any device,
    /// [0, 1] (schema v6).
    pub fragmentation: f64,
    /// Allocations that fell back to the global first-fit path while
    /// per-team free lists were enabled (schema v6; 0 when off).
    pub alloc_fallbacks: u64,
}

fn tagged_record(kind: &str, v: Value) -> Value {
    let mut obj = vec![("record".to_string(), Value::Str(kind.to_string()))];
    if let Value::Object(fields) = v {
        obj.extend(fields);
    }
    Value::Object(obj)
}

/// Render metrics as JSON Lines: one `{"record":"instance",...}` line per
/// instance followed by one `{"record":"launch",...}` rollup line.
pub fn metrics_jsonl(instances: &[InstanceMetrics], launch: &LaunchMetrics) -> String {
    let mut out = String::new();
    for m in instances {
        let line = serde_json::to_string(&tagged_record("instance", m.to_value()))
            .expect("value serialization is total");
        out.push_str(&line);
        out.push('\n');
    }
    let line = serde_json::to_string(&tagged_record("launch", launch.to_value()))
        .expect("value serialization is total");
    out.push_str(&line);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instance() -> InstanceMetrics {
        InstanceMetrics {
            instance: 3,
            exit_code: Some(0),
            trapped: false,
            oom: false,
            timed_out: false,
            attempt: 0,
            device: 0,
            end_time_s: 1.25e-3,
            cycles: 1.7e6,
            warp_insts: 5.0e5,
            useful_bytes: 1.0e6,
            moved_bytes: 1.5e6,
            sectors: 46875,
            heap_peak_bytes: 4096,
            rpc: RpcCallCounts {
                stdio: 2,
                fs: 1,
                clock: 0,
                exit: 1,
                errors: 0,
            },
            rpc_stall_s: 8.0e-5,
            stall: StallBuckets {
                compute: 1.0e6,
                dram_bw: 4.0e5,
                mlp: 2.0e5,
                rpc: 1.0e5,
                alloc: 0.0,
                wave_tail: 0.0,
            },
        }
    }

    #[test]
    fn instance_metrics_round_trip() {
        let m = sample_instance();
        let json = serde_json::to_string(&m).unwrap();
        let back: InstanceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn trapped_instance_round_trips_none_exit_code() {
        let mut m = sample_instance();
        m.exit_code = None;
        m.trapped = true;
        m.oom = true;
        let json = serde_json::to_string(&m).unwrap();
        let back: InstanceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.exit_code, None);
        assert!(back.trapped && back.oom);
    }

    #[test]
    fn sim_report_round_trip() {
        use gpu_sim::SimReport;
        let r = SimReport {
            kernel_name: "xsbench-x8".to_string(),
            kernel_cycles: 1.0e7,
            sim_time_s: 7.2e-3,
            blocks: 8,
            threads_per_block: 32,
            waves: 1,
            occupancy: 0.5,
            total_insts: 2.0e6,
            total_sectors: 90_000,
            useful_bytes: 2.4e6,
            moved_bytes: 2.88e6,
            coalescing_efficiency: 2.4 / 2.88,
            l2_hit: 0.9,
            dram_efficiency: 0.62,
            active_region_tags: 8,
            issue_utilization: 0.11,
            dram_utilization: 0.4,
            rpc_calls: 24,
            block_end_cycles: vec![1.0e7, 9.5e6],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn rpc_counts_from_stats() {
        let s = RpcStats {
            stdio_calls: 5,
            fs_calls: 2,
            clock_calls: 3,
            exit_calls: 1,
            errors: 1,
        };
        let c = RpcCallCounts::from(s);
        assert_eq!(c.total(), 11);
        assert_eq!(c.errors, 1);
    }

    #[test]
    fn jsonl_has_one_line_per_instance_plus_launch() {
        let instances = vec![sample_instance(), sample_instance()];
        let launch = LaunchMetrics {
            schema: METRICS_SCHEMA_VERSION,
            kernel: "xsbench-x2".into(),
            instances: 2,
            failed: 0,
            oom: 0,
            kernel_time_s: 1.0e-3,
            total_time_s: 1.5e-3,
            devices: 1,
            makespan_s: 1.5e-3,
            waves: 1,
            rpc_total: 8,
            attempts: 1,
            retried: 0,
            recovered: 0,
            unrecovered: 0,
            timeouts: 0,
            oom_splits: 0,
            final_batch: 2,
            backoff_s: 0.0,
            latency: LatencyPercentiles::from_seconds([1.0e-3, 1.2e-3]),
            rpc_stall: LatencyPercentiles::from_seconds([8.0e-5, 8.0e-5]),
            utilization_mean: None,
            utilization_p95: None,
            timeline: Vec::new(),
            peak_mem_bytes: vec![8192],
            fragmentation: 0.25,
            alloc_fallbacks: 3,
        };
        let text = metrics_jsonl(&instances, &launch);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines[..2] {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("record").unwrap().as_str(), Some("instance"));
            assert!(v.get("cycles").is_some());
            // v2: the stall decomposition rides along as a nested object.
            assert!(v.get("stall").unwrap().get("compute").is_some());
        }
        let v: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(v.get("record").unwrap().as_str(), Some("launch"));
        assert_eq!(v.get("instances").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("schema").unwrap().as_u64(),
            Some(METRICS_SCHEMA_VERSION as u64)
        );
        assert!(v.get("latency").unwrap().get("p99_s").is_some());
        // v3: recovery fields land in the launch record.
        assert_eq!(v.get("attempts").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("unrecovered").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("final_batch").unwrap().as_u64(), Some(2));
        // v4: multi-device fields land in both record kinds.
        assert_eq!(v.get("devices").unwrap().as_u64(), Some(1));
        assert!(v.get("makespan_s").is_some());
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.get("device").unwrap().as_u64(), Some(0));
        // v5: the timeline array is always present (empty here) and the
        // utilization rollups are explicit nulls when sampling was off.
        assert!(v.get("timeline").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("utilization_mean").unwrap().is_null());
        assert!(v.get("utilization_p95").unwrap().is_null());
        // v6: allocator fields land in the launch record, and the stall
        // object carries the alloc bucket.
        let peaks = v.get("peak_mem_bytes").unwrap().as_array().unwrap();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].as_u64(), Some(8192));
        assert_eq!(v.get("fragmentation").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("alloc_fallbacks").unwrap().as_u64(), Some(3));
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert!(first.get("stall").unwrap().get("alloc").is_some());
    }

    #[test]
    fn launch_metrics_v5_timeline_round_trips() {
        let point = TimelinePoint {
            t_us: 125.0,
            device: 1,
            active_teams: 16,
            resident_blocks: 8,
            occupancy: 0.5,
            issue_rate: 0.4,
            dram_rate: 0.2,
            stall_compute: 0.6,
            stall_dram_bw: 0.2,
            stall_mlp: 0.1,
            stall_rpc: 0.0,
            stall_alloc: 0.0,
            stall_wave_tail: 0.1,
            heap_bytes: 1 << 20,
        };
        let mut launch = LaunchMetrics {
            schema: METRICS_SCHEMA_VERSION,
            kernel: "xsbench-x2".into(),
            instances: 2,
            failed: 0,
            oom: 0,
            kernel_time_s: 1.0e-3,
            total_time_s: 1.5e-3,
            devices: 1,
            makespan_s: 1.5e-3,
            waves: 1,
            rpc_total: 8,
            attempts: 1,
            retried: 0,
            recovered: 0,
            unrecovered: 0,
            timeouts: 0,
            oom_splits: 0,
            final_batch: 2,
            backoff_s: 0.0,
            latency: LatencyPercentiles::default(),
            rpc_stall: LatencyPercentiles::default(),
            utilization_mean: Some(0.4),
            utilization_p95: Some(0.45),
            timeline: vec![point.clone(), point],
            peak_mem_bytes: vec![1 << 20],
            fragmentation: 0.0,
            alloc_fallbacks: 0,
        };
        launch.timeline[1].t_us = 250.0;
        let json = serde_json::to_string(&launch).unwrap();
        let back: LaunchMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(launch, back);
        assert_eq!(back.timeline.len(), 2);
        assert_eq!(back.utilization_mean, Some(0.4));
        // The JSONL launch record exposes the nested points.
        let text = metrics_jsonl(&[], &launch);
        let line: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        let tl = line.get("timeline").unwrap().as_array().unwrap();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].get("issue_rate").unwrap().as_f64(), Some(0.4));
        assert_eq!(tl[1].get("t_us").unwrap().as_f64(), Some(250.0));
    }

    #[test]
    fn log2_histogram_buckets_by_bit_width() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.len(), 10);
        // p=0 picks the first sample's bucket (0 → bucket 0 → bound 0).
        assert_eq!(h.percentile(0.0), 0);
        // The maximum lands in the top bucket whose bound is u64::MAX.
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn log2_percentile_overestimates_by_at_most_2x() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for &(p, exact) in &[(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} < {exact}");
            assert!(got < exact * 2, "p{p}: {got} ≥ 2×{exact}");
        }
    }

    #[test]
    fn log2_histogram_merge_matches_combined_recording() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut both = Log2Histogram::new();
        for v in [5u64, 80, 3000] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        let p = LatencyPercentiles::from_seconds(std::iter::empty());
        assert_eq!(p, LatencyPercentiles::default());
    }

    #[test]
    fn latency_percentiles_round_trip_and_order() {
        let p = LatencyPercentiles::from_seconds((1..=100).map(|i| i as f64 * 1e-4));
        assert!(p.p50_s <= p.p90_s && p.p90_s <= p.p99_s);
        assert!(p.p50_s > 0.0);
        let json = serde_json::to_string(&p).unwrap();
        let back: LatencyPercentiles = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
