//! Per-instance and launch-wide metrics, with a JSONL exporter.

use host_rpc::RpcStats;
use serde::{Deserialize, Serialize, Value};

/// Host-RPC round trips broken down by service, as seen by one instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RpcCallCounts {
    pub stdio: u64,
    pub fs: u64,
    pub clock: u64,
    pub exit: u64,
    /// Requests answered with an error response (already included in the
    /// per-service counts).
    pub errors: u64,
}

impl RpcCallCounts {
    /// Total round trips (errors are not double-counted).
    pub fn total(&self) -> u64 {
        self.stdio + self.fs + self.clock + self.exit
    }
}

impl From<RpcStats> for RpcCallCounts {
    fn from(s: RpcStats) -> Self {
        Self {
            stdio: s.stdio_calls,
            fs: s.fs_calls,
            clock: s.clock_calls,
            exit: s.exit_calls,
            errors: s.errors,
        }
    }
}

/// Everything the simulator knows about one instance of an ensemble
/// launch, flattened for export. One JSONL record per instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceMetrics {
    /// Instance id within the launch (its heap-region tag).
    pub instance: u32,
    /// `__user_main`'s return value, `None` if the instance trapped.
    pub exit_code: Option<i32>,
    pub trapped: bool,
    /// Trapped specifically on device-heap exhaustion.
    pub oom: bool,
    /// Simulated completion time of the instance's block, seconds from
    /// launch-sequence start.
    pub end_time_s: f64,
    /// Completion cycle of the instance's block within its kernel.
    pub cycles: f64,
    /// Warp-instructions executed by the instance's team.
    pub warp_insts: f64,
    /// Bytes the instance's loads/stores actually needed.
    pub useful_bytes: f64,
    /// Bytes moved after coalescing into 32 B sectors.
    pub moved_bytes: f64,
    /// 32 B sector transactions.
    pub sectors: u64,
    /// High-water mark of the instance's device-heap region, bytes.
    pub heap_peak_bytes: u64,
    /// RPC round trips by service.
    pub rpc: RpcCallCounts,
    /// Modeled warp-visible time spent waiting on host round trips.
    pub rpc_stall_s: f64,
}

/// Launch-wide rollup: one JSONL record per ensemble launch, after the
/// per-instance records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchMetrics {
    pub kernel: String,
    pub instances: u32,
    /// Instances that trapped or exited non-zero.
    pub failed: u32,
    /// Subset of `failed` that ran out of device-heap memory.
    pub oom: u32,
    pub kernel_time_s: f64,
    pub total_time_s: f64,
    pub waves: u32,
    pub rpc_total: u64,
}

fn tagged_record(kind: &str, v: Value) -> Value {
    let mut obj = vec![("record".to_string(), Value::Str(kind.to_string()))];
    if let Value::Object(fields) = v {
        obj.extend(fields);
    }
    Value::Object(obj)
}

/// Render metrics as JSON Lines: one `{"record":"instance",...}` line per
/// instance followed by one `{"record":"launch",...}` rollup line.
pub fn metrics_jsonl(instances: &[InstanceMetrics], launch: &LaunchMetrics) -> String {
    let mut out = String::new();
    for m in instances {
        let line = serde_json::to_string(&tagged_record("instance", m.to_value()))
            .expect("value serialization is total");
        out.push_str(&line);
        out.push('\n');
    }
    let line = serde_json::to_string(&tagged_record("launch", launch.to_value()))
        .expect("value serialization is total");
    out.push_str(&line);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instance() -> InstanceMetrics {
        InstanceMetrics {
            instance: 3,
            exit_code: Some(0),
            trapped: false,
            oom: false,
            end_time_s: 1.25e-3,
            cycles: 1.7e6,
            warp_insts: 5.0e5,
            useful_bytes: 1.0e6,
            moved_bytes: 1.5e6,
            sectors: 46875,
            heap_peak_bytes: 4096,
            rpc: RpcCallCounts {
                stdio: 2,
                fs: 1,
                clock: 0,
                exit: 1,
                errors: 0,
            },
            rpc_stall_s: 8.0e-5,
        }
    }

    #[test]
    fn instance_metrics_round_trip() {
        let m = sample_instance();
        let json = serde_json::to_string(&m).unwrap();
        let back: InstanceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn trapped_instance_round_trips_none_exit_code() {
        let mut m = sample_instance();
        m.exit_code = None;
        m.trapped = true;
        m.oom = true;
        let json = serde_json::to_string(&m).unwrap();
        let back: InstanceMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.exit_code, None);
        assert!(back.trapped && back.oom);
    }

    #[test]
    fn sim_report_round_trip() {
        use gpu_sim::SimReport;
        let r = SimReport {
            kernel_name: "xsbench-x8".to_string(),
            kernel_cycles: 1.0e7,
            sim_time_s: 7.2e-3,
            blocks: 8,
            threads_per_block: 32,
            waves: 1,
            occupancy: 0.5,
            total_insts: 2.0e6,
            total_sectors: 90_000,
            useful_bytes: 2.4e6,
            moved_bytes: 2.88e6,
            coalescing_efficiency: 2.4 / 2.88,
            l2_hit: 0.9,
            dram_efficiency: 0.62,
            active_region_tags: 8,
            issue_utilization: 0.11,
            dram_utilization: 0.4,
            rpc_calls: 24,
            block_end_cycles: vec![1.0e7, 9.5e6],
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn rpc_counts_from_stats() {
        let s = RpcStats {
            stdio_calls: 5,
            fs_calls: 2,
            clock_calls: 3,
            exit_calls: 1,
            errors: 1,
        };
        let c = RpcCallCounts::from(s);
        assert_eq!(c.total(), 11);
        assert_eq!(c.errors, 1);
    }

    #[test]
    fn jsonl_has_one_line_per_instance_plus_launch() {
        let instances = vec![sample_instance(), sample_instance()];
        let launch = LaunchMetrics {
            kernel: "xsbench-x2".into(),
            instances: 2,
            failed: 0,
            oom: 0,
            kernel_time_s: 1.0e-3,
            total_time_s: 1.5e-3,
            waves: 1,
            rpc_total: 8,
        };
        let text = metrics_jsonl(&instances, &launch);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines[..2] {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("record").unwrap().as_str(), Some("instance"));
            assert!(v.get("cycles").is_some());
        }
        let v: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(v.get("record").unwrap().as_str(), Some("launch"));
        assert_eq!(v.get("instances").unwrap().as_u64(), Some(2));
    }
}
