//! Launch-level utilization timeline.
//!
//! `gpu-sim` samples utilization in the cycle domain
//! ([`gpu_sim::UtilizationTimeline`]); this module converts those samples
//! to wall microseconds on the launch timeline, attaches the launch
//! context the simulator cannot see (device index, heap occupancy), and
//! exports the series two ways:
//!
//! * [`LaunchTimeline::emit_counters`] — Chrome trace-event counter
//!   tracks (`"ph":"C"`) alongside the existing span lanes;
//! * the `timeline` array of metrics schema v5
//!   ([`crate::LaunchMetrics::timeline`]).
//!
//! Batched, resilient and sharded drivers accumulate per-kernel
//! timelines with [`LaunchTimeline::shift_us`] / [`LaunchTimeline::merge`]
//! exactly as they shift and merge instance metrics, so the series stays
//! consistent with `end_time_s` across every driver.

use crate::recorder::{Recorder, PID_HOST};
use gpu_sim::UtilizationTimeline;
use serde::{Deserialize, Serialize, Value};

/// One utilization sample on the launch timeline (metrics schema v5).
///
/// Rates are averaged over the sample window ending at `t_us`; counts are
/// instantaneous at the window's closing edge. The `stall_*` fields are
/// the window's stall-share *fractions* (they sum to ≤ 1, and to ~1 when
/// stall collection ran; all zero otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Sample timestamp, µs on the launch timeline.
    pub t_us: f64,
    /// Fleet index of the device the sample came from (0 outside the
    /// sharded drivers).
    pub device: u32,
    /// Teams still making progress on placed blocks.
    pub active_teams: u32,
    /// Work-bearing blocks resident on SMs.
    pub resident_blocks: u32,
    /// `resident_blocks` over the device's full block complement, [0, 1].
    pub occupancy: f64,
    /// Window-averaged issue-slot utilization, [0, 1].
    pub issue_rate: f64,
    /// Window-averaged DRAM utilization (vs. raw peak), [0, 1].
    pub dram_rate: f64,
    /// Fraction of the window bound by issue throughput.
    pub stall_compute: f64,
    /// Fraction bound by the fair DRAM bandwidth share.
    pub stall_dram_bw: f64,
    /// Fraction bound by per-warp memory-level parallelism.
    pub stall_mlp: f64,
    /// Fraction bound by host round-trip latency.
    pub stall_rpc: f64,
    /// Fraction bound by device-heap allocator latency (schema v6).
    pub stall_alloc: f64,
    /// Fraction lost to under-occupancy (wave tail).
    pub stall_wave_tail: f64,
    /// Device-heap bytes in use while the sample's kernel ran. Constant
    /// within one kernel (allocation happens in the functional phase,
    /// before timing), so this steps per batch/chunk, not per sample.
    pub heap_bytes: u64,
}

/// The utilization time series of one ensemble launch — the metrics
/// schema v5 `timeline` array. Empty when sampling was off.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchTimeline {
    /// Sampling interval, µs (0 when the series is empty).
    pub interval_us: f64,
    /// Samples in emission order. `t_us` is strictly increasing within
    /// each device lane.
    pub points: Vec<TimelinePoint>,
}

impl LaunchTimeline {
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Convert one kernel's cycle-domain samples to launch-timeline
    /// points. `us_per_cycle` converts simulated cycles to µs;
    /// `offset_us` positions the kernel on the launch timeline (after H2D
    /// and launch overhead, like `record_schedule`); `heap_bytes` is the
    /// device heap's occupancy during the kernel.
    pub fn from_samples(
        tl: &UtilizationTimeline,
        us_per_cycle: f64,
        offset_us: f64,
        device: u32,
        heap_bytes: u64,
    ) -> Self {
        let mut points = Vec::with_capacity(tl.samples.len());
        let mut prev_cycle = 0.0;
        for s in &tl.samples {
            let win = s.cycle - prev_cycle;
            let share = |cycles: f64| if win > 0.0 { cycles / win } else { 0.0 };
            points.push(TimelinePoint {
                t_us: offset_us + s.cycle * us_per_cycle,
                device,
                active_teams: s.active_teams,
                resident_blocks: s.resident_blocks,
                occupancy: s.occupancy,
                issue_rate: s.issue_rate,
                dram_rate: s.dram_rate,
                stall_compute: share(s.stall.compute),
                stall_dram_bw: share(s.stall.dram_bw),
                stall_mlp: share(s.stall.mlp),
                stall_rpc: share(s.stall.rpc),
                stall_alloc: share(s.stall.alloc),
                stall_wave_tail: share(s.stall.wave_tail),
                heap_bytes,
            });
            prev_cycle = s.cycle;
        }
        Self {
            interval_us: tl.interval * us_per_cycle,
            points,
        }
    }

    /// Shift every point by `delta_us` — how batched and resilient
    /// drivers place a later kernel's series after the earlier ones, in
    /// lockstep with the `end_time_s` shift they apply to instance
    /// metrics.
    pub fn shift_us(&mut self, delta_us: f64) {
        for p in &mut self.points {
            p.t_us += delta_us;
        }
    }

    /// Stamp every point with the device that produced it (sharded
    /// drivers, mirroring the `device` stamp on instance metrics).
    pub fn set_device(&mut self, device: u32) {
        for p in &mut self.points {
            p.device = device;
        }
    }

    /// Append another launch's points, keeping the first non-empty
    /// interval as the series interval.
    pub fn merge(&mut self, other: LaunchTimeline) {
        if self.points.is_empty() {
            self.interval_us = other.interval_us;
        }
        self.points.extend(other.points);
    }

    /// The issue-rate series, the input to the launch-level
    /// `utilization_mean`/`utilization_p95` rollups.
    pub fn issue_rates(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.issue_rate).collect()
    }

    /// Emit the series as Chrome counter tracks (`ph = 'C'`) on the host
    /// lane: `utilization` (issue/dram/occupancy), `active_teams`,
    /// `stall_share` (six exclusive fractions) and `heap_bytes`. Device
    /// recorders merged with `merge_shifted` carry their counters into
    /// per-device lane groups automatically.
    pub fn emit_counters(&self, rec: &mut Recorder) {
        if !rec.is_enabled() {
            return;
        }
        for p in &self.points {
            rec.counter_args(
                PID_HOST,
                0,
                "utilization",
                "counter",
                p.t_us,
                vec![
                    ("issue".into(), Value::F64(p.issue_rate)),
                    ("dram".into(), Value::F64(p.dram_rate)),
                    ("occupancy".into(), Value::F64(p.occupancy)),
                ],
            );
            rec.counter_args(
                PID_HOST,
                0,
                "active_teams",
                "counter",
                p.t_us,
                vec![("teams".into(), Value::U64(p.active_teams as u64))],
            );
            rec.counter_args(
                PID_HOST,
                0,
                "stall_share",
                "counter",
                p.t_us,
                vec![
                    ("compute".into(), Value::F64(p.stall_compute)),
                    ("dram_bw".into(), Value::F64(p.stall_dram_bw)),
                    ("mlp".into(), Value::F64(p.stall_mlp)),
                    ("rpc".into(), Value::F64(p.stall_rpc)),
                    ("alloc".into(), Value::F64(p.stall_alloc)),
                    ("wave_tail".into(), Value::F64(p.stall_wave_tail)),
                ],
            );
            rec.counter_args(
                PID_HOST,
                0,
                "heap_bytes",
                "counter",
                p.t_us,
                vec![("in_use".into(), Value::U64(p.heap_bytes))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_chrome_trace;
    use gpu_sim::{StallBuckets, UtilizationSample};

    fn sim_timeline() -> UtilizationTimeline {
        let sample = |cycle: f64, teams: u32| UtilizationSample {
            cycle,
            active_teams: teams,
            resident_blocks: teams,
            occupancy: teams as f64 / 4.0,
            issue_rate: 0.5,
            dram_rate: 0.25,
            stall: StallBuckets {
                compute: 60.0,
                dram_bw: 20.0,
                mlp: 10.0,
                rpc: 0.0,
                alloc: 0.0,
                wave_tail: 10.0,
            },
        };
        UtilizationTimeline {
            interval: 100.0,
            samples: vec![sample(100.0, 4), sample(200.0, 2)],
        }
    }

    #[test]
    fn from_samples_converts_domain_and_normalizes_stalls() {
        let tl = LaunchTimeline::from_samples(&sim_timeline(), 2.0, 10.0, 1, 4096);
        assert_eq!(tl.interval_us, 200.0);
        assert_eq!(tl.points.len(), 2);
        let p = &tl.points[0];
        assert_eq!(p.t_us, 10.0 + 100.0 * 2.0);
        assert_eq!(p.device, 1);
        assert_eq!(p.heap_bytes, 4096);
        // Stall cycles become window fractions summing to 1.
        assert!((p.stall_compute - 0.6).abs() < 1e-12);
        let total = p.stall_compute
            + p.stall_dram_bw
            + p.stall_mlp
            + p.stall_rpc
            + p.stall_alloc
            + p.stall_wave_tail;
        assert!((total - 1.0).abs() < 1e-12);
        // Points inherit strictly increasing timestamps.
        assert!(tl.points[1].t_us > tl.points[0].t_us);
    }

    #[test]
    fn shift_merge_and_device_stamp_compose() {
        let a = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 0);
        let mut b = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 0);
        b.shift_us(500.0);
        b.set_device(1);
        let mut merged = LaunchTimeline::default();
        merged.merge(a);
        merged.merge(b);
        assert_eq!(merged.interval_us, 100.0);
        assert_eq!(merged.points.len(), 4);
        assert_eq!(merged.points[2].t_us, 600.0);
        assert_eq!(merged.points[2].device, 1);
        assert_eq!(merged.points[0].device, 0);
        assert_eq!(merged.issue_rates(), vec![0.5; 4]);
    }

    #[test]
    fn merge_keeps_disjoint_device_lanes_independently_monotonic() {
        // Two devices sample concurrently: their global interleave is
        // NOT time-sorted after a merge, but each device lane stays
        // strictly increasing — the invariant the schema documents and
        // per-lane consumers (counter tracks, rollups) rely on.
        let mut dev0 = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 64);
        let mut dev1 = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 128);
        dev0.shift_us(50.0);
        dev1.set_device(1);
        let mut merged = LaunchTimeline::default();
        merged.merge(dev0);
        merged.merge(dev1);
        assert_eq!(merged.points.len(), 4);
        for dev in [0u32, 1u32] {
            let lane: Vec<f64> = merged
                .points
                .iter()
                .filter(|p| p.device == dev)
                .map(|p| p.t_us)
                .collect();
            assert_eq!(lane.len(), 2, "device {dev} lane incomplete");
            assert!(
                lane.windows(2).all(|w| w[1] > w[0]),
                "device {dev}: {lane:?}"
            );
        }
        // Lane context survives the merge: heap occupancy stays with the
        // device that measured it, and the rollup sees every sample.
        assert!(merged
            .points
            .iter()
            .all(|p| p.heap_bytes == if p.device == 0 { 64 } else { 128 }));
        assert_eq!(merged.issue_rates().len(), 4);
        // Merging an empty series is the identity.
        let before = merged.clone();
        merged.merge(LaunchTimeline::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn merge_keeps_overlapping_lanes_monotonic_with_stable_device_stamps() {
        // The harder case than the disjoint test above: two devices
        // sampled on the SAME clock, so every timestamp appears once per
        // lane. The merge must not collapse, reorder or re-stamp the
        // coincident points — each lane stays strictly increasing and
        // keeps its own device stamp and heap context.
        let mut dev0 = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 64);
        let mut dev1 = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 128);
        dev0.set_device(0);
        dev1.set_device(1);
        let expect_ts: Vec<f64> = dev0.points.iter().map(|p| p.t_us).collect();
        let mut merged = LaunchTimeline::default();
        merged.merge(dev0);
        merged.merge(dev1);

        // Every timestamp is duplicated across lanes, none dropped.
        assert_eq!(merged.points.len(), 2 * expect_ts.len());
        for &t in &expect_ts {
            assert_eq!(
                merged.points.iter().filter(|p| p.t_us == t).count(),
                2,
                "timestamp {t} should appear once per device lane"
            );
        }
        // Each lane is strictly increasing and stamped consistently.
        for dev in [0u32, 1u32] {
            let lane: Vec<&TimelinePoint> =
                merged.points.iter().filter(|p| p.device == dev).collect();
            assert_eq!(lane.len(), expect_ts.len());
            assert!(
                lane.windows(2).all(|w| w[1].t_us > w[0].t_us),
                "device {dev} lane not strictly increasing"
            );
            let heap = if dev == 0 { 64 } else { 128 };
            assert!(lane.iter().all(|p| p.heap_bytes == heap));
            assert_eq!(
                lane.iter().map(|p| p.t_us).collect::<Vec<_>>(),
                expect_ts,
                "device {dev} lane timestamps perturbed by merge"
            );
        }
        // Merge is append-ordered: lane 0's block precedes lane 1's, so
        // device stamping is stable (no interleave-dependent re-stamping).
        let devices: Vec<u32> = merged.points.iter().map(|p| p.device).collect();
        assert_eq!(devices, vec![0, 0, 1, 1]);
    }

    #[test]
    fn single_sample_and_empty_series_feed_rollups_cleanly() {
        let one = UtilizationTimeline {
            interval: 100.0,
            samples: vec![UtilizationSample {
                cycle: 40.0,
                active_teams: 1,
                resident_blocks: 1,
                occupancy: 0.25,
                issue_rate: 0.125,
                dram_rate: 0.0,
                stall: StallBuckets::default(),
            }],
        };
        let tl = LaunchTimeline::from_samples(&one, 1.0, 0.0, 0, 0);
        assert_eq!(tl.issue_rates(), vec![0.125]);
        // The empty series (sampling off) yields an empty rollup input,
        // which the stats layer maps to None rather than NaN.
        assert!(LaunchTimeline::default().issue_rates().is_empty());
    }

    #[test]
    fn emit_counters_produces_valid_counter_tracks() {
        let tl = LaunchTimeline::from_samples(&sim_timeline(), 1.0, 0.0, 0, 1024);
        let mut rec = Recorder::enabled();
        tl.emit_counters(&mut rec);
        // Four tracks per point.
        assert_eq!(rec.events().len(), 4 * tl.points.len());
        assert!(rec.events().iter().all(|e| e.ph == 'C'));
        let json = rec.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 4 * tl.points.len());
        // Disabled recorders stay empty.
        let mut off = Recorder::disabled();
        tl.emit_counters(&mut off);
        assert!(off.events().is_empty());
    }

    #[test]
    fn timeline_round_trips_through_json() {
        let tl = LaunchTimeline::from_samples(&sim_timeline(), 1.5, 3.0, 2, 99);
        let json = serde_json::to_string(&tl).unwrap();
        let back: LaunchTimeline = serde_json::from_str(&json).unwrap();
        assert_eq!(tl, back);
        // The empty series is the sampling-off representation.
        let empty = LaunchTimeline::default();
        assert!(empty.is_empty());
        let back: LaunchTimeline =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(empty, back);
    }
}
