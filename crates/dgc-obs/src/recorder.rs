//! The span/event recorder and its gpu-sim bridge.

use crate::monitor::MonitorSink;
use gpu_sim::ScheduleDetail;
use serde::Value;
use std::sync::Arc;

/// Process lane reserved for the host-side loader timeline (argfile
/// parsing, H2D/D2H transfers, the kernel envelope, RPC service totals).
pub const PID_HOST: u32 = 0;

/// Process lane of a simulated SM. SM lanes start at 1 so they never
/// collide with [`PID_HOST`].
pub fn sm_pid(sm: u32) -> u32 {
    sm + 1
}

/// Pid stride between per-device lane groups in a sharded launch: device
/// `d`'s lanes live at `d * DEVICE_PID_STRIDE + pid`. Large enough that no
/// simulated device's SM lanes (SM count + 1 host lane) can spill into the
/// next device's group.
pub const DEVICE_PID_STRIDE: u32 = 1024;

/// One recorded trace event, in Chrome trace-event terms: a complete span
/// (`ph = 'X'`, with a duration), an instant marker (`ph = 'i'`), or a
/// counter sample (`ph = 'C'`, numeric args plotted as a counter track).
/// Timestamps are microseconds on the simulated clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    /// Category, used by trace viewers for filtering ("loader", "kernel",
    /// "block", "phase", "rpc", "lifecycle", "counter", …).
    pub cat: String,
    /// 'X' = complete span, 'i' = instant, 'C' = counter sample.
    pub ph: char,
    /// Start timestamp, µs.
    pub ts: f64,
    /// Duration, µs; `None` for instants and counters.
    pub dur: Option<f64>,
    pub pid: u32,
    pub tid: u32,
    /// Free-form key/value payload rendered under `args`.
    pub args: Vec<(String, Value)>,
}

/// Records spans and instants on the simulated timeline.
///
/// Constructed [`Recorder::disabled`] (the default), every recording
/// method returns immediately — callers guard any expensive label
/// formatting behind [`Recorder::is_enabled`].
#[derive(Default)]
pub struct Recorder {
    enabled: bool,
    /// Offset added to every recorded timestamp; batched launches bump it
    /// so consecutive kernels land end-to-end on one timeline.
    base_us: f64,
    events: Vec<TraceEvent>,
    process_names: Vec<(u32, String)>,
    thread_names: Vec<((u32, u32), String)>,
    /// Optional live-telemetry sink ([`crate::MonitorSink`]); orthogonal
    /// to `enabled` — monitoring works with tracing off and vice versa.
    monitor: Option<Arc<dyn MonitorSink>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("base_us", &self.base_us)
            .field("events", &self.events)
            .field("process_names", &self.process_names)
            .field("thread_names", &self.thread_names)
            .field("monitor", &self.monitor.as_ref().map(|_| "MonitorSink"))
            .finish()
    }
}

impl Recorder {
    /// A recorder that drops everything (the zero-cost default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder that keeps events.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current timeline offset in µs.
    pub fn base_us(&self) -> f64 {
        self.base_us
    }

    /// Attach a live-telemetry sink; driver instrumentation sites stream
    /// operational events into it via [`Recorder::monitor`].
    pub fn set_monitor(&mut self, sink: Arc<dyn MonitorSink>) {
        self.monitor = Some(sink);
    }

    /// The attached telemetry sink, if any.
    pub fn monitor(&self) -> Option<&Arc<dyn MonitorSink>> {
        self.monitor.as_ref()
    }

    /// Move the timeline origin (used between batches).
    pub fn set_base_us(&mut self, base_us: f64) {
        self.base_us = base_us;
    }

    /// Record a complete span of `dur_us` starting at `ts_us` (both
    /// relative to the current base).
    pub fn span(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64, dur_us: f64) {
        self.span_args(pid, tid, name, cat, ts_us, dur_us, Vec::new());
    }

    /// [`Recorder::span`] with an `args` payload.
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts: self.base_us + ts_us,
            dur: Some(dur_us.max(0.0)),
            pid,
            tid,
            args,
        });
    }

    /// Record an instant marker.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts_us: f64) {
        self.instant_args(pid, tid, name, cat, ts_us, Vec::new());
    }

    /// [`Recorder::instant`] with an `args` payload.
    pub fn instant_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts: self.base_us + ts_us,
            dur: None,
            pid,
            tid,
            args,
        });
    }

    /// Record a counter sample (`ph = 'C'`): trace viewers plot the
    /// numeric `args` values of events sharing a `(pid, name)` pair as a
    /// stacked counter track — how the utilization timeline rides
    /// alongside the span lanes.
    pub fn counter_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        args: Vec<(String, Value)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'C',
            ts: self.base_us + ts_us,
            dur: None,
            pid,
            tid,
            args,
        });
    }

    /// Give a process lane a display name (emitted as `process_name`
    /// metadata; later names for the same pid win, duplicates collapse).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        if !self.enabled {
            return;
        }
        if let Some(slot) = self.process_names.iter_mut().find(|(p, _)| *p == pid) {
            slot.1 = name.to_string();
        } else {
            self.process_names.push((pid, name.to_string()));
        }
    }

    /// Give a thread lane a display name (`thread_name` metadata).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        if !self.enabled {
            return;
        }
        let key = (pid, tid);
        if let Some(slot) = self.thread_names.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = name.to_string();
        } else {
            self.thread_names.push((key, name.to_string()));
        }
    }

    /// All events recorded so far, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Merge another recorder's events and lane names into this one with
    /// every pid shifted by `pid_offset` and every process name prefixed
    /// with `name_prefix` — how a sharded launch folds each device's
    /// private recorder into one trace, one lane group per device.
    ///
    /// Timestamps are copied as-is: device recorders are created with the
    /// parent's base already applied, so their events are absolute on the
    /// shared timeline.
    pub fn merge_shifted(&mut self, other: &Recorder, pid_offset: u32, name_prefix: &str) {
        if !self.enabled {
            return;
        }
        for e in &other.events {
            let mut e = e.clone();
            e.pid += pid_offset;
            self.events.push(e);
        }
        for (pid, name) in &other.process_names {
            self.name_process(pid + pid_offset, &format!("{name_prefix}{name}"));
        }
        for (&(pid, tid), name) in other.thread_names.iter().map(|(k, n)| (k, n)) {
            self.name_thread(pid + pid_offset, tid, name);
        }
    }

    pub(crate) fn process_names(&self) -> &[(u32, String)] {
        &self.process_names
    }

    pub(crate) fn thread_names(&self) -> &[((u32, u32), String)] {
        &self.thread_names
    }
}

/// Replay a kernel's [`ScheduleDetail`] into the recorder: one span per
/// block on its SM's lane, one span per team phase nested under it, wave
/// markers on the host lane, and RPC-stall instants on phases that issued
/// host calls.
///
/// `us_per_cycle` converts simulated core cycles to microseconds;
/// `offset_us` positions the kernel on the launch timeline (after H2D and
/// launch overhead).
pub fn record_schedule(
    rec: &mut Recorder,
    sched: &ScheduleDetail,
    us_per_cycle: f64,
    offset_us: f64,
) {
    if !rec.is_enabled() {
        return;
    }
    for (w, &start) in sched.wave_starts.iter().enumerate() {
        rec.instant(
            PID_HOST,
            0,
            &format!("wave {w}"),
            "wave",
            offset_us + start * us_per_cycle,
        );
    }
    // SM of each block, for phase-span lane placement.
    let mut sm_of_block: Vec<(u32, u32)> = Vec::with_capacity(sched.blocks.len());
    for b in &sched.blocks {
        sm_of_block.push((b.block, b.sm));
        rec.name_process(sm_pid(b.sm), &format!("SM {}", b.sm));
        rec.name_thread(sm_pid(b.sm), b.block, &format!("block {}", b.block));
        let mut args = vec![("wave".into(), Value::U64(b.wave as u64))];
        if let Some(st) = &b.stalls {
            args.push(("stall".into(), Value::Str(st.dominant().to_string())));
            for (name, cycles) in st.named() {
                args.push((format!("stall_{name}"), Value::F64(cycles)));
            }
        }
        rec.span_args(
            sm_pid(b.sm),
            b.block,
            &format!("block {}", b.block),
            "block",
            offset_us + b.start_cycle * us_per_cycle,
            (b.end_cycle - b.start_cycle) * us_per_cycle,
            args,
        );
    }
    for p in &sched.phase_spans {
        let sm = sm_of_block
            .iter()
            .find(|(b, _)| *b == p.block)
            .map(|&(_, s)| s)
            .unwrap_or(0);
        rec.span_args(
            sm_pid(sm),
            p.block,
            &p.label,
            "phase",
            offset_us + p.start_cycle * us_per_cycle,
            (p.end_cycle - p.start_cycle) * us_per_cycle,
            vec![
                ("team".into(), Value::U64(p.team as u64)),
                ("phase".into(), Value::U64(p.phase as u64)),
                ("rpc_calls".into(), Value::U64(p.rpc_calls)),
            ],
        );
        if p.rpc_calls > 0 {
            rec.instant(
                sm_pid(sm),
                p.block,
                &format!("rpc stall ×{}", p.rpc_calls),
                "rpc",
                offset_us + p.end_cycle * us_per_cycle,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut r = Recorder::disabled();
        r.span(0, 0, "a", "c", 0.0, 1.0);
        r.instant(1, 2, "b", "c", 5.0);
        r.name_process(0, "host");
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert!(r.process_names().is_empty());
    }

    #[test]
    fn base_offset_applies_to_new_events_only() {
        let mut r = Recorder::enabled();
        r.span(0, 0, "first", "c", 1.0, 2.0);
        r.set_base_us(100.0);
        r.span(0, 0, "second", "c", 1.0, 2.0);
        assert_eq!(r.events()[0].ts, 1.0);
        assert_eq!(r.events()[1].ts, 101.0);
    }

    #[test]
    fn counters_record_with_base_offset_and_no_duration() {
        let mut r = Recorder::enabled();
        r.set_base_us(10.0);
        r.counter_args(
            PID_HOST,
            0,
            "utilization",
            "counter",
            5.0,
            vec![("issue".into(), Value::F64(0.25))],
        );
        let e = &r.events()[0];
        assert_eq!(e.ph, 'C');
        assert_eq!(e.ts, 15.0);
        assert_eq!(e.dur, None);
        assert_eq!(e.args[0].0, "issue");
        // A disabled recorder drops counters like everything else.
        let mut d = Recorder::disabled();
        d.counter_args(PID_HOST, 0, "utilization", "counter", 0.0, Vec::new());
        assert!(d.events().is_empty());
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let mut r = Recorder::enabled();
        r.span(0, 0, "neg", "c", 1.0, -2.0);
        assert_eq!(r.events()[0].dur, Some(0.0));
    }

    #[test]
    fn lane_names_deduplicate() {
        let mut r = Recorder::enabled();
        r.name_process(1, "SM 0");
        r.name_process(1, "SM 0 renamed");
        r.name_thread(1, 7, "block 7");
        r.name_thread(1, 7, "block 7");
        assert_eq!(r.process_names(), &[(1, "SM 0 renamed".to_string())]);
        assert_eq!(r.thread_names().len(), 1);
    }

    #[test]
    fn merge_shifted_moves_lanes_and_prefixes_names() {
        let mut child = Recorder::enabled();
        child.set_base_us(50.0);
        child.name_process(PID_HOST, "host");
        child.name_process(sm_pid(0), "SM 0");
        child.name_thread(sm_pid(0), 3, "block 3");
        child.span(sm_pid(0), 3, "block 3", "block", 1.0, 2.0);

        let mut parent = Recorder::enabled();
        parent.merge_shifted(&child, DEVICE_PID_STRIDE, "dev1 ");
        let e = &parent.events()[0];
        assert_eq!(e.pid, DEVICE_PID_STRIDE + sm_pid(0));
        // Child timestamps already include the child's base — copied as-is.
        assert_eq!(e.ts, 51.0);
        assert!(parent
            .process_names()
            .iter()
            .any(|(p, n)| *p == DEVICE_PID_STRIDE && n == "dev1 host"));
        assert!(parent
            .thread_names()
            .iter()
            .any(|((p, t), n)| *p == DEVICE_PID_STRIDE + 1 && *t == 3 && n == "block 3"));
    }

    #[test]
    fn merge_into_disabled_recorder_is_a_no_op() {
        let mut child = Recorder::enabled();
        child.span(0, 0, "a", "c", 0.0, 1.0);
        let mut parent = Recorder::disabled();
        parent.merge_shifted(&child, DEVICE_PID_STRIDE, "dev1 ");
        assert!(parent.events().is_empty());
    }

    #[test]
    fn schedule_replay_covers_blocks_phases_and_waves() {
        use gpu_sim::{Gpu, KernelSpec};
        let mut gpu = Gpu::a100();
        let mut spec = KernelSpec::new("obs", 3, 32);
        spec.collect_detail = true;
        let res = gpu
            .launch(&spec, None, |ctx| {
                ctx.serial("work", |lane| {
                    lane.work(500.0);
                    Ok(())
                })?;
                Ok(0)
            })
            .unwrap();
        let sched = res.schedule.unwrap();
        let mut rec = Recorder::enabled();
        record_schedule(&mut rec, &sched, 1.0, 10.0);
        let blocks = rec.events().iter().filter(|e| e.cat == "block").count();
        let phases = rec.events().iter().filter(|e| e.cat == "phase").count();
        let waves = rec.events().iter().filter(|e| e.cat == "wave").count();
        assert_eq!(blocks, 3);
        assert_eq!(phases, sched.phase_spans.len());
        assert_eq!(waves as u32, sched.waves());
        // All device events are shifted by the kernel offset.
        assert!(rec
            .events()
            .iter()
            .filter(|e| e.cat != "wave")
            .all(|e| e.ts >= 10.0));
    }
}
