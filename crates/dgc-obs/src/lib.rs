//! Observability for ensemble launches (`dgc-obs`).
//!
//! Three layers, all pay-for-what-you-use:
//!
//! 1. [`Recorder`] — a lightweight span/event recorder on the *simulated*
//!    clock (microseconds since launch start). A disabled recorder drops
//!    every event at the door, so instrumented code paths cost one branch
//!    when tracing is off and the simulation output stays byte-identical.
//! 2. [`InstanceMetrics`] / [`LaunchMetrics`] — per-instance and
//!    launch-wide counters (cycles, warp instructions, bytes, RPC calls by
//!    service, heap high-water mark), exported as JSONL via
//!    [`metrics_jsonl`].
//! 3. Chrome trace-event export — [`Recorder::to_chrome_trace`] renders
//!    the recorded spans as a `{"traceEvents": [...]}` document that
//!    loads in Perfetto / `chrome://tracing`, one process lane per SM
//!    plus a host lane for the loader timeline.
//! 4. [`LaunchTimeline`] — the opt-in utilization time series: gpu-sim's
//!    periodic samples converted to wall microseconds, exported both as
//!    Chrome counter tracks (`"ph":"C"`) and as the metrics schema v5
//!    `timeline` array.
//! 5. [`SpanGraph`] — the causal span graph: every driver's exact
//!    makespan addends in accumulation order, plus per-launch critical
//!    chains, stall buckets and wave layouts. `dgc-insight` consumes it
//!    for critical-path blame analysis and flamegraph export;
//!    [`SpanGraph::replay_makespan_s`] reproduces the reported makespan
//!    bit-exactly.
//!
//! The recorder is deliberately format-agnostic: instrumentation sites in
//! `dgc-core`, `gpu-sim` and `host-rpc` only push named spans; the lane
//! conventions ([`PID_HOST`], [`sm_pid`]) and exporters live here.

mod chrome;
mod fsio;
mod graph;
mod metrics;
mod monitor;
mod recorder;
mod timeline;

pub use chrome::validate_chrome_trace;
pub use fsio::write_atomic;
pub use graph::{CriticalHop, LaunchNode, SpanGraph, SpanNode};
pub use metrics::{
    metrics_jsonl, InstanceMetrics, LatencyPercentiles, LaunchMetrics, Log2Histogram,
    RpcCallCounts, METRICS_SCHEMA_VERSION,
};
pub use monitor::{DeviceStamped, MonitorSink};
pub use recorder::{record_schedule, sm_pid, Recorder, TraceEvent, DEVICE_PID_STRIDE, PID_HOST};
pub use timeline::{LaunchTimeline, TimelinePoint};
