//! Sharded-driver acceptance: single-device bit-identity with the
//! batched path (including Chrome-trace bytes), multi-device merge
//! correctness, and the heterogeneous-fleet makespan ordering the
//! informed policies must deliver.

use device_libc::dl_printf;
use dgc_core::{run_ensemble_batched_traced, AppContext, EnsembleOptions, HostApp};
use dgc_obs::{Recorder, DEVICE_PID_STRIDE};
use dgc_sched::{run_ensemble_sharded, Placement};
use gpu_arch::DeviceRegistry;
use gpu_sim::{DeviceFleet, Gpu, KernelError, TeamCtx};
use proptest::prelude::*;

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines() -> Vec<Vec<String>> {
    dgc_core::parse_arg_file("-n 60\n-n 120\n-n 40\n").unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        num_instances: n,
        thread_limit: 32,
        cycle_args: true,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `--devices 1` is the unsharded path, bit for bit: every result
    /// field AND the exported Chrome trace match `run_ensemble_batched`
    /// exactly, for any instance count, batch size and placement policy.
    #[test]
    fn single_device_is_bit_identical_to_batched(
        n in 1u32..7,
        batch in 1u32..5,
        policy in 0usize..3,
    ) {
        let arg_lines = lines();
        let mut gpu = Gpu::a100();
        let mut base_obs = Recorder::enabled();
        let baseline = run_ensemble_batched_traced(
            &mut gpu, &app(), &arg_lines, &opts(n), batch, &mut base_obs,
        )
        .unwrap();

        let mut fleet = DeviceFleet::from_registry(&DeviceRegistry::parse("a100").unwrap());
        let mut obs = Recorder::enabled();
        let placement = Placement::all()[policy];
        let sharded = run_ensemble_sharded(
            &mut fleet, &app(), &arg_lines, &opts(n), batch, placement, &mut obs,
        )
        .unwrap();

        prop_assert_eq!(sharded.devices, 1);
        prop_assert_eq!(&sharded.ensemble.instances, &baseline.instances);
        prop_assert_eq!(&sharded.ensemble.stdout, &baseline.stdout);
        prop_assert_eq!(&sharded.ensemble.report, &baseline.report);
        prop_assert_eq!(sharded.ensemble.kernel_time_s, baseline.kernel_time_s);
        prop_assert_eq!(sharded.ensemble.total_time_s, baseline.total_time_s);
        prop_assert_eq!(
            &sharded.ensemble.instance_end_times_s,
            &baseline.instance_end_times_s
        );
        prop_assert_eq!(&sharded.ensemble.metrics, &baseline.metrics);
        prop_assert_eq!(sharded.ensemble.rpc_stats, baseline.rpc_stats);
        prop_assert_eq!(sharded.makespan_s(), baseline.total_time_s);
        // The launch rollup agrees too (devices = 1, makespan = total).
        prop_assert_eq!(sharded.launch_metrics(), baseline.launch_metrics());
        // Chrome-trace export is byte-identical.
        prop_assert_eq!(obs.to_chrome_trace(), base_obs.to_chrome_trace());
    }
}

#[test]
fn two_device_shard_merges_in_global_order() {
    let reg = DeviceRegistry::parse("a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let mut obs = Recorder::enabled();
    let res = run_ensemble_sharded(
        &mut fleet,
        &app(),
        &lines(),
        &opts(6),
        0,
        Placement::RoundRobin,
        &mut obs,
    )
    .unwrap();

    assert!(res.all_succeeded());
    assert_eq!(res.devices, 2);
    assert_eq!(res.assignment, vec![vec![0, 2, 4], vec![1, 3, 5]]);
    // Instances keep their global ids and outputs despite the shuffle.
    // (The printed instance id is shard-local — each device numbers its
    // own launch — so we check the data payload, which depends on the
    // cycled argument line: sum 0..n-1 for -n 60/120/40.)
    let sums = ["1770.0", "7140.0", "780.0"];
    for (i, m) in res.ensemble.metrics.iter().enumerate() {
        assert_eq!(m.instance, i as u32);
        assert_eq!(m.device, (i % 2) as u32);
        assert!(
            res.ensemble.stdout[i].trim_end().ends_with(sums[i % 3]),
            "instance {i}: {:?}",
            res.ensemble.stdout[i]
        );
    }
    // Two identical devices, three instances each: both ran, and the
    // makespan is the slower of the two — not their sum.
    assert!(res.per_device_time_s.iter().all(|&t| t > 0.0));
    let sum: f64 = res.per_device_time_s.iter().sum();
    assert!(res.makespan_s() < sum);
    assert_eq!(res.ensemble.total_time_s, res.makespan_s());
    // The rollup carries the v4 fields.
    let lm = res.launch_metrics();
    assert_eq!(lm.devices, 2);
    assert_eq!(lm.makespan_s, res.makespan_s());
    assert_eq!(lm.kernel, "bench-x6");
    // Each device's trace lands in its own lane group with a prefixed
    // process name.
    let pids: Vec<u32> = obs.events().iter().map(|e| e.pid).collect();
    assert!(pids.iter().any(|&p| p < DEVICE_PID_STRIDE));
    assert!(pids.iter().any(|&p| p >= DEVICE_PID_STRIDE));
    let trace = obs.to_chrome_trace();
    assert!(trace.contains("dev0 loader"), "missing dev0 lanes");
    assert!(trace.contains("dev1 loader"), "missing dev1 lanes");
}

#[test]
fn sharded_respects_one_line_per_instance_contract() {
    let reg = DeviceRegistry::parse("a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let mut o = opts(6);
    o.cycle_args = false;
    let err = run_ensemble_sharded(
        &mut fleet,
        &app(),
        &lines(),
        &o,
        0,
        Placement::RoundRobin,
        &mut Recorder::disabled(),
    )
    .expect_err("3 lines cannot feed 6 instances without --cycle-args");
    assert!(err.to_string().contains("--cycle-args"), "{err}");
}

/// The acceptance criterion: on a heterogeneous fleet, the informed
/// policies' makespan is no worse than round-robin's — and strictly
/// better when round-robin strands the big instance on the slow device.
#[test]
fn informed_policies_beat_round_robin_on_heterogeneous_fleet() {
    // Device 1 runs at quarter speed; instance 1 does ~50× the work of
    // the others. Round-robin sends odd instances (incl. the big one) to
    // the slow device; greedy/LPT keep the big instance on the fast one.
    let reg = DeviceRegistry::parse("a100,a100*0.25").unwrap();
    let arg_lines =
        dgc_core::parse_arg_file("-n 1000\n-n 50000\n-n 1000\n-n 1000\n-n 1000\n-n 1000\n")
            .unwrap();

    let mut makespans = std::collections::HashMap::new();
    for placement in Placement::all() {
        let mut fleet = DeviceFleet::from_registry(&reg);
        let res = run_ensemble_sharded(
            &mut fleet,
            &app(),
            &arg_lines,
            &opts(6),
            0,
            placement,
            &mut Recorder::disabled(),
        )
        .unwrap();
        assert!(res.all_succeeded(), "{placement:?}");
        makespans.insert(placement.name(), res.makespan_s());

        if placement.needs_costs() {
            // The big instance must sit on the fast device.
            assert!(
                res.assignment[0].contains(&1),
                "{placement:?} put the big instance on the slow device: {:?}",
                res.assignment
            );
        }
    }

    let rr = makespans["round-robin"];
    let greedy = makespans["greedy"];
    let lpt = makespans["lpt"];
    assert!(greedy <= rr, "greedy {greedy} vs round-robin {rr}");
    assert!(lpt <= rr, "lpt {lpt} vs round-robin {rr}");
    // The win is substantial, not a rounding artifact: round-robin pays
    // the big instance at quarter speed.
    assert!(lpt < rr * 0.75, "lpt {lpt} vs round-robin {rr}");
    assert!(greedy < rr * 0.75, "greedy {greedy} vs round-robin {rr}");
}

#[test]
fn empty_shard_devices_are_tolerated() {
    // 2 instances on 3 devices: one device idles and the merge still
    // yields every instance exactly once.
    let reg = DeviceRegistry::parse("a100,a100,a100").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded(
        &mut fleet,
        &app(),
        &lines(),
        &opts(2),
        0,
        Placement::RoundRobin,
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(res.all_succeeded());
    assert_eq!(res.ensemble.instances.len(), 2);
    assert_eq!(res.assignment[2], Vec::<u32>::new());
    assert_eq!(res.per_device_time_s[2], 0.0);
    assert!(res.makespan_s() > 0.0);
}
