//! Placement policies: how ensemble instances map onto fleet devices.

/// Placement policy for sharding an ensemble across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Instance `i` → device `i mod M`. Cost-blind; the baseline every
    /// informed policy must beat on heterogeneous fleets.
    RoundRobin,
    /// In instance order, place each instance on the device whose load
    /// plus the instance's predicted time there is smallest (online
    /// list scheduling).
    Greedy,
    /// Longest-processing-time-first: sort instances by descending
    /// predicted time, then place greedily. The classic makespan
    /// 4/3-approximation; placing big instances first keeps them off
    /// already-loaded (or slow) devices.
    Lpt,
}

/// Unknown placement-policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementParseError(pub String);

impl std::fmt::Display for PlacementParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown placement '{}' (use round-robin, greedy or lpt)",
            self.0
        )
    }
}

impl std::error::Error for PlacementParseError {}

impl std::str::FromStr for Placement {
    type Err = PlacementParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(Placement::RoundRobin),
            "greedy" => Ok(Placement::Greedy),
            "lpt" => Ok(Placement::Lpt),
            other => Err(PlacementParseError(other.to_string())),
        }
    }
}

impl Placement {
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Greedy => "greedy",
            Placement::Lpt => "lpt",
        }
    }

    /// Every policy, for sweeps.
    pub fn all() -> [Placement; 3] {
        [Placement::RoundRobin, Placement::Greedy, Placement::Lpt]
    }

    /// Whether the policy consults the cost model (and therefore needs
    /// pilot runs).
    pub fn needs_costs(self) -> bool {
        !matches!(self, Placement::RoundRobin)
    }

    /// Assign `n` instances to `m` devices. `cost(i, d)` predicts the
    /// seconds instance `i` takes on device `d`; round-robin never calls
    /// it. Returns one instance list per device, each in ascending
    /// instance order (the order shards execute in).
    pub fn assign(self, n: u32, m: usize, cost: impl Fn(u32, usize) -> f64) -> Vec<Vec<u32>> {
        self.assign_mem_aware(n, m, cost, |_| 0, &[])
    }

    /// [`Placement::assign`] with memory-aware refusal: `peak(i)` is the
    /// pilot-measured peak heap footprint of instance `i` and `caps[d]`
    /// each device's heap capacity. The informed policies (`greedy`,
    /// `lpt`) refuse to place an instance on a device whose *summed
    /// placed peaks* would exceed its capacity, falling back to the
    /// least-loaded-by-memory device when nothing fits (that shard's
    /// batched driver then sequences the overflow instead of OOMing).
    /// Round-robin stays cost- and memory-blind. An empty `caps` slice
    /// (or a zero capacity) disables the refusal entirely — the exact
    /// legacy assignment.
    pub fn assign_mem_aware(
        self,
        n: u32,
        m: usize,
        cost: impl Fn(u32, usize) -> f64,
        peak: impl Fn(u32) -> u64,
        caps: &[u64],
    ) -> Vec<Vec<u32>> {
        assert!(m >= 1, "placement needs at least one device");
        let mut shards: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut mem = vec![0u64; m];
        let cap_of = |d: usize| caps.get(d).copied().unwrap_or(0);
        // Pick the best device by `key`, skipping memory-full devices;
        // when every device is full, the one with the most free memory
        // takes the overflow.
        let place = |i: u32,
                     load: &mut [f64],
                     mem: &mut [u64],
                     shards: &mut [Vec<u32>],
                     cost: &dyn Fn(u32, usize) -> f64| {
            let p = peak(i);
            let fits = |d: usize, mem: &[u64]| {
                let cap = cap_of(d);
                cap == 0 || mem[d].saturating_add(p) <= cap
            };
            let d = argmin_where(load, |d, l| l + cost(i, d), |d| fits(d, mem))
                // Every device is memory-full: overflow onto the one
                // with the most free capacity (first wins ties), whose
                // batched driver sequences the excess instead of OOMing.
                .unwrap_or_else(|| argmin(mem, |d, _| mem[d] as f64 - cap_of(d) as f64));
            load[d] += cost(i, d);
            mem[d] = mem[d].saturating_add(p);
            shards[d].push(i);
        };
        match self {
            Placement::RoundRobin => {
                for i in 0..n {
                    shards[i as usize % m].push(i);
                }
            }
            Placement::Greedy => {
                let mut load = vec![0.0f64; m];
                for i in 0..n {
                    place(i, &mut load, &mut mem, &mut shards, &cost);
                }
            }
            Placement::Lpt => {
                // Sort by descending predicted time on the fastest slot
                // (device 0 as the common yardstick); ties keep instance
                // order for determinism.
                let mut order: Vec<u32> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    cost(b, 0)
                        .partial_cmp(&cost(a, 0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                let mut load = vec![0.0f64; m];
                for i in order {
                    place(i, &mut load, &mut mem, &mut shards, &cost);
                }
                for s in &mut shards {
                    s.sort_unstable();
                }
            }
        }
        shards
    }
}

/// Index minimizing `key(d, items[d])`; first wins ties (deterministic).
fn argmin<T: Copy>(items: &[T], key: impl Fn(usize, T) -> f64) -> usize {
    argmin_where(items, key, |_| true).expect("argmin over a non-empty slice")
}

/// [`argmin`] restricted to indices passing `ok`; `None` when none do.
fn argmin_where<T: Copy>(
    items: &[T],
    key: impl Fn(usize, T) -> f64,
    ok: impl Fn(usize) -> bool,
) -> Option<usize> {
    let mut best = None;
    let mut best_key = f64::INFINITY;
    for (d, &l) in items.iter().enumerate() {
        if !ok(d) {
            continue;
        }
        let k = key(d, l);
        if k < best_key || best.is_none() {
            best_key = k;
            best = Some(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn names_round_trip() {
        for p in Placement::all() {
            assert_eq!(Placement::from_str(p.name()).unwrap(), p);
        }
        assert_eq!(Placement::from_str("rr").unwrap(), Placement::RoundRobin);
        assert!(Placement::from_str("optimal").is_err());
    }

    #[test]
    fn round_robin_ignores_costs() {
        let shards = Placement::RoundRobin.assign(5, 2, |_, _| panic!("cost-blind"));
        assert_eq!(shards, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn greedy_balances_uniform_costs() {
        let shards = Placement::Greedy.assign(6, 3, |_, _| 1.0);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 2]);
    }

    #[test]
    fn greedy_prefers_the_faster_device_for_expensive_work() {
        // Device 1 is 4× slower. One huge instance (id 0) and three small:
        // the huge one must land on device 0.
        let cost = |i: u32, d: usize| {
            let base = if i == 0 { 10.0 } else { 1.0 };
            base * if d == 1 { 4.0 } else { 1.0 }
        };
        let shards = Placement::Greedy.assign(4, 2, cost);
        assert!(shards[0].contains(&0), "{shards:?}");
    }

    #[test]
    fn lpt_places_the_big_instance_first() {
        // Big instance is id 3 — round-robin would put it on device 1;
        // LPT considers it first and keeps it on the fast device 0.
        let cost = |i: u32, d: usize| {
            let base = if i == 3 { 8.0 } else { 1.0 };
            base * if d == 1 { 3.0 } else { 1.0 }
        };
        let shards = Placement::Lpt.assign(4, 2, cost);
        assert!(shards[0].contains(&3), "{shards:?}");
        // Shards stay in ascending instance order.
        for s in &shards {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{shards:?}");
        }
    }

    #[test]
    fn lpt_beats_round_robin_on_an_adversarial_mix() {
        // Two devices, equal speed. Costs 7,1,7,1: round-robin stacks the
        // two 7s on device 0 (makespan 14); LPT splits them (makespan 8).
        let cost = |i: u32, _: usize| if i.is_multiple_of(2) { 7.0 } else { 1.0 };
        let makespan = |shards: &[Vec<u32>]| -> f64 {
            shards
                .iter()
                .map(|s| s.iter().map(|&i| cost(i, 0)).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let rr = makespan(&Placement::RoundRobin.assign(4, 2, cost));
        let lpt = makespan(&Placement::Lpt.assign(4, 2, cost));
        assert_eq!(rr, 14.0);
        assert_eq!(lpt, 8.0);
    }

    #[test]
    fn mem_aware_refuses_overfull_devices() {
        // Four instances of 6 units each onto two 12-unit devices with
        // uniform costs: plain greedy balances 2/2 anyway, but make
        // device 0 cheaper so cost-only greedy would stack all four
        // there — the memory cap forces an even split.
        let cost = |_: u32, d: usize| if d == 0 { 1.0 } else { 100.0 };
        let blind = Placement::Greedy.assign(4, 2, cost);
        assert_eq!(blind[0].len(), 4, "{blind:?}");
        let aware = Placement::Greedy.assign_mem_aware(4, 2, cost, |_| 6, &[12, 12]);
        assert_eq!(aware[0], vec![0, 1], "{aware:?}");
        assert_eq!(aware[1], vec![2, 3], "{aware:?}");
    }

    #[test]
    fn mem_aware_overflows_to_the_freest_device_when_nothing_fits() {
        // Three 10-unit instances, two 12-unit devices: the third fits
        // nowhere and lands on the device with the most free capacity.
        let shards = Placement::Lpt.assign_mem_aware(3, 2, |_, _| 1.0, |_| 10, &[12, 12]);
        let mut seen: Vec<u32> = shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // Both devices hold at least one instance — no starvation.
        assert!(shards.iter().all(|s| !s.is_empty()), "{shards:?}");
    }

    #[test]
    fn empty_caps_keep_the_legacy_assignment_bit_identical() {
        let cost = |i: u32, d: usize| (i as f64 + 1.0) * (d as f64 + 1.0);
        for p in Placement::all() {
            let legacy = p.assign(9, 4, cost);
            let aware = p.assign_mem_aware(9, 4, cost, |_| u64::MAX, &[]);
            assert_eq!(legacy, aware, "{p:?}");
            let zero_caps = p.assign_mem_aware(9, 4, cost, |_| u64::MAX, &[0, 0, 0, 0]);
            assert_eq!(legacy, zero_caps, "{p:?}");
        }
    }

    #[test]
    fn every_instance_is_assigned_exactly_once() {
        for p in Placement::all() {
            let shards = p.assign(9, 4, |i, d| (i as f64 + 1.0) * (d as f64 + 1.0));
            let mut seen: Vec<u32> = shards.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>(), "{p:?}");
        }
    }
}
