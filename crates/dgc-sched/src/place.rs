//! Placement policies: how ensemble instances map onto fleet devices.

/// Placement policy for sharding an ensemble across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Instance `i` → device `i mod M`. Cost-blind; the baseline every
    /// informed policy must beat on heterogeneous fleets.
    RoundRobin,
    /// In instance order, place each instance on the device whose load
    /// plus the instance's predicted time there is smallest (online
    /// list scheduling).
    Greedy,
    /// Longest-processing-time-first: sort instances by descending
    /// predicted time, then place greedily. The classic makespan
    /// 4/3-approximation; placing big instances first keeps them off
    /// already-loaded (or slow) devices.
    Lpt,
}

/// Unknown placement-policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementParseError(pub String);

impl std::fmt::Display for PlacementParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown placement '{}' (use round-robin, greedy or lpt)",
            self.0
        )
    }
}

impl std::error::Error for PlacementParseError {}

impl std::str::FromStr for Placement {
    type Err = PlacementParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(Placement::RoundRobin),
            "greedy" => Ok(Placement::Greedy),
            "lpt" => Ok(Placement::Lpt),
            other => Err(PlacementParseError(other.to_string())),
        }
    }
}

impl Placement {
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Greedy => "greedy",
            Placement::Lpt => "lpt",
        }
    }

    /// Every policy, for sweeps.
    pub fn all() -> [Placement; 3] {
        [Placement::RoundRobin, Placement::Greedy, Placement::Lpt]
    }

    /// Whether the policy consults the cost model (and therefore needs
    /// pilot runs).
    pub fn needs_costs(self) -> bool {
        !matches!(self, Placement::RoundRobin)
    }

    /// Assign `n` instances to `m` devices. `cost(i, d)` predicts the
    /// seconds instance `i` takes on device `d`; round-robin never calls
    /// it. Returns one instance list per device, each in ascending
    /// instance order (the order shards execute in).
    pub fn assign(self, n: u32, m: usize, cost: impl Fn(u32, usize) -> f64) -> Vec<Vec<u32>> {
        assert!(m >= 1, "placement needs at least one device");
        let mut shards: Vec<Vec<u32>> = vec![Vec::new(); m];
        match self {
            Placement::RoundRobin => {
                for i in 0..n {
                    shards[i as usize % m].push(i);
                }
            }
            Placement::Greedy => {
                let mut load = vec![0.0f64; m];
                for i in 0..n {
                    let d = argmin(&load, |d, l| l + cost(i, d));
                    load[d] += cost(i, d);
                    shards[d].push(i);
                }
            }
            Placement::Lpt => {
                // Sort by descending predicted time on the fastest slot
                // (device 0 as the common yardstick); ties keep instance
                // order for determinism.
                let mut order: Vec<u32> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    cost(b, 0)
                        .partial_cmp(&cost(a, 0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                let mut load = vec![0.0f64; m];
                for i in order {
                    let d = argmin(&load, |d, l| l + cost(i, d));
                    load[d] += cost(i, d);
                    shards[d].push(i);
                }
                for s in &mut shards {
                    s.sort_unstable();
                }
            }
        }
        shards
    }
}

/// Index minimizing `key(d, load[d])`; first wins ties (deterministic).
fn argmin(load: &[f64], key: impl Fn(usize, f64) -> f64) -> usize {
    let mut best = 0usize;
    let mut best_key = f64::INFINITY;
    for (d, &l) in load.iter().enumerate() {
        let k = key(d, l);
        if k < best_key {
            best_key = k;
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn names_round_trip() {
        for p in Placement::all() {
            assert_eq!(Placement::from_str(p.name()).unwrap(), p);
        }
        assert_eq!(Placement::from_str("rr").unwrap(), Placement::RoundRobin);
        assert!(Placement::from_str("optimal").is_err());
    }

    #[test]
    fn round_robin_ignores_costs() {
        let shards = Placement::RoundRobin.assign(5, 2, |_, _| panic!("cost-blind"));
        assert_eq!(shards, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn greedy_balances_uniform_costs() {
        let shards = Placement::Greedy.assign(6, 3, |_, _| 1.0);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 2]);
    }

    #[test]
    fn greedy_prefers_the_faster_device_for_expensive_work() {
        // Device 1 is 4× slower. One huge instance (id 0) and three small:
        // the huge one must land on device 0.
        let cost = |i: u32, d: usize| {
            let base = if i == 0 { 10.0 } else { 1.0 };
            base * if d == 1 { 4.0 } else { 1.0 }
        };
        let shards = Placement::Greedy.assign(4, 2, cost);
        assert!(shards[0].contains(&0), "{shards:?}");
    }

    #[test]
    fn lpt_places_the_big_instance_first() {
        // Big instance is id 3 — round-robin would put it on device 1;
        // LPT considers it first and keeps it on the fast device 0.
        let cost = |i: u32, d: usize| {
            let base = if i == 3 { 8.0 } else { 1.0 };
            base * if d == 1 { 3.0 } else { 1.0 }
        };
        let shards = Placement::Lpt.assign(4, 2, cost);
        assert!(shards[0].contains(&3), "{shards:?}");
        // Shards stay in ascending instance order.
        for s in &shards {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{shards:?}");
        }
    }

    #[test]
    fn lpt_beats_round_robin_on_an_adversarial_mix() {
        // Two devices, equal speed. Costs 7,1,7,1: round-robin stacks the
        // two 7s on device 0 (makespan 14); LPT splits them (makespan 8).
        let cost = |i: u32, _: usize| if i.is_multiple_of(2) { 7.0 } else { 1.0 };
        let makespan = |shards: &[Vec<u32>]| -> f64 {
            shards
                .iter()
                .map(|s| s.iter().map(|&i| cost(i, 0)).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let rr = makespan(&Placement::RoundRobin.assign(4, 2, cost));
        let lpt = makespan(&Placement::Lpt.assign(4, 2, cost));
        assert_eq!(rr, 14.0);
        assert_eq!(lpt, 8.0);
    }

    #[test]
    fn every_instance_is_assigned_exactly_once() {
        for p in Placement::all() {
            let shards = p.assign(9, 4, |i, d| (i as f64 + 1.0) * (d as f64 + 1.0));
            let mut seen: Vec<u32> = shards.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..9).collect::<Vec<_>>(), "{p:?}");
        }
    }
}
