//! Multi-device ensemble sharding (`dgc-sched`).
//!
//! The paper runs every instance of an ensemble on one device and tops
//! out when that device's SMs and DRAM bandwidth saturate (§4.3). This
//! crate shards a single ensemble launch across **M simulated devices**:
//!
//! * [`Placement`] — how instances map to devices: `round-robin` (the
//!   naive baseline), `greedy` (bin-pack by predicted instance time) and
//!   `lpt` (longest-processing-time-first, the classic 4/3-approximation
//!   of makespan scheduling).
//! * [`InstanceCosts`] — the cost model behind the informed policies:
//!   per-distinct-argument pilot runs classified through the `dgc-prof`
//!   roofline, scaled to each device by the resource its bound class
//!   actually consumes (clock for compute/latency-bound instances, DRAM
//!   bandwidth for memory-bound ones).
//! * [`run_ensemble_sharded`] — the wave driver: one driver thread per
//!   device runs its shard as an independent (optionally batched) kernel
//!   sequence; results merge back into one [`dgc_core::EnsembleResult`]
//!   whose completion time is the **makespan** — the maximum over the
//!   per-device times, what a multi-GPU launch actually waits for.
//!
//! With one device the driver delegates to the single-device paths, so
//! `--devices 1` is bit-identical to `run_ensemble_batched` — times,
//! metrics and Chrome-trace bytes (property-tested).

mod cost;
mod place;
mod shard;

pub use cost::{mem_cap_take, wave_take, InstanceCost, InstanceCosts};
pub use place::{Placement, PlacementParseError};
pub use shard::{run_ensemble_sharded, run_ensemble_sharded_mem_aware, ShardedResult};
