//! The sharded wave driver: one ensemble launch across M devices.

use crate::cost::{mem_cap_take, InstanceCosts};
use crate::place::Placement;
use dgc_core::{
    ensure_arg_capacity, run_ensemble_batched_traced, run_ensemble_traced, EnsembleError,
    EnsembleOptions, EnsembleResult, HostApp, InstanceOutcome,
};
use dgc_obs::{
    DeviceStamped, InstanceMetrics, LaunchMetrics, LaunchTimeline, Recorder, SpanGraph,
    DEVICE_PID_STRIDE,
};
use gpu_sim::DeviceFleet;
use host_rpc::{HostServices, RpcStats};

/// Result of a sharded launch: the merged ensemble result plus the
/// scheduling story.
#[derive(Debug)]
pub struct ShardedResult {
    /// Merged per-instance results in global instance order. Times are
    /// the **makespan** view: `kernel_time_s`/`total_time_s` are the
    /// maxima over devices (devices run concurrently), and `report` is
    /// the slowest device's last kernel report.
    pub ensemble: EnsembleResult,
    pub devices: u32,
    pub placement: Placement,
    /// Instance ids per device, as placed.
    pub assignment: Vec<Vec<u32>>,
    /// Wall time of each device's kernel sequence, seconds.
    pub per_device_time_s: Vec<f64>,
    /// Launch-sequence name for the metrics rollup.
    kernel: String,
}

impl ShardedResult {
    pub fn all_succeeded(&self) -> bool {
        self.ensemble.all_succeeded()
    }

    /// The sharded launch's completion time: the slowest device's wall
    /// time.
    pub fn makespan_s(&self) -> f64 {
        self.per_device_time_s.iter().cloned().fold(0.0, f64::max)
    }

    /// Launch rollup with the schema-v4 multi-device fields filled in.
    /// For a single device this is exactly the underlying result's
    /// rollup (bit-identity with the unsharded paths).
    pub fn launch_metrics(&self) -> LaunchMetrics {
        let mut lm = self.ensemble.launch_metrics();
        lm.devices = self.devices;
        lm.makespan_s = self.makespan_s();
        if self.devices > 1 {
            lm.kernel = self.kernel.clone();
        }
        lm
    }
}

/// Shard one ensemble launch across the fleet.
///
/// Placement first maps every instance to a device ([`Placement`];
/// `greedy`/`lpt` consult the pilot cost model, built on device 0's
/// spec). Then one driver thread per device runs its shard as an
/// independent kernel sequence — batched by `batch` per device when
/// `batch > 0` — and the per-device results merge back into one
/// [`EnsembleResult`] in global instance order. The merged
/// `total_time_s` is the makespan: the maximum over the concurrently
/// running devices.
///
/// With a single-device fleet the driver delegates to the unsharded
/// paths, so results are bit-identical to `run_ensemble_batched` /
/// `run_ensemble` — including Chrome-trace bytes. With M ≥ 2 each
/// device's trace lands in its own lane group ([`DEVICE_PID_STRIDE`]),
/// process names prefixed `dev<d> `.
pub fn run_ensemble_sharded(
    fleet: &mut DeviceFleet,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    placement: Placement,
    obs: &mut Recorder,
) -> Result<ShardedResult, EnsembleError> {
    run_ensemble_sharded_mem_aware(fleet, app, arg_lines, opts, batch, placement, obs, false)
}

/// [`run_ensemble_sharded`] with opt-in **memory-aware packing**.
///
/// With `mem_aware` on, every device heap switches to the per-team
/// free-list allocator, pilot runs additionally record each distinct
/// argument line's peak heap footprint, the informed policies refuse
/// placements whose summed peaks would overflow a device
/// ([`Placement::assign_mem_aware`]), and any shard whose instances
/// still exceed its device's capacity runs batched at the largest
/// prefix that fits ([`mem_cap_take`]) instead of OOM-ing. With
/// `mem_aware` off this is exactly the legacy driver, bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_sharded_mem_aware(
    fleet: &mut DeviceFleet,
    app: &HostApp,
    arg_lines: &[Vec<String>],
    opts: &EnsembleOptions,
    batch: u32,
    placement: Placement,
    obs: &mut Recorder,
    mem_aware: bool,
) -> Result<ShardedResult, EnsembleError> {
    assert!(!fleet.is_empty(), "sharding needs at least one device");
    let m = fleet.len();
    let n = opts.num_instances.max(1);
    if mem_aware {
        for d in 0..m {
            fleet.gpu_mut(d).mem.set_free_lists(true);
        }
    }

    if m == 1 {
        // Single device: run the exact unsharded path (bit-identity
        // when `mem_aware` is off). Memory-aware mode sizes the batch
        // from pilot peaks so an over-capacity ensemble sequences
        // instead of OOM-ing.
        let eff_batch = if mem_aware && batch == 0 {
            ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
            let lines_of: Vec<Vec<String>> = (0..n)
                .map(|i| arg_lines[i as usize % arg_lines.len()].clone())
                .collect();
            let costs = InstanceCosts::estimate(app, &lines_of, opts, fleet.spec(0))?;
            let fit = costs.mem_fit_count(n, fleet.spec(0).global_mem_bytes);
            if fit < n {
                fit
            } else {
                0
            }
        } else {
            batch
        };
        let res = if eff_batch > 0 {
            run_ensemble_batched_traced(fleet.gpu_mut(0), app, arg_lines, opts, eff_batch, obs)?
        } else {
            run_ensemble_traced(
                fleet.gpu_mut(0),
                app,
                arg_lines,
                opts,
                HostServices::default(),
                obs,
            )?
        };
        let total = res.total_time_s;
        let kernel = format!("{}-x{}", app.name, n);
        return Ok(ShardedResult {
            ensemble: res,
            devices: 1,
            placement,
            assignment: vec![(0..n).collect()],
            per_device_time_s: vec![total],
            kernel,
        });
    }

    ensure_arg_capacity(arg_lines, n, opts.cycle_args)?;
    // Resolve cycling up front: from here on, line `i` belongs to
    // instance `i` no matter which device it lands on.
    let lines_of: Vec<Vec<String>> = (0..n)
        .map(|i| arg_lines[i as usize % arg_lines.len()].clone())
        .collect();

    // ---- Placement. ----
    // Memory-aware mode always runs pilots: even the cost-blind
    // round-robin policy needs per-instance peaks to size each
    // device's batch below.
    let costs = if placement.needs_costs() || mem_aware {
        Some(InstanceCosts::estimate(
            app,
            &lines_of,
            opts,
            fleet.spec(0),
        )?)
    } else {
        None
    };
    let caps: Vec<u64> = if mem_aware {
        (0..m).map(|d| fleet.spec(d).global_mem_bytes).collect()
    } else {
        Vec::new()
    };
    let assignment = match (&costs, placement.needs_costs()) {
        (Some(c), true) => placement.assign_mem_aware(
            n,
            m,
            |i, d| c.cost_on(i, fleet.spec(d)),
            |i| c.peak_mem_bytes(i),
            &caps,
        ),
        _ => placement.assign(n, m, |_, _| 0.0),
    };

    // ---- Per-device batch sizing. ----
    // An explicit `--batch` wins; otherwise memory-aware shards batch
    // at the largest prefix of their placed instances that fits the
    // device, and only when the whole shard does not fit at once.
    let dev_batch: Vec<u32> = (0..m)
        .map(|d| {
            if batch > 0 || !mem_aware {
                return batch;
            }
            let costs = costs.as_ref().expect("mem-aware mode ran pilots");
            let peaks: Vec<u64> = assignment[d]
                .iter()
                .map(|&g| costs.peak_mem_bytes(g))
                .collect();
            let fit = mem_cap_take(&peaks, caps[d], peaks.len()) as u32;
            if (fit as usize) < peaks.len() {
                fit
            } else {
                0
            }
        })
        .collect();

    // ---- Per-device wave execution, one driver thread per device. ----
    let traced = obs.is_enabled();
    let base_us = obs.base_us();
    // Each device thread gets the shared monitor sink wrapped in
    // [`DeviceStamped`], so its launch events carry the device ordinal.
    let monitor = obs.monitor().cloned();
    struct DeviceRun {
        result: Result<EnsembleResult, EnsembleError>,
        recorder: Recorder,
    }
    let runs: Vec<Option<DeviceRun>> = std::thread::scope(|s| {
        let handles: Vec<_> = fleet
            .iter_mut()
            .zip(assignment.iter())
            .enumerate()
            .map(|(d, (gpu, shard))| {
                if shard.is_empty() {
                    return None;
                }
                let shard_lines: Vec<Vec<String>> = shard
                    .iter()
                    .map(|&g| lines_of[g as usize].clone())
                    .collect();
                let shard_opts = EnsembleOptions {
                    num_instances: shard.len() as u32,
                    ..opts.clone()
                };
                let shard_monitor = monitor.clone().map(|m| DeviceStamped::stamp(m, d as u32));
                let shard_batch = dev_batch[d];
                Some(s.spawn(move || {
                    let mut rec = if traced {
                        Recorder::enabled()
                    } else {
                        Recorder::disabled()
                    };
                    if let Some(m) = shard_monitor {
                        rec.set_monitor(m);
                    }
                    rec.set_base_us(base_us);
                    let result = if shard_batch > 0 {
                        run_ensemble_batched_traced(
                            gpu,
                            app,
                            &shard_lines,
                            &shard_opts,
                            shard_batch,
                            &mut rec,
                        )
                    } else {
                        run_ensemble_traced(
                            gpu,
                            app,
                            &shard_lines,
                            &shard_opts,
                            HostServices::default(),
                            &mut rec,
                        )
                    };
                    DeviceRun {
                        result,
                        recorder: rec,
                    }
                }))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("device driver thread panicked")))
            .collect()
    });

    // ---- Merge in global instance order. ----
    let mut slot_outcome: Vec<Option<InstanceOutcome>> = vec![None; n as usize];
    let mut slot_stdout: Vec<String> = vec![String::new(); n as usize];
    let mut slot_end: Vec<f64> = vec![0.0; n as usize];
    let mut slot_metrics: Vec<Option<InstanceMetrics>> = vec![None; n as usize];
    let mut per_device_time_s = vec![0.0f64; m];
    let mut kernel_time_s = 0.0f64;
    let mut rpc_stats = RpcStats::default();
    let mut timeline = LaunchTimeline::default();
    let mut graph = SpanGraph::default();
    let mut heap = dgc_core::HeapUsage {
        peak_bytes: vec![0; m],
        ..Default::default()
    };
    let mut slowest: Option<(f64, EnsembleResult)> = None;

    for (d, run) in runs.into_iter().enumerate() {
        let Some(run) = run else { continue };
        let mut res = run.result?;
        for (li, &g) in assignment[d].iter().enumerate() {
            slot_outcome[g as usize] = Some(res.instances[li].clone());
            slot_stdout[g as usize] = res.stdout[li].clone();
            // Devices run concurrently from t = 0, so per-device end
            // times are already global times.
            slot_end[g as usize] = res.instance_end_times_s[li];
            let mut mi = res.metrics[li].clone();
            mi.instance = g;
            mi.device = d as u32;
            slot_metrics[g as usize] = Some(mi);
        }
        per_device_time_s[d] = res.total_time_s;
        kernel_time_s = kernel_time_s.max(res.kernel_time_s);
        rpc_stats.merge(&res.rpc_stats);
        // One peak entry per device; fragmentation and fallbacks fold
        // across the fleet like the batched driver folds launches.
        heap.peak_bytes[d] = res.heap.peak_bytes.iter().copied().max().unwrap_or(0);
        heap.fragmentation = heap.fragmentation.max(res.heap.fragmentation);
        heap.alloc_fallbacks += res.heap.alloc_fallbacks;
        // Device lanes start concurrently at t = 0, so the shard's
        // series needs only a device stamp, not a time shift.
        let mut device_tl = std::mem::take(&mut res.timeline);
        device_tl.set_device(d as u32);
        timeline.merge(device_tl);
        // Span graph: device lanes run concurrently from t = 0, so the
        // shard's nodes only get the device stamp (concurrent — replay
        // folds each lane from zero and takes the slowest, reproducing
        // the makespan fold below) and the global instance ids.
        let mut device_graph = std::mem::take(&mut res.graph);
        device_graph.stamp_device(d as u32, true);
        device_graph.remap_instances(&assignment[d]);
        graph.merge(device_graph);
        if traced {
            obs.merge_shifted(
                &run.recorder,
                d as u32 * DEVICE_PID_STRIDE,
                &format!("dev{d} "),
            );
        }
        let is_slowest = slowest
            .as_ref()
            .map(|(t, _)| res.total_time_s > *t)
            .unwrap_or(true);
        if is_slowest {
            slowest = Some((res.total_time_s, res));
        }
    }

    let (_, slowest_res) = slowest.expect("at least one device ran a shard");
    let makespan_s = per_device_time_s.iter().cloned().fold(0.0, f64::max);
    let instances: Vec<InstanceOutcome> = slot_outcome
        .into_iter()
        .map(|o| o.expect("every instance was placed on a device"))
        .collect();
    let metrics: Vec<InstanceMetrics> = slot_metrics
        .into_iter()
        .map(|m| m.expect("every instance has metrics"))
        .collect();

    Ok(ShardedResult {
        ensemble: EnsembleResult {
            instances,
            stdout: slot_stdout,
            report: slowest_res.report,
            kernel_time_s,
            total_time_s: makespan_s,
            instance_end_times_s: slot_end,
            rpc_stats,
            metrics,
            timeline,
            graph,
            heap,
        },
        devices: m as u32,
        placement,
        assignment,
        per_device_time_s,
        kernel: format!("{}-x{}", app.name, n),
    })
}
