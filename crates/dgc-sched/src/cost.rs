//! The placement cost model: predicted per-instance time per device.
//!
//! The informed policies need `cost(i, d)` — how long instance `i` would
//! take on device `d`. We get it from **pilot runs**: each *distinct*
//! argument line runs once, alone, on a reference device, and the pilot's
//! kernel time plus its `dgc-prof` roofline classification predict the
//! time on any other device:
//!
//! * compute- or latency-bound pilots scale with the **core clock** —
//!   fewer cycles per second is the only thing a derated device changes
//!   for them;
//! * memory-bandwidth-bound pilots scale with **DRAM bandwidth** — the
//!   roof they sit on.
//!
//! Pilot runs simulate a single instance, so they are cheap relative to
//! the ensemble, and they are *predictions*: the sharded driver never
//! feeds them back into reported times.

use dgc_core::{run_ensemble, EnsembleError, EnsembleOptions, HostApp};
use dgc_prof::{BoundClass, RooflinePoint};
use gpu_arch::GpuSpec;
use gpu_sim::Gpu;
use host_rpc::HostServices;
use std::collections::HashMap;

/// One pilot measurement: the predicted shape of every instance sharing
/// the same argument line.
#[derive(Debug, Clone)]
pub struct InstanceCost {
    /// Pilot kernel time on the reference device, seconds.
    pub seconds_ref: f64,
    /// Roofline classification of the pilot run.
    pub bound: BoundClass,
    /// Peak device-heap bytes the pilot occupied (instance heap plus the
    /// module globals it shares with the rest of the ensemble). Drives
    /// memory-aware packing: the sum of co-resident peaks must fit the
    /// device. Conservative for packed ensembles — globals are counted
    /// once per instance rather than once per device.
    pub peak_mem_bytes: u64,
}

/// Cost model for one ensemble: a pilot per distinct argument line, plus
/// the reference device they ran on.
#[derive(Debug, Clone)]
pub struct InstanceCosts {
    /// Pilot result per instance (instances sharing an argument line
    /// share the measurement).
    per_instance: Vec<InstanceCost>,
    reference: GpuSpec,
}

impl InstanceCosts {
    /// Run one single-instance pilot per distinct argument line on a
    /// fresh device of `reference`'s spec and classify it through the
    /// roofline model. `arg_lines` must already be resolved to one line
    /// per instance (cycled upstream if requested).
    pub fn estimate(
        app: &HostApp,
        arg_lines: &[Vec<String>],
        opts: &EnsembleOptions,
        reference: &GpuSpec,
    ) -> Result<Self, EnsembleError> {
        let mut by_line: HashMap<Vec<String>, InstanceCost> = HashMap::new();
        let mut per_instance = Vec::with_capacity(arg_lines.len());
        for line in arg_lines {
            if let Some(c) = by_line.get(line) {
                per_instance.push(c.clone());
                continue;
            }
            let mut gpu = Gpu::new(reference.clone());
            let pilot_opts = EnsembleOptions {
                num_instances: 1,
                ..opts.clone()
            };
            let res = run_ensemble(
                &mut gpu,
                app,
                std::slice::from_ref(line),
                &pilot_opts,
                HostServices::default(),
            )?;
            let point = RooflinePoint::from_report(reference, &res.report);
            let c = InstanceCost {
                seconds_ref: res.kernel_time_s,
                bound: point.bound,
                peak_mem_bytes: res.heap.peak_bytes.first().copied().unwrap_or(0),
            };
            by_line.insert(line.clone(), c.clone());
            per_instance.push(c);
        }
        Ok(Self {
            per_instance,
            reference: reference.clone(),
        })
    }

    pub fn len(&self) -> usize {
        self.per_instance.len()
    }

    pub fn is_empty(&self) -> bool {
        self.per_instance.is_empty()
    }

    pub fn cost(&self, instance: u32) -> &InstanceCost {
        &self.per_instance[instance as usize]
    }

    /// Predicted seconds of `instance` on a device of spec `target`,
    /// scaling the pilot time by the resource its bound class consumes.
    pub fn cost_on(&self, instance: u32, target: &GpuSpec) -> f64 {
        let c = &self.per_instance[instance as usize];
        let ratio = match c.bound {
            BoundClass::MemoryBw => {
                self.reference.dram_bandwidth_gbps / target.dram_bandwidth_gbps.max(1e-9)
            }
            BoundClass::Compute | BoundClass::Latency => {
                self.reference.clock_hz() / target.clock_hz().max(1.0)
            }
        };
        c.seconds_ref * ratio
    }

    /// Pilot-measured peak heap bytes of `instance`.
    pub fn peak_mem_bytes(&self, instance: u32) -> u64 {
        self.per_instance[instance as usize].peak_mem_bytes
    }

    /// Largest concurrent prefix of instances `0..n` whose summed pilot
    /// peaks fit within `capacity_bytes`. At least 1 when `n > 0` — a
    /// single over-capacity instance still launches alone (and OOMs
    /// there, exactly as it would without packing).
    pub fn mem_fit_count(&self, n: u32, capacity_bytes: u64) -> u32 {
        let peaks: Vec<u64> = (0..n).map(|i| self.peak_mem_bytes(i)).collect();
        mem_cap_take(&peaks, capacity_bytes, n as usize) as u32
    }
}

/// Serving-wave sizing over predicted per-job costs: the number of jobs
/// a continuous-batching daemon should drain into its next kernel wave.
///
/// Takes the longest prefix of `costs_s` (pilot-predicted seconds per
/// job, queue order) whose cumulative predicted time stays within
/// `budget_s` — a serial-time proxy for wave work that keeps waves small
/// enough to checkpoint often, yet batches cheap jobs aggressively. At
/// least one job is always taken (a single over-budget job must still
/// run), and never more than `max`. Deterministic: a resumed daemon
/// re-forms exactly the waves the crashed one would have.
pub fn wave_take(costs_s: &[f64], budget_s: f64, max: usize) -> usize {
    let cap = costs_s.len().min(max.max(1));
    let mut taken = 0usize;
    let mut spent = 0.0f64;
    for &c in &costs_s[..cap] {
        spent += c.max(0.0);
        if taken > 0 && spent > budget_s {
            break;
        }
        taken += 1;
    }
    taken.max(usize::from(!costs_s.is_empty()))
}

/// Memory-capacity wave sizing: the longest prefix of `peaks` (pilot
/// peak heap bytes per pending job, queue order) whose sum stays within
/// `capacity_bytes`, capped at `max`. At least one job is always taken
/// while any is pending — a single over-capacity job must still launch
/// (and report its OOM) rather than starve the queue. Deterministic,
/// like [`wave_take`]: resumed daemons re-form identical waves.
pub fn mem_cap_take(peaks: &[u64], capacity_bytes: u64, max: usize) -> usize {
    let cap = peaks.len().min(max.max(1));
    let mut taken = 0usize;
    let mut used = 0u64;
    for &p in &peaks[..cap] {
        used = used.saturating_add(p);
        if taken > 0 && used > capacity_bytes {
            break;
        }
        taken += 1;
    }
    taken.max(usize::from(!peaks.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::AppContext;
    use gpu_arch::derate;
    use gpu_sim::{KernelError, TeamCtx};

    const MODULE: &str = r#"
module "cost" {
  func @main arity=2 calls(@malloc, @atoi)
  extern func @malloc
  extern func @atoi
}
"#;

    fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
        let n: u64 = cx
            .argv
            .iter()
            .position(|a| a == "-n")
            .and_then(|p| cx.argv.get(p + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
        team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
        Ok(0)
    }

    fn app() -> HostApp {
        HostApp::new("cost", MODULE, stream_main)
    }

    fn line(n: u64) -> Vec<String> {
        vec!["-n".into(), n.to_string()]
    }

    #[test]
    fn wave_take_fills_the_budget_without_starving_or_overflowing() {
        // Cheap jobs batch until the budget is spent…
        assert_eq!(wave_take(&[0.1, 0.1, 0.1, 0.1, 0.1], 0.35, 16), 3);
        // …an over-budget first job still runs alone…
        assert_eq!(wave_take(&[5.0, 0.1], 1.0, 16), 1);
        // …the hard cap wins over a generous budget…
        assert_eq!(wave_take(&[0.1; 10], 100.0, 4), 4);
        // …and fewer jobs than the cap takes them all.
        assert_eq!(wave_take(&[0.1, 0.1], 100.0, 16), 2);
        assert_eq!(wave_take(&[], 1.0, 16), 0);
        // A zero cap is treated as 1: a wave can never be empty while
        // jobs are pending.
        assert_eq!(wave_take(&[0.1, 0.1], 100.0, 0), 1);
    }

    #[test]
    fn mem_cap_take_packs_to_capacity_without_starving() {
        // Four 4-byte jobs into a 10-byte device: two fit.
        assert_eq!(mem_cap_take(&[4, 4, 4, 4], 10, 16), 2);
        // An over-capacity first job still launches alone.
        assert_eq!(mem_cap_take(&[64, 1], 10, 16), 1);
        // The hard cap wins over a generous capacity.
        assert_eq!(mem_cap_take(&[1; 10], 1000, 3), 3);
        // Fewer jobs than the cap takes them all; zero-peak jobs all fit.
        assert_eq!(mem_cap_take(&[0, 0, 0], 10, 16), 3);
        assert_eq!(mem_cap_take(&[], 10, 16), 0);
        // A zero cap is treated as 1, like wave_take.
        assert_eq!(mem_cap_take(&[1, 1], 10, 0), 1);
    }

    #[test]
    fn pilots_measure_peak_memory() {
        let spec = GpuSpec::a100_40gb();
        let lines = vec![line(4000), line(500)];
        let costs =
            InstanceCosts::estimate(&app(), &lines, &EnsembleOptions::default(), &spec).unwrap();
        // The pilot allocates 8·n bytes; peaks reflect that (plus globals).
        assert!(
            costs.peak_mem_bytes(0) >= 8 * 4000,
            "{}",
            costs.peak_mem_bytes(0)
        );
        assert!(costs.peak_mem_bytes(0) > costs.peak_mem_bytes(1));
        // Capacity packing: with room for exactly one big pilot footprint,
        // only the first instance fits the wave.
        let cap = costs.peak_mem_bytes(0) + costs.peak_mem_bytes(1) / 2;
        assert_eq!(costs.mem_fit_count(2, cap), 1);
        assert_eq!(costs.mem_fit_count(2, u64::MAX), 2);
    }

    #[test]
    fn pilots_deduplicate_by_argument_line() {
        let spec = GpuSpec::a100_40gb();
        let lines = vec![line(4000), line(500), line(4000), line(500)];
        let costs =
            InstanceCosts::estimate(&app(), &lines, &EnsembleOptions::default(), &spec).unwrap();
        assert_eq!(costs.len(), 4);
        // Identical lines share the exact measurement.
        assert_eq!(costs.cost(0).seconds_ref, costs.cost(2).seconds_ref);
        assert_eq!(costs.cost(1).seconds_ref, costs.cost(3).seconds_ref);
        // The 8× bigger stream costs more.
        assert!(costs.cost(0).seconds_ref > costs.cost(1).seconds_ref);
    }

    #[test]
    fn derated_device_predicts_proportionally_slower() {
        let spec = GpuSpec::a100_40gb();
        let half = derate(&spec, 0.5);
        let lines = vec![line(2000)];
        let costs =
            InstanceCosts::estimate(&app(), &lines, &EnsembleOptions::default(), &spec).unwrap();
        let on_full = costs.cost_on(0, &spec);
        let on_half = costs.cost_on(0, &half);
        // Uniform derating scales clock and bandwidth together, so every
        // bound class predicts ~2× on the half-speed part.
        assert!(
            (on_half / on_full - 2.0).abs() < 0.05,
            "{on_half}/{on_full}"
        );
        // On the reference itself the prediction is the pilot time.
        assert_eq!(on_full, costs.cost(0).seconds_ref);
    }
}
