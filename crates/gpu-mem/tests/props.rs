//! Property-based tests for the device-memory substrate.

use gpu_mem::{coalesce, coalesce_strided, Backing, DeviceMemory, DevicePtr, SECTOR_BYTES};
use proptest::prelude::*;

proptest! {
    /// Live allocations never overlap and stay inside the heap, across an
    /// arbitrary interleaving of allocs and frees.
    #[test]
    fn allocations_never_overlap(ops in prop::collection::vec((0u8..2, 1u64..10_000), 1..120)) {
        let mut mem = DeviceMemory::new(1 << 22);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, requested len)
        for (op, size) in ops {
            if op == 0 {
                if let Ok(p) = mem.alloc(size) {
                    for &(s, l) in &live {
                        let sep = p.0 + size <= s || s + l <= p.0;
                        prop_assert!(sep, "overlap: [{:#x},+{}) vs [{:#x},+{})", p.0, size, s, l);
                    }
                    live.push((p.0, size));
                }
            } else if let Some((s, _)) = live.pop() {
                mem.free(DevicePtr(s)).unwrap();
            }
        }
    }

    /// Accounting invariant: after freeing everything, the heap is whole.
    #[test]
    fn full_free_restores_capacity(sizes in prop::collection::vec(1u64..100_000, 1..60)) {
        let mut mem = DeviceMemory::new(1 << 24);
        let ptrs: Vec<_> = sizes.iter().filter_map(|&s| mem.alloc(s).ok()).collect();
        // Free in a scrambled (reversed-evens-then-odds) order.
        for (i, p) in ptrs.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            let _ = i;
            mem.free(*p).unwrap();
        }
        for (i, p) in ptrs.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            let _ = i;
            mem.free(*p).unwrap();
        }
        prop_assert_eq!(mem.free_bytes(), 1 << 24);
        prop_assert_eq!(mem.stats().live_allocations, 0);
    }

    /// Stored scalars read back exactly, at any in-bounds offset.
    #[test]
    fn store_load_roundtrip(vals in prop::collection::vec(any::<f64>(), 1..100)) {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(vals.len() as u64 * 8).unwrap();
        for (i, v) in vals.iter().enumerate() {
            mem.store::<f64>(p.elem_add::<f64>(i as u64), *v).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            let got = mem.load::<f64>(p.elem_add::<f64>(i as u64)).unwrap();
            prop_assert!(got == *v || (got.is_nan() && v.is_nan()));
        }
    }

    /// Coalescing bounds: sector count is between 1 and 2×lanes for any
    /// non-empty access set, and moved ≥ useful.
    #[test]
    fn coalesce_bounds(addrs in prop::collection::vec(0u64..1_000_000, 1..32), size in prop::sample::select(vec![1u32, 2, 4, 8])) {
        let lanes: Vec<Option<u64>> = addrs.iter().map(|&a| Some(a)).collect();
        let r = coalesce(&lanes, size);
        prop_assert!(r.sectors >= 1);
        prop_assert!(r.sectors as u64 <= 2 * lanes.len() as u64);
        prop_assert!(r.moved_bytes >= r.useful_bytes);
        prop_assert_eq!(r.moved_bytes, r.sectors as u64 * SECTOR_BYTES);
    }

    /// Coalescing is monotone in stride: a larger stride never touches
    /// fewer sectors (for aligned element-sized accesses).
    #[test]
    fn coalesce_monotone_in_stride(base in 0u64..10_000, lanes in 1u32..33) {
        let mut prev = 0;
        for stride_elems in 1u64..8 {
            let addrs: Vec<Option<u64>> =
                (0..lanes as u64).map(|l| Some(base * 8 + l * stride_elems * 8)).collect();
            let r = coalesce(&addrs, 8);
            prop_assert!(r.sectors >= prev, "stride {stride_elems}: {} < {prev}", r.sectors);
            prev = r.sectors;
        }
    }

    /// The strided fast path agrees with the exact path.
    #[test]
    fn strided_fast_path_is_exact(base in 0u64..100_000, stride in prop::sample::select(vec![4u64, 8, 16, 32, 64, 256]), lanes in 1u32..64, size in prop::sample::select(vec![4u32, 8])) {
        // Fast path only specializes aligned element streams; compare there.
        prop_assume!(stride >= size as u64);
        let exact = {
            let addrs: Vec<Option<u64>> = (0..lanes as u64).map(|l| Some(base + l * stride)).collect();
            coalesce(&addrs, size)
        };
        let fast = coalesce_strided(base, stride, size, lanes);
        prop_assert_eq!(exact.useful_bytes, fast.useful_bytes);
        if lanes <= 64 {
            prop_assert_eq!(exact.sectors, fast.sectors);
        }
    }

    /// Reserved allocations consume capacity exactly like materialized
    /// ones (the OOM-modeling contract).
    #[test]
    fn reserved_and_materialized_account_identically(size in 256u64..1_000_000) {
        let mut a = DeviceMemory::new(1 << 22);
        let mut b = DeviceMemory::new(1 << 22);
        a.alloc_tagged(size, Backing::Materialized, 0).unwrap();
        b.alloc_tagged(size, Backing::Reserved, 0).unwrap();
        prop_assert_eq!(a.free_bytes(), b.free_bytes());
        prop_assert_eq!(a.stats().bytes_in_use, b.stats().bytes_in_use);
    }
}
