//! Property-based tests for the device-memory substrate and the
//! two-level heap allocator's invariants.

use gpu_mem::{
    coalesce, coalesce_strided, AllocError, Backing, DeviceMemory, DevicePtr, SECTOR_BYTES,
};
use proptest::prelude::*;

proptest! {
    /// Live allocations never overlap and stay inside the heap, across an
    /// arbitrary interleaving of allocs and frees.
    #[test]
    fn allocations_never_overlap(ops in prop::collection::vec((0u8..2, 1u64..10_000), 1..120)) {
        let mut mem = DeviceMemory::new(1 << 22);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, requested len)
        for (op, size) in ops {
            if op == 0 {
                if let Ok(p) = mem.alloc(size) {
                    for &(s, l) in &live {
                        let sep = p.0 + size <= s || s + l <= p.0;
                        prop_assert!(sep, "overlap: [{:#x},+{}) vs [{:#x},+{})", p.0, size, s, l);
                    }
                    live.push((p.0, size));
                }
            } else if let Some((s, _)) = live.pop() {
                mem.free(DevicePtr(s)).unwrap();
            }
        }
    }

    /// Accounting invariant: after freeing everything, the heap is whole.
    #[test]
    fn full_free_restores_capacity(sizes in prop::collection::vec(1u64..100_000, 1..60)) {
        let mut mem = DeviceMemory::new(1 << 24);
        let ptrs: Vec<_> = sizes.iter().filter_map(|&s| mem.alloc(s).ok()).collect();
        // Free in a scrambled (reversed-evens-then-odds) order.
        for (i, p) in ptrs.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            let _ = i;
            mem.free(*p).unwrap();
        }
        for (i, p) in ptrs.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            let _ = i;
            mem.free(*p).unwrap();
        }
        prop_assert_eq!(mem.free_bytes(), 1 << 24);
        prop_assert_eq!(mem.stats().live_allocations, 0);
    }

    /// Stored scalars read back exactly, at any in-bounds offset.
    #[test]
    fn store_load_roundtrip(vals in prop::collection::vec(any::<f64>(), 1..100)) {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(vals.len() as u64 * 8).unwrap();
        for (i, v) in vals.iter().enumerate() {
            mem.store::<f64>(p.elem_add::<f64>(i as u64), *v).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            let got = mem.load::<f64>(p.elem_add::<f64>(i as u64)).unwrap();
            prop_assert!(got == *v || (got.is_nan() && v.is_nan()));
        }
    }

    /// Coalescing bounds: sector count is between 1 and 2×lanes for any
    /// non-empty access set, and moved ≥ useful.
    #[test]
    fn coalesce_bounds(addrs in prop::collection::vec(0u64..1_000_000, 1..32), size in prop::sample::select(vec![1u32, 2, 4, 8])) {
        let lanes: Vec<Option<u64>> = addrs.iter().map(|&a| Some(a)).collect();
        let r = coalesce(&lanes, size);
        prop_assert!(r.sectors >= 1);
        prop_assert!(r.sectors as u64 <= 2 * lanes.len() as u64);
        prop_assert!(r.moved_bytes >= r.useful_bytes);
        prop_assert_eq!(r.moved_bytes, r.sectors as u64 * SECTOR_BYTES);
    }

    /// Coalescing is monotone in stride: a larger stride never touches
    /// fewer sectors (for aligned element-sized accesses).
    #[test]
    fn coalesce_monotone_in_stride(base in 0u64..10_000, lanes in 1u32..33) {
        let mut prev = 0;
        for stride_elems in 1u64..8 {
            let addrs: Vec<Option<u64>> =
                (0..lanes as u64).map(|l| Some(base * 8 + l * stride_elems * 8)).collect();
            let r = coalesce(&addrs, 8);
            prop_assert!(r.sectors >= prev, "stride {stride_elems}: {} < {prev}", r.sectors);
            prev = r.sectors;
        }
    }

    /// The strided fast path agrees with the exact path.
    #[test]
    fn strided_fast_path_is_exact(base in 0u64..100_000, stride in prop::sample::select(vec![4u64, 8, 16, 32, 64, 256]), lanes in 1u32..64, size in prop::sample::select(vec![4u32, 8])) {
        // Fast path only specializes aligned element streams; compare there.
        prop_assume!(stride >= size as u64);
        let exact = {
            let addrs: Vec<Option<u64>> = (0..lanes as u64).map(|l| Some(base + l * stride)).collect();
            coalesce(&addrs, size)
        };
        let fast = coalesce_strided(base, stride, size, lanes);
        prop_assert_eq!(exact.useful_bytes, fast.useful_bytes);
        if lanes <= 64 {
            prop_assert_eq!(exact.sectors, fast.sectors);
        }
    }

    /// Reserved allocations consume capacity exactly like materialized
    /// ones (the OOM-modeling contract).
    #[test]
    fn reserved_and_materialized_account_identically(size in 256u64..1_000_000) {
        let mut a = DeviceMemory::new(1 << 22);
        let mut b = DeviceMemory::new(1 << 22);
        a.alloc_tagged(size, Backing::Materialized, 0).unwrap();
        b.alloc_tagged(size, Backing::Reserved, 0).unwrap();
        prop_assert_eq!(a.free_bytes(), b.free_bytes());
        prop_assert_eq!(a.stats().bytes_in_use, b.stats().bytes_in_use);
    }
}

// ---------------------------------------------------------------------------
// Two-level allocator invariants: arbitrary op interleavings, every step
// validated against `debug_validate`'s full O(n) re-derivation of the
// incremental ledger (free-byte counter, hole multiset, largest hole,
// per-tag accounting, ring contents, byte conservation, exact tiling).
// ---------------------------------------------------------------------------

const CAPACITY: u64 = 1 << 20; // 1 MiB: small enough that OOM paths fire.

/// One scripted heap operation. Free indices are taken modulo the
/// current live set so every generated script is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    Alloc { len: u64, tag: u32 },
    Free { idx: usize },
    FreeByTag { tag: u32 },
    SetFreeLists { enabled: bool },
    PruneStale,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` chooses uniformly; repeating the hot arms
    // biases scripts toward allocation/free churn.
    prop_oneof![
        (1u64..200_000, 0u32..5).prop_map(|(len, tag)| Op::Alloc { len, tag }),
        (1u64..200_000, 0u32..5).prop_map(|(len, tag)| Op::Alloc { len, tag }),
        (1u64..200_000, 0u32..5).prop_map(|(len, tag)| Op::Alloc { len, tag }),
        (1u64..200_000, 0u32..5).prop_map(|(len, tag)| Op::Alloc { len, tag }),
        any::<usize>().prop_map(|idx| Op::Free { idx }),
        any::<usize>().prop_map(|idx| Op::Free { idx }),
        any::<usize>().prop_map(|idx| Op::Free { idx }),
        (0u32..5).prop_map(|tag| Op::FreeByTag { tag }),
        any::<bool>().prop_map(|enabled| Op::SetFreeLists { enabled }),
        Just(Op::PruneStale),
    ]
}

/// Run a script against a fresh heap, validating after every op and
/// checking the generation counter never moves backwards. Returns the
/// heap with all remaining live pointers freed (and validated).
fn run_script(ops: &[Op], free_lists_at_start: bool) -> DeviceMemory {
    let mut mem = DeviceMemory::new(CAPACITY);
    mem.set_free_lists(free_lists_at_start);
    let mut live: Vec<DevicePtr> = Vec::new();
    let mut last_generation = mem.generation();
    for op in ops {
        match op {
            Op::Alloc { len, tag } => match mem.alloc_tagged(*len, Backing::Materialized, *tag) {
                Ok(ptr) => live.push(ptr),
                Err(AllocError::OutOfMemory { free, .. }) => {
                    // The OOM report's `free` is the incremental counter;
                    // it must agree with the heap's own view.
                    assert_eq!(free, mem.free_bytes());
                }
                Err(e) => panic!("unexpected alloc error: {e:?}"),
            },
            Op::Free { idx } => {
                if !live.is_empty() {
                    let ptr = live.swap_remove(idx % live.len());
                    mem.free(ptr).expect("live pointer frees cleanly");
                }
            }
            Op::FreeByTag { tag } => {
                mem.free_by_tag(*tag);
                // Anything the allocator no longer knows is gone.
                live.retain(|p| mem.region_of(p.0).is_some());
            }
            Op::SetFreeLists { enabled } => mem.set_free_lists(*enabled),
            Op::PruneStale => {
                mem.prune_stale(4);
            }
        }
        mem.debug_validate().expect("heap invariants hold after op");
        let generation = mem.generation();
        assert!(
            generation >= last_generation,
            "generation went backwards: {last_generation} -> {generation}"
        );
        last_generation = generation;
    }
    for ptr in live {
        mem.free(ptr).expect("teardown free succeeds");
        mem.debug_validate()
            .expect("heap invariants hold during teardown");
    }
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core invariant suite: any op interleaving with free lists ON
    /// keeps every ledger consistent with a full scan.
    #[test]
    fn heap_invariants_hold_with_free_lists(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_script(&ops, true);
    }

    /// Same scripts with free lists OFF at the start: the legacy
    /// single-level configuration obeys the same invariants (and any
    /// mid-script `SetFreeLists` flip must flush cleanly both ways).
    #[test]
    fn heap_invariants_hold_without_free_lists(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_script(&ops, false);
    }

    /// After every script, full teardown restores the pristine heap: one
    /// maximal hole, zero bytes in use, zero bytes parked.
    #[test]
    fn full_teardown_restores_one_maximal_hole(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut mem = run_script(&ops, true);
        mem.set_free_lists(false); // flush rings back into the global list
        mem.debug_validate().expect("flush preserves invariants");
        prop_assert_eq!(mem.stats().bytes_in_use, 0);
        prop_assert_eq!(mem.cached_bytes(), 0);
        prop_assert_eq!(mem.free_bytes(), CAPACITY);
        prop_assert_eq!(mem.largest_free_block(), CAPACITY);
        prop_assert_eq!(mem.fragmentation(), 0.0);
    }

    /// Byte conservation as a standalone property: in-use + free is the
    /// capacity at every step, whichever level owns the free bytes.
    #[test]
    fn bytes_are_conserved(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut mem = DeviceMemory::new(CAPACITY);
        mem.set_free_lists(true);
        let mut live: Vec<DevicePtr> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc { len, tag } => {
                    if let Ok(p) = mem.alloc_tagged(*len, Backing::Materialized, *tag) {
                        live.push(p);
                    }
                }
                Op::Free { idx } => {
                    if !live.is_empty() {
                        let p = live.swap_remove(idx % live.len());
                        mem.free(p).expect("live pointer frees cleanly");
                    }
                }
                Op::FreeByTag { tag } => {
                    mem.free_by_tag(*tag);
                    live.retain(|p| mem.region_of(p.0).is_some());
                }
                Op::SetFreeLists { enabled } => mem.set_free_lists(*enabled),
                Op::PruneStale => {
                    mem.prune_stale(4);
                }
            }
            prop_assert_eq!(mem.stats().bytes_in_use + mem.free_bytes(), CAPACITY);
        }
    }

    /// Recycled blocks never leak tag accounting: allocating and bulk-
    /// freeing a tag always returns its bytes, no matter what another
    /// tag holds concurrently.
    #[test]
    fn free_by_tag_reclaims_every_byte(
        sizes in prop::collection::vec(1u64..50_000, 1..12),
        other in prop::collection::vec(1u64..50_000, 0..6),
    ) {
        let mut mem = DeviceMemory::new(CAPACITY);
        mem.set_free_lists(true);
        for len in &other {
            mem.alloc_tagged(*len, Backing::Materialized, 7).expect("other-tag alloc fits");
        }
        let before = mem.stats().bytes_in_use;
        for len in &sizes {
            mem.alloc_tagged(*len, Backing::Materialized, 3).expect("tag-3 alloc fits");
        }
        mem.free_by_tag(3);
        mem.debug_validate().expect("invariants hold after bulk free");
        prop_assert_eq!(mem.stats().bytes_in_use, before);
        prop_assert_eq!(mem.tag_peak_bytes(3) > 0, true);
    }
}
