/// Scalar types that can live in simulated device memory.
///
/// All values are stored little-endian, matching the byte order of every
/// target the direct-GPU-compilation papers run on (x86-64 hosts, NVIDIA
/// and AMD devices).
pub trait Scalar: Copy + Default + std::fmt::Debug + Send + Sync + 'static {
    /// Size of the scalar in bytes.
    const SIZE: usize;

    /// Serialize into `buf` (`buf.len() == Self::SIZE`).
    fn store_le(self, buf: &mut [u8]);

    /// Deserialize from `buf` (`buf.len() == Self::SIZE`).
    fn load_le(buf: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn store_le(self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            fn load_le(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("scalar width"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar + PartialEq>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.store_le(&mut buf);
        assert_eq!(T::load_le(&buf), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0xA5u8);
        roundtrip(-7i8);
        roundtrip(0xBEEFu16);
        roundtrip(-1234i16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(-123_456i32);
        roundtrip(0xFEED_FACE_CAFE_BEEFu64);
        roundtrip(-9_876_543_210i64);
        roundtrip(3.5f32);
        roundtrip(-std::f64::consts::E);
    }

    #[test]
    fn sizes() {
        assert_eq!(<u8 as Scalar>::SIZE, 1);
        assert_eq!(<f64 as Scalar>::SIZE, 8);
        assert_eq!(<u32 as Scalar>::SIZE, 4);
    }
}
