use crate::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Base of the simulated device heap. A large, distinctive constant so that
/// device addresses are never confused with host addresses or small indices.
const HEAP_BASE: u64 = 0x7000_0000_0000;

/// Alignment guaranteed for every allocation (matches CUDA `malloc`).
const MIN_ALIGN: u64 = 256;

/// The null device pointer.
pub const NULL_DEVICE_PTR: DevicePtr = DevicePtr(0);

/// An address in the simulated device's global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Pointer arithmetic in bytes.
    pub fn byte_add(self, off: u64) -> DevicePtr {
        DevicePtr(self.0 + off)
    }

    /// Pointer arithmetic in elements of a scalar type.
    pub fn elem_add<T: Scalar>(self, idx: u64) -> DevicePtr {
        DevicePtr(self.0 + idx * T::SIZE as u64)
    }

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// Whether an allocation is backed by host memory or accounting-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backing {
    /// Loads and stores work; contents are stored on the host.
    Materialized,
    /// Occupies address space and counts toward capacity, but cannot be
    /// accessed. Used to model paper-scale footprints cheaply.
    Reserved,
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Not enough free device memory for the request.
    OutOfMemory { requested: u64, free: u64 },
    /// Zero-byte allocation.
    ZeroSize,
    /// The pointer passed to `free` does not start a live region.
    InvalidFree { addr: u64 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => write!(
                f,
                "device out of memory: requested {requested} B with {free} B free"
            ),
            AllocError::ZeroSize => write!(f, "zero-size device allocation"),
            AllocError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not a live allocation")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Errors raised by loads/stores through simulated memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Address not inside any live region.
    Unmapped { addr: u64 },
    /// Access overruns the end of its region.
    OutOfBounds {
        addr: u64,
        size: u64,
        region_end: u64,
    },
    /// Access targets a reserved (non-materialized) region.
    Reserved { addr: u64 },
    /// Null-pointer access.
    Null,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Unmapped { addr } => write!(f, "access to unmapped address {addr:#x}"),
            AccessError::OutOfBounds {
                addr,
                size,
                region_end,
            } => write!(
                f,
                "access of {size} B at {addr:#x} overruns region end {region_end:#x}"
            ),
            AccessError::Reserved { addr } => write!(
                f,
                "access to reserved (accounting-only) allocation at {addr:#x}"
            ),
            AccessError::Null => write!(f, "null device pointer dereference"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Metadata describing one live region, as reported to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionInfo {
    pub id: RegionId,
    pub start: u64,
    pub len: u64,
    pub backing: Backing,
    /// Caller-chosen tag; the ensemble loader uses the instance id so the
    /// interference model can count distinct active heaps.
    pub tag: u32,
}

/// Allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    pub bytes_in_use: u64,
    pub peak_bytes_in_use: u64,
    pub live_allocations: u64,
    pub total_allocations: u64,
    pub total_frees: u64,
    pub failed_allocations: u64,
}

struct Region {
    info: RegionInfo,
    data: Option<Vec<u8>>,
}

/// The simulated device's global memory: address space, heap allocator and
/// backing store.
///
/// The allocator is first-fit over an address-ordered free list with
/// coalescing on free — deliberately simple, deterministic, and sufficient
/// to reproduce fragmentation-free ensemble behaviour.
pub struct DeviceMemory {
    capacity: u64,
    free_list: Vec<(u64, u64)>, // (start, len), address-ordered, non-adjacent
    regions: BTreeMap<u64, Region>, // keyed by start address
    next_region: u32,
    stats: HeapStats,
    generation: u64,
    /// Live bytes per region tag (instance heap sizes under ensembles).
    tag_bytes: BTreeMap<u32, u64>,
    /// High-water mark of `tag_bytes` since creation (or the last
    /// [`DeviceMemory::reset_tag_peaks`]) — the per-instance heap peak the
    /// observability layer reports.
    tag_peaks: BTreeMap<u32, u64>,
}

impl DeviceMemory {
    /// Create a device memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            free_list: vec![(HEAP_BASE, capacity)],
            regions: BTreeMap::new(),
            next_region: 1,
            stats: HeapStats::default(),
            generation: 0,
            tag_bytes: BTreeMap::new(),
            tag_peaks: BTreeMap::new(),
        }
    }

    /// Monotone counter bumped on every allocation or free; lets callers
    /// cache region layouts and detect staleness cheaply.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// High-water mark of live bytes carrying `tag` since creation or the
    /// last [`DeviceMemory::reset_tag_peaks`]. Under ensemble execution the
    /// tag is the instance id, so this is the instance's heap peak.
    pub fn tag_peak_bytes(&self, tag: u32) -> u64 {
        self.tag_peaks.get(&tag).copied().unwrap_or(0)
    }

    /// All per-tag high-water marks, tag-ordered.
    pub fn tag_peaks(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.tag_peaks.iter().map(|(&t, &b)| (t, b))
    }

    /// Restart per-tag high-water tracking (e.g. between the sequential
    /// launches of a batched ensemble, which reuse instance tags).
    pub fn reset_tag_peaks(&mut self) {
        self.tag_peaks.clear();
        for (&tag, &bytes) in &self.tag_bytes {
            if bytes > 0 {
                self.tag_peaks.insert(tag, bytes);
            }
        }
    }

    /// Free bytes remaining (sum of free-list holes).
    pub fn free_bytes(&self) -> u64 {
        self.free_list.iter().map(|&(_, l)| l).sum()
    }

    /// Fraction of capacity currently allocated, [0, 1] — the heap
    /// counter the utilization timeline reports.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.stats.bytes_in_use as f64 / self.capacity as f64
    }

    /// Fraction of capacity at the allocation high-water mark, [0, 1].
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.stats.peak_bytes_in_use as f64 / self.capacity as f64
    }

    /// Largest single free-list hole — the biggest allocation that could
    /// succeed right now, the operational headroom gauge the monitor
    /// exports.
    pub fn largest_free_block(&self) -> u64 {
        self.free_list.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }

    /// External fragmentation, [0, 1]: the share of free bytes that is
    /// *not* in the largest hole. 0 when free space is one hole (or the
    /// heap is full) — a first-fit allocator's health indicator.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / free as f64
    }

    /// Allocate `len` bytes with the given backing and tag.
    pub fn alloc_tagged(
        &mut self,
        len: u64,
        backing: Backing,
        tag: u32,
    ) -> Result<DevicePtr, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let alen = len.div_ceil(MIN_ALIGN) * MIN_ALIGN;
        let slot = self.free_list.iter().position(|&(_, l)| l >= alen);
        let Some(i) = slot else {
            self.stats.failed_allocations += 1;
            return Err(AllocError::OutOfMemory {
                requested: len,
                free: self.free_bytes(),
            });
        };
        let (start, hole_len) = self.free_list[i];
        if hole_len == alen {
            self.free_list.remove(i);
        } else {
            self.free_list[i] = (start + alen, hole_len - alen);
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        let data = match backing {
            Backing::Materialized => Some(vec![0u8; len as usize]),
            Backing::Reserved => None,
        };
        self.regions.insert(
            start,
            Region {
                info: RegionInfo {
                    id,
                    start,
                    len: alen,
                    backing,
                    tag,
                },
                data,
            },
        );
        self.stats.bytes_in_use += alen;
        self.stats.peak_bytes_in_use = self.stats.peak_bytes_in_use.max(self.stats.bytes_in_use);
        self.stats.live_allocations += 1;
        self.stats.total_allocations += 1;
        let tag_live = self.tag_bytes.entry(tag).or_insert(0);
        *tag_live += alen;
        let peak = self.tag_peaks.entry(tag).or_insert(0);
        *peak = (*peak).max(*tag_live);
        self.generation += 1;
        Ok(DevicePtr(start))
    }

    /// Allocate materialized memory with tag 0.
    pub fn alloc(&mut self, len: u64) -> Result<DevicePtr, AllocError> {
        self.alloc_tagged(len, Backing::Materialized, 0)
    }

    /// Allocate and initialize from a host slice.
    pub fn alloc_from_slice<T: Scalar>(
        &mut self,
        src: &[T],
        tag: u32,
    ) -> Result<DevicePtr, AllocError> {
        let ptr = self.alloc_tagged(
            (src.len() * T::SIZE).max(1) as u64,
            Backing::Materialized,
            tag,
        )?;
        self.write_slice(ptr, src)
            .expect("fresh allocation is materialized");
        Ok(ptr)
    }

    /// Free the allocation starting at `ptr`.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), AllocError> {
        let Some(region) = self.regions.remove(&ptr.0) else {
            return Err(AllocError::InvalidFree { addr: ptr.0 });
        };
        let (start, len) = (region.info.start, region.info.len);
        self.stats.bytes_in_use -= len;
        self.stats.live_allocations -= 1;
        self.stats.total_frees += 1;
        if let Some(tag_live) = self.tag_bytes.get_mut(&region.info.tag) {
            *tag_live = tag_live.saturating_sub(len);
        }
        self.generation += 1;
        // Insert hole keeping the list address-ordered, then coalesce.
        let pos = self
            .free_list
            .binary_search_by_key(&start, |&(s, _)| s)
            .unwrap_err();
        self.free_list.insert(pos, (start, len));
        self.coalesce_free_list(pos);
        Ok(())
    }

    fn coalesce_free_list(&mut self, pos: usize) {
        // Merge with successor first so indices stay valid.
        if pos + 1 < self.free_list.len() {
            let (s, l) = self.free_list[pos];
            let (ns, nl) = self.free_list[pos + 1];
            if s + l == ns {
                self.free_list[pos] = (s, l + nl);
                self.free_list.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free_list[pos - 1];
            let (s, l) = self.free_list[pos];
            if ps + pl == s {
                self.free_list[pos - 1] = (ps, pl + l);
                self.free_list.remove(pos);
            }
        }
    }

    /// Free every region whose tag equals `tag` (instance teardown).
    pub fn free_by_tag(&mut self, tag: u32) -> usize {
        let starts: Vec<u64> = self
            .regions
            .values()
            .filter(|r| r.info.tag == tag)
            .map(|r| r.info.start)
            .collect();
        let n = starts.len();
        for s in starts {
            self.free(DevicePtr(s)).expect("region listed as live");
        }
        n
    }

    /// Look up the region containing `addr`.
    pub fn region_of(&self, addr: u64) -> Option<RegionInfo> {
        let (_, region) = self.regions.range(..=addr).next_back()?;
        let info = region.info;
        (addr < info.start + info.len).then_some(info)
    }

    /// All live regions, address-ordered.
    pub fn live_regions(&self) -> Vec<RegionInfo> {
        self.regions.values().map(|r| r.info).collect()
    }

    fn resolve(&self, addr: u64, size: u64) -> Result<(u64, u64), AccessError> {
        if addr == 0 {
            return Err(AccessError::Null);
        }
        let (start, region) = self
            .regions
            .range(..=addr)
            .next_back()
            .ok_or(AccessError::Unmapped { addr })?;
        let info = &region.info;
        if addr >= info.start + info.len {
            return Err(AccessError::Unmapped { addr });
        }
        if addr + size > info.start + info.len {
            return Err(AccessError::OutOfBounds {
                addr,
                size,
                region_end: info.start + info.len,
            });
        }
        if region.data.is_none() {
            return Err(AccessError::Reserved { addr });
        }
        Ok((*start, addr - start))
    }

    /// Load a scalar from device memory.
    pub fn load<T: Scalar>(&self, ptr: DevicePtr) -> Result<T, AccessError> {
        let (start, off) = self.resolve(ptr.0, T::SIZE as u64)?;
        let data = self.regions[&start]
            .data
            .as_ref()
            .expect("resolved materialized");
        let off = off as usize;
        // Materialized data vec is `len` bytes but region len is align-rounded;
        // an access past data but inside the rounding pad is out of bounds.
        if off + T::SIZE > data.len() {
            return Err(AccessError::OutOfBounds {
                addr: ptr.0,
                size: T::SIZE as u64,
                region_end: start + data.len() as u64,
            });
        }
        Ok(T::load_le(&data[off..off + T::SIZE]))
    }

    /// Store a scalar to device memory.
    pub fn store<T: Scalar>(&mut self, ptr: DevicePtr, v: T) -> Result<(), AccessError> {
        let (start, off) = self.resolve(ptr.0, T::SIZE as u64)?;
        let data = self
            .regions
            .get_mut(&start)
            .expect("resolved region exists")
            .data
            .as_mut()
            .expect("resolved materialized");
        let off = off as usize;
        if off + T::SIZE > data.len() {
            return Err(AccessError::OutOfBounds {
                addr: ptr.0,
                size: T::SIZE as u64,
                region_end: start + data.len() as u64,
            });
        }
        v.store_le(&mut data[off..off + T::SIZE]);
        Ok(())
    }

    /// Copy a typed slice from host to device.
    pub fn write_slice<T: Scalar>(&mut self, ptr: DevicePtr, src: &[T]) -> Result<(), AccessError> {
        for (i, v) in src.iter().enumerate() {
            self.store(ptr.elem_add::<T>(i as u64), *v)?;
        }
        Ok(())
    }

    /// Copy a typed slice from device to host.
    pub fn read_slice<T: Scalar>(&self, ptr: DevicePtr, len: usize) -> Result<Vec<T>, AccessError> {
        (0..len)
            .map(|i| self.load(ptr.elem_add::<T>(i as u64)))
            .collect()
    }

    /// Copy raw bytes from host to device.
    pub fn write_bytes(&mut self, ptr: DevicePtr, src: &[u8]) -> Result<(), AccessError> {
        self.write_slice(ptr, src)
    }

    /// Copy raw bytes from device to host.
    pub fn read_bytes(&self, ptr: DevicePtr, len: usize) -> Result<Vec<u8>, AccessError> {
        self.read_slice(ptr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1000).unwrap();
        let b = mem.alloc(2000).unwrap();
        assert_ne!(a, b);
        assert_eq!(mem.stats().live_allocations, 2);
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.stats().live_allocations, 0);
        assert_eq!(mem.free_bytes(), 1 << 20);
        // After freeing everything the free list must be one hole again.
        assert_eq!(mem.free_list.len(), 1);
    }

    #[test]
    fn alignment_is_256() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1).unwrap();
        let b = mem.alloc(1).unwrap();
        assert_eq!(a.0 % MIN_ALIGN, 0);
        assert_eq!(b.0 % MIN_ALIGN, 0);
        assert_eq!(b.0 - a.0, MIN_ALIGN);
    }

    #[test]
    fn oom_reports_and_counts() {
        let mut mem = DeviceMemory::new(4096);
        let err = mem.alloc(8192).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        assert_eq!(mem.stats().failed_allocations, 1);
    }

    #[test]
    fn reserved_counts_but_rejects_access() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc_tagged(4096, Backing::Reserved, 7).unwrap();
        assert_eq!(mem.stats().bytes_in_use, 4096);
        assert_eq!(
            mem.load::<u32>(p).unwrap_err(),
            AccessError::Reserved { addr: p.0 }
        );
    }

    #[test]
    fn load_store_typed() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(64).unwrap();
        mem.store::<f64>(p, 2.5).unwrap();
        mem.store::<u32>(p.byte_add(8), 77).unwrap();
        assert_eq!(mem.load::<f64>(p).unwrap(), 2.5);
        assert_eq!(mem.load::<u32>(p.byte_add(8)).unwrap(), 77);
    }

    #[test]
    fn slice_roundtrip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let src: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let p = mem.alloc_from_slice(&src, 3).unwrap();
        assert_eq!(mem.read_slice::<f64>(p, 100).unwrap(), src);
        assert_eq!(mem.region_of(p.0).unwrap().tag, 3);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(16).unwrap();
        // Within the 256-byte alignment pad but past the 16 real bytes.
        assert!(matches!(
            mem.load::<u64>(p.byte_add(12)),
            Err(AccessError::OutOfBounds { .. })
        ));
        // Region-level overrun.
        assert!(mem.load::<u64>(p.byte_add(300)).is_err());
    }

    #[test]
    fn null_and_unmapped_access() {
        let mem = DeviceMemory::new(1 << 20);
        assert_eq!(
            mem.load::<u32>(NULL_DEVICE_PTR).unwrap_err(),
            AccessError::Null
        );
        assert!(matches!(
            mem.load::<u32>(DevicePtr(HEAP_BASE + 5000)),
            Err(AccessError::Unmapped { .. })
        ));
    }

    #[test]
    fn invalid_free_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(16).unwrap();
        assert!(mem.free(DevicePtr(p.0 + 8)).is_err());
        mem.free(p).unwrap();
        assert!(mem.free(p).is_err());
    }

    #[test]
    fn free_by_tag_clears_instance() {
        let mut mem = DeviceMemory::new(1 << 20);
        let _a = mem.alloc_tagged(100, Backing::Materialized, 1).unwrap();
        let _b = mem.alloc_tagged(100, Backing::Materialized, 1).unwrap();
        let c = mem.alloc_tagged(100, Backing::Materialized, 2).unwrap();
        assert_eq!(mem.free_by_tag(1), 2);
        assert_eq!(mem.stats().live_allocations, 1);
        assert_eq!(mem.region_of(c.0).unwrap().tag, 2);
    }

    #[test]
    fn free_coalesces_middle_hole() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(256).unwrap();
        let b = mem.alloc(256).unwrap();
        let c = mem.alloc(256).unwrap();
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        mem.free(b).unwrap(); // merges with both neighbours
        assert_eq!(mem.free_list.len(), 1);
        assert_eq!(mem.free_bytes(), 1 << 20);
    }

    #[test]
    fn peak_tracking() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1024).unwrap();
        let b = mem.alloc(1024).unwrap();
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.stats().peak_bytes_in_use, 2048);
        assert_eq!(mem.stats().bytes_in_use, 0);
    }

    #[test]
    fn per_tag_peaks_track_instance_heaps() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc_tagged(1024, Backing::Materialized, 1).unwrap();
        let b = mem.alloc_tagged(2048, Backing::Materialized, 1).unwrap();
        let c = mem.alloc_tagged(512, Backing::Materialized, 2).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        assert_eq!(mem.tag_peak_bytes(2), 512);
        assert_eq!(mem.tag_peak_bytes(9), 0);
        // Frees do not lower the peak.
        mem.free(b).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        // Re-allocating after a free only raises the peak past the old one.
        let d = mem.alloc_tagged(1024, Backing::Materialized, 1).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        assert_eq!(
            mem.tag_peaks().collect::<Vec<_>>(),
            vec![(1, 3072), (2, 512)]
        );
        // Reset restarts tracking from the currently live bytes.
        mem.free(d).unwrap();
        mem.reset_tag_peaks();
        assert_eq!(mem.tag_peak_bytes(1), 1024); // only `a` is live
        assert_eq!(mem.tag_peak_bytes(2), 512);
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        mem.reset_tag_peaks();
        assert_eq!(mem.tag_peaks().count(), 0);
    }

    #[test]
    fn utilization_fractions_track_heap() {
        let mut mem = DeviceMemory::new(1 << 20);
        assert_eq!(mem.utilization(), 0.0);
        assert_eq!(mem.peak_utilization(), 0.0);
        let a = mem.alloc(1 << 19).unwrap();
        assert_eq!(mem.utilization(), 0.5);
        mem.free(a).unwrap();
        assert_eq!(mem.utilization(), 0.0);
        // The peak fraction survives the free.
        assert_eq!(mem.peak_utilization(), 0.5);
        // Degenerate zero-capacity device divides to zero, not NaN.
        assert_eq!(DeviceMemory::new(0).utilization(), 0.0);
        assert_eq!(DeviceMemory::new(0).peak_utilization(), 0.0);
    }

    #[test]
    fn fragmentation_tracks_free_list_holes() {
        let mut mem = DeviceMemory::new(1 << 20);
        // Pristine heap: one hole, no fragmentation.
        assert_eq!(mem.largest_free_block(), 1 << 20);
        assert_eq!(mem.fragmentation(), 0.0);
        // Alternate-free three same-size blocks to split the free space.
        let a = mem.alloc(256).unwrap();
        let _b = mem.alloc(256).unwrap();
        let c = mem.alloc(256).unwrap();
        let _d = mem.alloc(256).unwrap();
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        // Free space = two 256 B holes plus the big tail hole; the tail
        // dominates, so fragmentation is small but non-zero.
        let free = mem.free_bytes();
        let largest = mem.largest_free_block();
        assert_eq!(free - largest, 512);
        assert!((mem.fragmentation() - 512.0 / free as f64).abs() < 1e-12);
        // A full heap reports zero fragmentation, not NaN.
        let mut full = DeviceMemory::new(1024);
        let _ = full.alloc(1024).unwrap();
        assert_eq!(full.free_bytes(), 0);
        assert_eq!(full.fragmentation(), 0.0);
    }

    #[test]
    fn ensemble_oom_scenario() {
        // Four 10 GB instances fit a 40 GB device; the fifth fails —
        // the Page-Rank behaviour from the paper's §4.3.
        let mut mem = DeviceMemory::new(40 << 30);
        for tag in 0..4u32 {
            mem.alloc_tagged(10 << 30, Backing::Reserved, tag).unwrap();
        }
        assert!(matches!(
            mem.alloc_tagged(10 << 30, Backing::Reserved, 4),
            Err(AllocError::OutOfMemory { .. })
        ));
    }
}
