use crate::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Base of the simulated device heap. A large, distinctive constant so that
/// device addresses are never confused with host addresses or small indices.
const HEAP_BASE: u64 = 0x7000_0000_0000;

/// Alignment guaranteed for every allocation (matches CUDA `malloc`).
const MIN_ALIGN: u64 = 256;

/// Capacity of one per-team size-class ring: how many freed blocks of a
/// given aligned size a team keeps around for reuse before the oldest one
/// spills back into the global free list. Small on purpose — the rings
/// exist to serve the free-then-realloc churn of iterative kernels, not to
/// hoard memory away from other teams.
const RING_CAP: usize = 8;

/// The null device pointer.
pub const NULL_DEVICE_PTR: DevicePtr = DevicePtr(0);

/// An address in the simulated device's global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Pointer arithmetic in bytes.
    pub fn byte_add(self, off: u64) -> DevicePtr {
        DevicePtr(self.0 + off)
    }

    /// Pointer arithmetic in elements of a scalar type.
    pub fn elem_add<T: Scalar>(self, idx: u64) -> DevicePtr {
        DevicePtr(self.0 + idx * T::SIZE as u64)
    }

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// Whether an allocation is backed by host memory or accounting-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backing {
    /// Loads and stores work; contents are stored on the host.
    Materialized,
    /// Occupies address space and counts toward capacity, but cannot be
    /// accessed. Used to model paper-scale footprints cheaply.
    Reserved,
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// Not enough free device memory for the request.
    OutOfMemory { requested: u64, free: u64 },
    /// Zero-byte allocation.
    ZeroSize,
    /// The pointer passed to `free` does not start a live region.
    InvalidFree { addr: u64 },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => write!(
                f,
                "device out of memory: requested {requested} B with {free} B free"
            ),
            AllocError::ZeroSize => write!(f, "zero-size device allocation"),
            AllocError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not a live allocation")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Errors raised by loads/stores through simulated memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Address not inside any live region.
    Unmapped { addr: u64 },
    /// Access overruns the end of its region.
    OutOfBounds {
        addr: u64,
        size: u64,
        region_end: u64,
    },
    /// Access targets a reserved (non-materialized) region.
    Reserved { addr: u64 },
    /// Null-pointer access.
    Null,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Unmapped { addr } => write!(f, "access to unmapped address {addr:#x}"),
            AccessError::OutOfBounds {
                addr,
                size,
                region_end,
            } => write!(
                f,
                "access of {size} B at {addr:#x} overruns region end {region_end:#x}"
            ),
            AccessError::Reserved { addr } => write!(
                f,
                "access to reserved (accounting-only) allocation at {addr:#x}"
            ),
            AccessError::Null => write!(f, "null device pointer dereference"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Metadata describing one live region, as reported to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionInfo {
    pub id: RegionId,
    pub start: u64,
    pub len: u64,
    pub backing: Backing,
    /// Caller-chosen tag; the ensemble loader uses the instance id so the
    /// interference model can count distinct active heaps.
    pub tag: u32,
}

/// Allocator statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    pub bytes_in_use: u64,
    pub peak_bytes_in_use: u64,
    pub live_allocations: u64,
    pub total_allocations: u64,
    pub total_frees: u64,
    pub failed_allocations: u64,
    /// Allocations served by the global first-fit path while per-team
    /// free lists were enabled (cold allocations and size-class misses).
    pub alloc_fallbacks: u64,
    /// Allocations served from a per-team size-class ring (exact reuse of
    /// a previously freed block).
    pub recycled_allocations: u64,
    /// Times an out-of-memory condition forced every team cache to spill
    /// back into the global free list before retrying.
    pub cache_flushes: u64,
}

struct Region {
    info: RegionInfo,
    data: Option<Vec<u8>>,
}

/// One block parked in a per-team size-class ring, remembering the
/// allocator generation at which it was freed (generational pruning).
#[derive(Debug, Clone, Copy)]
struct CachedBlock {
    start: u64,
    freed_gen: u64,
}

/// The simulated device's global memory: address space, heap allocator and
/// backing store.
///
/// The allocator is two-level:
///
/// 1. **Per-team free lists** (opt-in via [`DeviceMemory::set_free_lists`]):
///    freed blocks park in a bounded ring per (tag, aligned size) and are
///    handed back on exact-size re-allocation by the same team — the
///    free-then-realloc churn of iterative kernels never touches the
///    global list. Rings are generation-stamped so stale blocks can be
///    pruned ([`DeviceMemory::prune_stale`]), and a failed global
///    allocation flushes every ring back (coalescing) before reporting OOM.
/// 2. **Global first-fit** over an address-ordered free list with
///    coalescing on release — deterministic and the only level active by
///    default, which keeps the legacy single-level behaviour bit-identical.
///
/// Free-space accounting is an incremental ledger: a running free-byte
/// counter plus a hole-size multiset replace the historical O(n) free-list
/// scans on the OOM path and in [`DeviceMemory::fragmentation`] /
/// [`DeviceMemory::largest_free_block`].
pub struct DeviceMemory {
    capacity: u64,
    free_list: Vec<(u64, u64)>, // (start, len), address-ordered, non-adjacent
    /// Running sum of free-list hole bytes (the incremental ledger).
    free_list_bytes: u64,
    /// Multiset of free-list hole lengths: len -> count.
    hole_sizes: BTreeMap<u64, u32>,
    regions: BTreeMap<u64, Region>, // keyed by start address
    next_region: u32,
    stats: HeapStats,
    generation: u64,
    /// Live bytes per region tag (instance heap sizes under ensembles).
    tag_bytes: BTreeMap<u32, u64>,
    /// High-water mark of `tag_bytes` since creation (or the last
    /// [`DeviceMemory::reset_tag_peaks`]) — the per-instance heap peak the
    /// observability layer reports.
    tag_peaks: BTreeMap<u32, u64>,
    /// Per-team recycling on/off. Off by default: the global first-fit
    /// path alone is bit-identical to the historical allocator.
    free_lists_enabled: bool,
    /// tag -> aligned size -> ring of parked blocks, oldest first.
    team_caches: BTreeMap<u32, BTreeMap<u64, VecDeque<CachedBlock>>>,
    /// Total bytes parked across all team rings.
    cached_bytes: u64,
}

impl DeviceMemory {
    /// Create a device memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut hole_sizes = BTreeMap::new();
        hole_sizes.insert(capacity, 1);
        Self {
            capacity,
            free_list: vec![(HEAP_BASE, capacity)],
            free_list_bytes: capacity,
            hole_sizes,
            regions: BTreeMap::new(),
            next_region: 1,
            stats: HeapStats::default(),
            generation: 0,
            tag_bytes: BTreeMap::new(),
            tag_peaks: BTreeMap::new(),
            free_lists_enabled: false,
            team_caches: BTreeMap::new(),
            cached_bytes: 0,
        }
    }

    /// Monotone counter bumped on every allocation or free; lets callers
    /// cache region layouts and detect staleness cheaply.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Enable or disable the per-team free lists. Disabling flushes every
    /// parked block back into the global list, restoring the exact state a
    /// single-level allocator would be in.
    pub fn set_free_lists(&mut self, enabled: bool) {
        if !enabled {
            self.flush_caches();
        }
        self.free_lists_enabled = enabled;
    }

    /// Whether per-team free lists are currently enabled.
    pub fn free_lists_enabled(&self) -> bool {
        self.free_lists_enabled
    }

    /// Total bytes currently parked in per-team rings (free for reuse but
    /// not yet returned to the global list).
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// High-water mark of live bytes carrying `tag` since creation or the
    /// last [`DeviceMemory::reset_tag_peaks`]. Under ensemble execution the
    /// tag is the instance id, so this is the instance's heap peak.
    pub fn tag_peak_bytes(&self, tag: u32) -> u64 {
        self.tag_peaks.get(&tag).copied().unwrap_or(0)
    }

    /// All per-tag high-water marks, tag-ordered.
    pub fn tag_peaks(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.tag_peaks.iter().map(|(&t, &b)| (t, b))
    }

    /// Restart per-tag high-water tracking (e.g. between the sequential
    /// launches of a batched ensemble, which reuse instance tags).
    pub fn reset_tag_peaks(&mut self) {
        self.tag_peaks.clear();
        for (&tag, &bytes) in &self.tag_bytes {
            if bytes > 0 {
                self.tag_peaks.insert(tag, bytes);
            }
        }
    }

    /// Free bytes remaining: the global free list's running counter plus
    /// any bytes parked in team rings. O(1) — maintained incrementally at
    /// every free-list mutation, never by scanning.
    pub fn free_bytes(&self) -> u64 {
        self.free_list_bytes + self.cached_bytes
    }

    /// Fraction of capacity currently allocated, [0, 1] — the heap
    /// counter the utilization timeline reports.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.stats.bytes_in_use as f64 / self.capacity as f64
    }

    /// Fraction of capacity at the allocation high-water mark, [0, 1].
    pub fn peak_utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.stats.peak_bytes_in_use as f64 / self.capacity as f64
    }

    /// Largest single free-list hole — the biggest allocation the global
    /// path could satisfy right now without flushing team rings, the
    /// operational headroom gauge the monitor exports. O(log n) via the
    /// hole-size multiset.
    pub fn largest_free_block(&self) -> u64 {
        self.hole_sizes
            .keys()
            .next_back()
            .copied()
            .unwrap_or_default()
    }

    /// External fragmentation, [0, 1]: the share of free bytes that is
    /// *not* in the largest hole. 0 when free space is one hole (or the
    /// heap is full) — a first-fit allocator's health indicator. O(log n):
    /// computed from the incremental ledger, not a free-list scan.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_block() as f64 / free as f64
    }

    fn hole_added(&mut self, len: u64) {
        self.free_list_bytes += len;
        *self.hole_sizes.entry(len).or_insert(0) += 1;
    }

    fn hole_removed(&mut self, len: u64) {
        self.free_list_bytes -= len;
        match self.hole_sizes.get_mut(&len) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.hole_sizes.remove(&len);
            }
            None => debug_assert!(false, "hole of {len} B missing from the size multiset"),
        }
    }

    /// First-fit carve of `alen` bytes out of the global free list.
    fn carve_first_fit(&mut self, alen: u64) -> Option<u64> {
        let i = self.free_list.iter().position(|&(_, l)| l >= alen)?;
        let (start, hole_len) = self.free_list[i];
        self.hole_removed(hole_len);
        if hole_len == alen {
            self.free_list.remove(i);
        } else {
            self.free_list[i] = (start + alen, hole_len - alen);
            self.hole_added(hole_len - alen);
        }
        Some(start)
    }

    /// Insert a block into the global free list, address-ordered, and
    /// coalesce with its neighbours.
    fn release_to_free_list(&mut self, start: u64, len: u64) {
        let pos = self
            .free_list
            .binary_search_by_key(&start, |&(s, _)| s)
            .unwrap_err();
        self.free_list.insert(pos, (start, len));
        self.hole_added(len);
        self.coalesce_free_list(pos);
    }

    fn coalesce_free_list(&mut self, pos: usize) {
        // Merge with successor first so indices stay valid.
        if pos + 1 < self.free_list.len() {
            let (s, l) = self.free_list[pos];
            let (ns, nl) = self.free_list[pos + 1];
            if s + l == ns {
                self.hole_removed(l);
                self.hole_removed(nl);
                self.hole_added(l + nl);
                self.free_list[pos] = (s, l + nl);
                self.free_list.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free_list[pos - 1];
            let (s, l) = self.free_list[pos];
            if ps + pl == s {
                self.hole_removed(pl);
                self.hole_removed(l);
                self.hole_added(pl + l);
                self.free_list[pos - 1] = (ps, pl + l);
                self.free_list.remove(pos);
            }
        }
    }

    /// Exact-size reuse from `tag`'s ring: most recently freed block first
    /// (LIFO keeps the hottest rows local to the team).
    fn take_cached(&mut self, tag: u32, alen: u64) -> Option<u64> {
        if !self.free_lists_enabled {
            return None;
        }
        let ring = self.team_caches.get_mut(&tag)?.get_mut(&alen)?;
        let block = ring.pop_back()?;
        self.cached_bytes -= alen;
        self.stats.recycled_allocations += 1;
        Some(block.start)
    }

    /// Park a freed block in `tag`'s size-class ring, spilling the oldest
    /// entry to the global list when the ring is full.
    fn cache_block(&mut self, tag: u32, start: u64, len: u64) {
        let ring = self
            .team_caches
            .entry(tag)
            .or_default()
            .entry(len)
            .or_default();
        ring.push_back(CachedBlock {
            start,
            freed_gen: self.generation,
        });
        self.cached_bytes += len;
        if ring.len() > RING_CAP {
            let oldest = ring.pop_front().expect("ring just overflowed");
            self.cached_bytes -= len;
            self.release_to_free_list(oldest.start, len);
        }
    }

    /// Return every parked block of every team to the global free list.
    fn flush_caches(&mut self) {
        let caches = std::mem::take(&mut self.team_caches);
        for (_, classes) in caches {
            for (len, ring) in classes {
                for block in ring {
                    self.cached_bytes -= len;
                    self.release_to_free_list(block.start, len);
                }
            }
        }
        debug_assert_eq!(self.cached_bytes, 0);
    }

    /// Return `tag`'s parked blocks to the global free list (teardown).
    fn flush_tag_cache(&mut self, tag: u32) {
        let Some(classes) = self.team_caches.remove(&tag) else {
            return;
        };
        for (len, ring) in classes {
            for block in ring {
                self.cached_bytes -= len;
                self.release_to_free_list(block.start, len);
            }
        }
    }

    /// Generational pruning: release every parked block freed more than
    /// `max_age` allocator generations ago. Returns how many blocks were
    /// returned to the global list.
    pub fn prune_stale(&mut self, max_age: u64) -> usize {
        let mut released = Vec::new();
        for classes in self.team_caches.values_mut() {
            for (&len, ring) in classes.iter_mut() {
                while let Some(block) = ring.front() {
                    if self.generation.saturating_sub(block.freed_gen) <= max_age {
                        break;
                    }
                    let block = ring.pop_front().expect("front exists");
                    released.push((block.start, len));
                }
            }
        }
        for &(start, len) in &released {
            self.cached_bytes -= len;
            self.release_to_free_list(start, len);
        }
        released.len()
    }

    fn oom(&mut self, requested: u64) -> AllocError {
        self.stats.failed_allocations += 1;
        AllocError::OutOfMemory {
            requested,
            free: self.free_bytes(),
        }
    }

    /// Allocate `len` bytes with the given backing and tag.
    pub fn alloc_tagged(
        &mut self,
        len: u64,
        backing: Backing,
        tag: u32,
    ) -> Result<DevicePtr, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroSize);
        }
        let alen = len.div_ceil(MIN_ALIGN) * MIN_ALIGN;
        let start = match self.take_cached(tag, alen) {
            Some(start) => start,
            None => {
                if self.free_lists_enabled {
                    self.stats.alloc_fallbacks += 1;
                }
                match self.carve_first_fit(alen) {
                    Some(start) => start,
                    None if self.free_lists_enabled && self.cached_bytes > 0 => {
                        // Last resort before OOM: spill every team ring back
                        // into the global list — coalescing may reassemble a
                        // hole large enough — and retry once.
                        self.stats.cache_flushes += 1;
                        self.flush_caches();
                        match self.carve_first_fit(alen) {
                            Some(start) => start,
                            None => return Err(self.oom(len)),
                        }
                    }
                    None => return Err(self.oom(len)),
                }
            }
        };
        let id = RegionId(self.next_region);
        self.next_region += 1;
        // The backing covers the full aligned length: the bytes between
        // `len` and `alen` are real, addressable memory (as they are under
        // CUDA `malloc`), and the region accounting already charges them.
        let data = match backing {
            Backing::Materialized => Some(vec![0u8; alen as usize]),
            Backing::Reserved => None,
        };
        self.regions.insert(
            start,
            Region {
                info: RegionInfo {
                    id,
                    start,
                    len: alen,
                    backing,
                    tag,
                },
                data,
            },
        );
        self.stats.bytes_in_use += alen;
        self.stats.peak_bytes_in_use = self.stats.peak_bytes_in_use.max(self.stats.bytes_in_use);
        self.stats.live_allocations += 1;
        self.stats.total_allocations += 1;
        let tag_live = self.tag_bytes.entry(tag).or_insert(0);
        *tag_live += alen;
        let peak = self.tag_peaks.entry(tag).or_insert(0);
        *peak = (*peak).max(*tag_live);
        self.generation += 1;
        Ok(DevicePtr(start))
    }

    /// Allocate materialized memory with tag 0.
    pub fn alloc(&mut self, len: u64) -> Result<DevicePtr, AllocError> {
        self.alloc_tagged(len, Backing::Materialized, 0)
    }

    /// Allocate and initialize from a host slice.
    pub fn alloc_from_slice<T: Scalar>(
        &mut self,
        src: &[T],
        tag: u32,
    ) -> Result<DevicePtr, AllocError> {
        let ptr = self.alloc_tagged(
            (src.len() * T::SIZE).max(1) as u64,
            Backing::Materialized,
            tag,
        )?;
        self.write_slice(ptr, src)
            .expect("fresh allocation is materialized");
        Ok(ptr)
    }

    /// Free the allocation starting at `ptr`.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), AllocError> {
        let Some(region) = self.regions.remove(&ptr.0) else {
            return Err(AllocError::InvalidFree { addr: ptr.0 });
        };
        let (start, len, tag) = (region.info.start, region.info.len, region.info.tag);
        self.stats.bytes_in_use -= len;
        self.stats.live_allocations -= 1;
        self.stats.total_frees += 1;
        if let Some(tag_live) = self.tag_bytes.get_mut(&tag) {
            *tag_live = tag_live.saturating_sub(len);
        }
        self.generation += 1;
        if self.free_lists_enabled {
            self.cache_block(tag, start, len);
        } else {
            self.release_to_free_list(start, len);
        }
        Ok(())
    }

    /// Free every region whose tag equals `tag` (instance teardown). The
    /// team's parked blocks are flushed back to the global list first —
    /// a torn-down instance keeps nothing cached.
    pub fn free_by_tag(&mut self, tag: u32) -> usize {
        self.flush_tag_cache(tag);
        let starts: Vec<u64> = self
            .regions
            .values()
            .filter(|r| r.info.tag == tag)
            .map(|r| r.info.start)
            .collect();
        let n = starts.len();
        for s in starts {
            self.free(DevicePtr(s)).expect("region listed as live");
        }
        // The frees above may have re-parked the regions; teardown means
        // the team is gone, so flush again.
        self.flush_tag_cache(tag);
        n
    }

    /// Look up the region containing `addr`.
    pub fn region_of(&self, addr: u64) -> Option<RegionInfo> {
        let (_, region) = self.regions.range(..=addr).next_back()?;
        let info = region.info;
        (addr < info.start + info.len).then_some(info)
    }

    /// All live regions, address-ordered.
    pub fn live_regions(&self) -> Vec<RegionInfo> {
        self.regions.values().map(|r| r.info).collect()
    }

    /// Check every allocator invariant, returning a description of the
    /// first violation. Used by the property tests after each heap
    /// operation; O(n) by design (it exists to validate the O(1) ledger).
    pub fn debug_validate(&self) -> Result<(), String> {
        // Free list: address-ordered, disjoint, coalesced, in range.
        for w in self.free_list.windows(2) {
            let (s, l) = w[0];
            let (ns, _) = w[1];
            if s + l > ns {
                return Err(format!("free list overlaps: ({s:#x},{l}) then {ns:#x}"));
            }
            if s + l == ns {
                return Err(format!("free list uncoalesced at {ns:#x}"));
            }
        }
        for &(s, l) in &self.free_list {
            if s < HEAP_BASE || s + l > HEAP_BASE + self.capacity {
                return Err(format!("free hole ({s:#x},{l}) outside the heap"));
            }
        }
        // Incremental ledger matches a full scan.
        let scan_bytes: u64 = self.free_list.iter().map(|&(_, l)| l).sum();
        if scan_bytes != self.free_list_bytes {
            return Err(format!(
                "free-byte counter {} != scanned {scan_bytes}",
                self.free_list_bytes
            ));
        }
        let mut scan_holes: BTreeMap<u64, u32> = BTreeMap::new();
        for &(_, l) in &self.free_list {
            *scan_holes.entry(l).or_insert(0) += 1;
        }
        if scan_holes != self.hole_sizes {
            return Err(format!(
                "hole multiset {:?} != scanned {:?}",
                self.hole_sizes, scan_holes
            ));
        }
        let scan_largest = self.free_list.iter().map(|&(_, l)| l).max().unwrap_or(0);
        if scan_largest != self.largest_free_block() {
            return Err(format!(
                "largest-hole counter {} != scanned {scan_largest}",
                self.largest_free_block()
            ));
        }
        // Region accounting: bytes in use and per-tag sums.
        let region_bytes: u64 = self.regions.values().map(|r| r.info.len).sum();
        if region_bytes != self.stats.bytes_in_use {
            return Err(format!(
                "bytes_in_use {} != live region bytes {region_bytes}",
                self.stats.bytes_in_use
            ));
        }
        let mut scan_tags: BTreeMap<u32, u64> = BTreeMap::new();
        for r in self.regions.values() {
            *scan_tags.entry(r.info.tag).or_insert(0) += r.info.len;
        }
        for (&tag, &bytes) in self.tag_bytes.iter() {
            if scan_tags.get(&tag).copied().unwrap_or(0) != bytes {
                return Err(format!("tag {tag} accounts {bytes} B, regions disagree"));
            }
        }
        for (&tag, &bytes) in &scan_tags {
            if self.tag_bytes.get(&tag).copied().unwrap_or(0) != bytes {
                return Err(format!("tag {tag} holds {bytes} B unaccounted"));
            }
        }
        let tag_total: u64 = self.tag_bytes.values().sum();
        if tag_total != self.stats.bytes_in_use {
            return Err(format!(
                "tag accounting sums to {tag_total}, bytes_in_use is {}",
                self.stats.bytes_in_use
            ));
        }
        // Cached bytes match the rings.
        let scan_cached: u64 = self
            .team_caches
            .values()
            .flat_map(|c| c.iter())
            .map(|(&len, ring)| len * ring.len() as u64)
            .sum();
        if scan_cached != self.cached_bytes {
            return Err(format!(
                "cached-byte counter {} != ring contents {scan_cached}",
                self.cached_bytes
            ));
        }
        // Byte conservation over the whole address space.
        if self.stats.bytes_in_use + self.free_list_bytes + self.cached_bytes != self.capacity {
            return Err(format!(
                "conservation broken: {} in use + {} free + {} cached != {} capacity",
                self.stats.bytes_in_use, self.free_list_bytes, self.cached_bytes, self.capacity
            ));
        }
        // The three owners tile the address space exactly: regions, free
        // holes, and parked blocks are disjoint and leave no gaps.
        let mut spans: Vec<(u64, u64)> = self
            .regions
            .values()
            .map(|r| (r.info.start, r.info.len))
            .chain(self.free_list.iter().copied())
            .chain(self.team_caches.values().flat_map(|c| {
                c.iter()
                    .flat_map(|(&len, ring)| ring.iter().map(move |b| (b.start, len)))
            }))
            .collect();
        spans.sort_unstable();
        let mut cursor = HEAP_BASE;
        for (s, l) in spans {
            if s != cursor {
                return Err(format!(
                    "address space not tiled: gap or overlap at {cursor:#x} (next span {s:#x})"
                ));
            }
            cursor = s + l;
        }
        if cursor != HEAP_BASE + self.capacity {
            return Err(format!(
                "address space ends at {cursor:#x}, capacity says {:#x}",
                HEAP_BASE + self.capacity
            ));
        }
        Ok(())
    }

    fn resolve(&self, addr: u64, size: u64) -> Result<(u64, u64), AccessError> {
        if addr == 0 {
            return Err(AccessError::Null);
        }
        let (start, region) = self
            .regions
            .range(..=addr)
            .next_back()
            .ok_or(AccessError::Unmapped { addr })?;
        let info = &region.info;
        if addr >= info.start + info.len {
            return Err(AccessError::Unmapped { addr });
        }
        if addr + size > info.start + info.len {
            return Err(AccessError::OutOfBounds {
                addr,
                size,
                region_end: info.start + info.len,
            });
        }
        if region.data.is_none() {
            return Err(AccessError::Reserved { addr });
        }
        Ok((*start, addr - start))
    }

    /// Load a scalar from device memory.
    pub fn load<T: Scalar>(&self, ptr: DevicePtr) -> Result<T, AccessError> {
        let (start, off) = self.resolve(ptr.0, T::SIZE as u64)?;
        let data = self.regions[&start]
            .data
            .as_ref()
            .expect("resolved materialized");
        let off = off as usize;
        Ok(T::load_le(&data[off..off + T::SIZE]))
    }

    /// Store a scalar to device memory.
    pub fn store<T: Scalar>(&mut self, ptr: DevicePtr, v: T) -> Result<(), AccessError> {
        let (start, off) = self.resolve(ptr.0, T::SIZE as u64)?;
        let data = self
            .regions
            .get_mut(&start)
            .expect("resolved region exists")
            .data
            .as_mut()
            .expect("resolved materialized");
        let off = off as usize;
        v.store_le(&mut data[off..off + T::SIZE]);
        Ok(())
    }

    /// Copy a typed slice from host to device.
    pub fn write_slice<T: Scalar>(&mut self, ptr: DevicePtr, src: &[T]) -> Result<(), AccessError> {
        for (i, v) in src.iter().enumerate() {
            self.store(ptr.elem_add::<T>(i as u64), *v)?;
        }
        Ok(())
    }

    /// Copy a typed slice from device to host.
    pub fn read_slice<T: Scalar>(&self, ptr: DevicePtr, len: usize) -> Result<Vec<T>, AccessError> {
        (0..len)
            .map(|i| self.load(ptr.elem_add::<T>(i as u64)))
            .collect()
    }

    /// Copy raw bytes from host to device.
    pub fn write_bytes(&mut self, ptr: DevicePtr, src: &[u8]) -> Result<(), AccessError> {
        self.write_slice(ptr, src)
    }

    /// Copy raw bytes from device to host.
    pub fn read_bytes(&self, ptr: DevicePtr, len: usize) -> Result<Vec<u8>, AccessError> {
        self.read_slice(ptr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1000).unwrap();
        let b = mem.alloc(2000).unwrap();
        assert_ne!(a, b);
        assert_eq!(mem.stats().live_allocations, 2);
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.stats().live_allocations, 0);
        assert_eq!(mem.free_bytes(), 1 << 20);
        // After freeing everything the free list must be one hole again.
        assert_eq!(mem.free_list.len(), 1);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn alignment_is_256() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1).unwrap();
        let b = mem.alloc(1).unwrap();
        assert_eq!(a.0 % MIN_ALIGN, 0);
        assert_eq!(b.0 % MIN_ALIGN, 0);
        assert_eq!(b.0 - a.0, MIN_ALIGN);
    }

    #[test]
    fn oom_reports_and_counts() {
        let mut mem = DeviceMemory::new(4096);
        let err = mem.alloc(8192).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
        assert_eq!(mem.stats().failed_allocations, 1);
    }

    #[test]
    fn reserved_counts_but_rejects_access() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc_tagged(4096, Backing::Reserved, 7).unwrap();
        assert_eq!(mem.stats().bytes_in_use, 4096);
        assert_eq!(
            mem.load::<u32>(p).unwrap_err(),
            AccessError::Reserved { addr: p.0 }
        );
    }

    #[test]
    fn load_store_typed() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(64).unwrap();
        mem.store::<f64>(p, 2.5).unwrap();
        mem.store::<u32>(p.byte_add(8), 77).unwrap();
        assert_eq!(mem.load::<f64>(p).unwrap(), 2.5);
        assert_eq!(mem.load::<u32>(p.byte_add(8)).unwrap(), 77);
    }

    #[test]
    fn slice_roundtrip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let src: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let p = mem.alloc_from_slice(&src, 3).unwrap();
        assert_eq!(mem.read_slice::<f64>(p, 100).unwrap(), src);
        assert_eq!(mem.region_of(p.0).unwrap().tag, 3);
    }

    /// Regression test for the unbacked aligned tail: a 16-byte request is
    /// rounded to a 256-byte region, and every byte of that region —
    /// including the last aligned word — must be readable and writable.
    /// On the old heap the backing vec was only 16 bytes long, so the
    /// store at offset 248 failed with `OutOfBounds`.
    #[test]
    fn aligned_tail_is_backed() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(16).unwrap();
        let region = mem.region_of(p.0).unwrap();
        assert_eq!(region.len, 256, "16 B request rounds to one align unit");
        // The last aligned 8 bytes of the region.
        let tail = p.byte_add(region.len - 8);
        mem.store::<u64>(tail, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(mem.load::<u64>(tail).unwrap(), 0xdead_beef_cafe_f00d);
        // A straddling read inside the region also works now.
        assert_eq!(mem.load::<u64>(p.byte_add(12)).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(16).unwrap();
        // Region-level overrun: past the aligned 256-byte length.
        assert!(matches!(
            mem.load::<u64>(p.byte_add(252)),
            Err(AccessError::OutOfBounds { .. })
        ));
        // Far past the region: unmapped.
        assert!(mem.load::<u64>(p.byte_add(300)).is_err());
    }

    #[test]
    fn null_and_unmapped_access() {
        let mem = DeviceMemory::new(1 << 20);
        assert_eq!(
            mem.load::<u32>(NULL_DEVICE_PTR).unwrap_err(),
            AccessError::Null
        );
        assert!(matches!(
            mem.load::<u32>(DevicePtr(HEAP_BASE + 5000)),
            Err(AccessError::Unmapped { .. })
        ));
    }

    #[test]
    fn invalid_free_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let p = mem.alloc(16).unwrap();
        assert!(mem.free(DevicePtr(p.0 + 8)).is_err());
        mem.free(p).unwrap();
        assert!(mem.free(p).is_err());
    }

    #[test]
    fn free_by_tag_clears_instance() {
        let mut mem = DeviceMemory::new(1 << 20);
        let _a = mem.alloc_tagged(100, Backing::Materialized, 1).unwrap();
        let _b = mem.alloc_tagged(100, Backing::Materialized, 1).unwrap();
        let c = mem.alloc_tagged(100, Backing::Materialized, 2).unwrap();
        assert_eq!(mem.free_by_tag(1), 2);
        assert_eq!(mem.stats().live_allocations, 1);
        assert_eq!(mem.region_of(c.0).unwrap().tag, 2);
    }

    #[test]
    fn free_coalesces_middle_hole() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(256).unwrap();
        let b = mem.alloc(256).unwrap();
        let c = mem.alloc(256).unwrap();
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        mem.free(b).unwrap(); // merges with both neighbours
        assert_eq!(mem.free_list.len(), 1);
        assert_eq!(mem.free_bytes(), 1 << 20);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn peak_tracking() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc(1024).unwrap();
        let b = mem.alloc(1024).unwrap();
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        assert_eq!(mem.stats().peak_bytes_in_use, 2048);
        assert_eq!(mem.stats().bytes_in_use, 0);
    }

    #[test]
    fn per_tag_peaks_track_instance_heaps() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc_tagged(1024, Backing::Materialized, 1).unwrap();
        let b = mem.alloc_tagged(2048, Backing::Materialized, 1).unwrap();
        let c = mem.alloc_tagged(512, Backing::Materialized, 2).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        assert_eq!(mem.tag_peak_bytes(2), 512);
        assert_eq!(mem.tag_peak_bytes(9), 0);
        // Frees do not lower the peak.
        mem.free(b).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        // Re-allocating after a free only raises the peak past the old one.
        let d = mem.alloc_tagged(1024, Backing::Materialized, 1).unwrap();
        assert_eq!(mem.tag_peak_bytes(1), 3072);
        assert_eq!(
            mem.tag_peaks().collect::<Vec<_>>(),
            vec![(1, 3072), (2, 512)]
        );
        // Reset restarts tracking from the currently live bytes.
        mem.free(d).unwrap();
        mem.reset_tag_peaks();
        assert_eq!(mem.tag_peak_bytes(1), 1024); // only `a` is live
        assert_eq!(mem.tag_peak_bytes(2), 512);
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        mem.reset_tag_peaks();
        assert_eq!(mem.tag_peaks().count(), 0);
    }

    #[test]
    fn utilization_fractions_track_heap() {
        let mut mem = DeviceMemory::new(1 << 20);
        assert_eq!(mem.utilization(), 0.0);
        assert_eq!(mem.peak_utilization(), 0.0);
        let a = mem.alloc(1 << 19).unwrap();
        assert_eq!(mem.utilization(), 0.5);
        mem.free(a).unwrap();
        assert_eq!(mem.utilization(), 0.0);
        // The peak fraction survives the free.
        assert_eq!(mem.peak_utilization(), 0.5);
        // Degenerate zero-capacity device divides to zero, not NaN.
        assert_eq!(DeviceMemory::new(0).utilization(), 0.0);
        assert_eq!(DeviceMemory::new(0).peak_utilization(), 0.0);
    }

    #[test]
    fn fragmentation_tracks_free_list_holes() {
        let mut mem = DeviceMemory::new(1 << 20);
        // Pristine heap: one hole, no fragmentation.
        assert_eq!(mem.largest_free_block(), 1 << 20);
        assert_eq!(mem.fragmentation(), 0.0);
        // Alternate-free three same-size blocks to split the free space.
        let a = mem.alloc(256).unwrap();
        let _b = mem.alloc(256).unwrap();
        let c = mem.alloc(256).unwrap();
        let _d = mem.alloc(256).unwrap();
        mem.free(a).unwrap();
        mem.free(c).unwrap();
        // Free space = two 256 B holes plus the big tail hole; the tail
        // dominates, so fragmentation is small but non-zero.
        let free = mem.free_bytes();
        let largest = mem.largest_free_block();
        assert_eq!(free - largest, 512);
        assert!((mem.fragmentation() - 512.0 / free as f64).abs() < 1e-12);
        // A full heap reports zero fragmentation, not NaN.
        let mut full = DeviceMemory::new(1024);
        let _ = full.alloc(1024).unwrap();
        assert_eq!(full.free_bytes(), 0);
        assert_eq!(full.fragmentation(), 0.0);
    }

    /// The incremental ledger must agree with a full scan after any
    /// sequence of operations — the counters replace the scans on the
    /// OOM path and the timeline sampler.
    #[test]
    fn incremental_counters_match_full_scans() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut ptrs = Vec::new();
        for i in 1..40u64 {
            ptrs.push(mem.alloc(i * 100).unwrap());
        }
        // Free every third block, then every other remaining block.
        for (i, p) in ptrs.iter().enumerate() {
            if i % 3 == 0 {
                mem.free(*p).unwrap();
            }
        }
        let scan_free: u64 = mem.free_list.iter().map(|&(_, l)| l).sum();
        let scan_largest = mem.free_list.iter().map(|&(_, l)| l).max().unwrap_or(0);
        assert_eq!(mem.free_bytes(), scan_free);
        assert_eq!(mem.largest_free_block(), scan_largest);
        mem.debug_validate().unwrap();
        // The OOM report uses the counter, so it must be scan-accurate.
        let err = mem.alloc(1 << 21).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                requested: 1 << 21,
                free: scan_free
            }
        );
    }

    #[test]
    fn team_free_list_recycles_exact_size_classes() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let a = mem.alloc_tagged(1000, Backing::Materialized, 3).unwrap();
        mem.free(a).unwrap();
        // The block is parked, not returned to the global list.
        assert_eq!(mem.cached_bytes(), 1024);
        // Same team, same size class: exact reuse, same address.
        let b = mem.alloc_tagged(900, Backing::Materialized, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(mem.stats().recycled_allocations, 1);
        assert_eq!(mem.cached_bytes(), 0);
        // A different team never sees another team's parked blocks.
        mem.free(b).unwrap();
        let c = mem.alloc_tagged(900, Backing::Materialized, 4).unwrap();
        assert_ne!(b, c);
        assert_eq!(mem.stats().recycled_allocations, 1);
        assert!(mem.stats().alloc_fallbacks >= 1);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn recycled_backing_is_zeroed() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let a = mem.alloc_tagged(64, Backing::Materialized, 1).unwrap();
        mem.store::<u64>(a, 0x1122_3344).unwrap();
        mem.free(a).unwrap();
        let b = mem.alloc_tagged(64, Backing::Materialized, 1).unwrap();
        assert_eq!(a, b, "exact-size reuse");
        assert_eq!(mem.load::<u64>(b).unwrap(), 0, "fresh allocation is zero");
    }

    /// OOM with parked blocks flushes every ring and retries: the flush
    /// coalesces the address space back together, so a request larger
    /// than any single parked block still succeeds.
    #[test]
    fn oom_flushes_team_caches_and_retries() {
        let mut mem = DeviceMemory::new(4096);
        mem.set_free_lists(true);
        let mut ptrs = Vec::new();
        for _ in 0..16 {
            ptrs.push(mem.alloc_tagged(256, Backing::Materialized, 1).unwrap());
        }
        for p in ptrs {
            mem.free(p).unwrap();
        }
        assert!(mem.cached_bytes() > 0);
        // 4096 contiguous bytes exist only after the rings flush.
        let big = mem.alloc_tagged(4096, Backing::Materialized, 2).unwrap();
        assert_eq!(mem.stats().cache_flushes, 1);
        assert_eq!(mem.cached_bytes(), 0);
        mem.free(big).unwrap();
        mem.debug_validate().unwrap();
    }

    #[test]
    fn ring_overflow_spills_oldest_to_global_list() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let ptrs: Vec<_> = (0..RING_CAP as u64 + 3)
            .map(|_| mem.alloc_tagged(256, Backing::Materialized, 1).unwrap())
            .collect();
        for p in &ptrs {
            mem.free(*p).unwrap();
        }
        // Only RING_CAP blocks stay parked; the overflow coalesced back.
        assert_eq!(mem.cached_bytes(), RING_CAP as u64 * 256);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn free_by_tag_flushes_parked_blocks() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let a = mem.alloc_tagged(512, Backing::Materialized, 5).unwrap();
        let b = mem.alloc_tagged(512, Backing::Materialized, 5).unwrap();
        mem.free(a).unwrap();
        assert!(mem.cached_bytes() > 0);
        let _ = b;
        assert_eq!(mem.free_by_tag(5), 1); // only `b` was still live
        assert_eq!(mem.cached_bytes(), 0, "teardown keeps nothing parked");
        assert_eq!(mem.free_bytes(), 1 << 20);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn prune_stale_releases_old_blocks() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let a = mem.alloc_tagged(256, Backing::Materialized, 1).unwrap();
        mem.free(a).unwrap();
        // Age the heap: other-team churn advances the generation.
        for _ in 0..10 {
            let p = mem.alloc_tagged(1024, Backing::Materialized, 2).unwrap();
            mem.free(p).unwrap();
        }
        // Young blocks survive a generous age bound...
        assert_eq!(mem.prune_stale(1_000), 0);
        // ...but a strict bound releases the stale tag-1 block (and any
        // tag-2 blocks older than 2 generations).
        let released = mem.prune_stale(2);
        assert!(released >= 1);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn disabling_free_lists_flushes_and_restores_legacy_state() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.set_free_lists(true);
        let a = mem.alloc_tagged(256, Backing::Materialized, 1).unwrap();
        mem.free(a).unwrap();
        assert!(mem.cached_bytes() > 0);
        mem.set_free_lists(false);
        assert_eq!(mem.cached_bytes(), 0);
        assert_eq!(mem.free_bytes(), 1 << 20);
        assert_eq!(mem.free_list.len(), 1, "flush coalesced back to one hole");
        mem.debug_validate().unwrap();
    }

    /// With free lists disabled (the default), the allocator must behave
    /// bit-identically to the historical single-level heap: same
    /// addresses, same stats, no recycling counters moving.
    #[test]
    fn disabled_mode_matches_legacy_layout() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc_tagged(1000, Backing::Materialized, 1).unwrap();
        mem.free(a).unwrap();
        // Legacy first-fit reuses the same lowest address, with zero
        // cache traffic.
        let b = mem.alloc_tagged(1000, Backing::Materialized, 2).unwrap();
        assert_eq!(a, b);
        let s = mem.stats();
        assert_eq!(s.recycled_allocations, 0);
        assert_eq!(s.alloc_fallbacks, 0);
        assert_eq!(s.cache_flushes, 0);
        assert_eq!(mem.cached_bytes(), 0);
        mem.debug_validate().unwrap();
    }

    #[test]
    fn ensemble_oom_scenario() {
        // Four 10 GB instances fit a 40 GB device; the fifth fails —
        // the Page-Rank behaviour from the paper's §4.3.
        let mut mem = DeviceMemory::new(40 << 30);
        for tag in 0..4u32 {
            mem.alloc_tagged(10 << 30, Backing::Reserved, tag).unwrap();
        }
        assert!(matches!(
            mem.alloc_tagged(10 << 30, Backing::Reserved, 4),
            Err(AllocError::OutOfMemory { .. })
        ));
    }
}
