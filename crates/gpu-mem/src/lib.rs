//! Simulated GPU device memory.
//!
//! Provides the pieces of the memory system the rest of the stack builds on:
//!
//! * [`DeviceMemory`] — a device-global address space with a first-fit heap
//!   allocator. Allocations are either *materialized* (backed by host memory
//!   so simulated kernels can actually load and store through them) or
//!   *reserved* (accounting-only, used to model paper-scale footprints for
//!   out-of-memory behaviour without materializing tens of gigabytes).
//! * [`coalesce`] — the per-warp memory coalescing analyzer that turns the
//!   32 lane addresses of one warp-level access into 32-byte DRAM sector
//!   transactions, exactly the quantity the timing model charges for.
//! * [`TransferEngine`] — host↔device transfer cost model (PCIe-class).
//!
//! Every allocation carries a *region tag*; the ensemble loader tags each
//! instance's allocations with the instance id, which is what lets the DRAM
//! interference model (see `gpu-arch::MemoryModelParams`) observe how many
//! disjoint heaps are being streamed concurrently.

mod coalesce;
mod heap;
mod scalar;
mod transfer;

pub use coalesce::{coalesce, coalesce_strided, CoalesceResult, SECTOR_BYTES};
pub use heap::{
    AccessError, AllocError, Backing, DeviceMemory, DevicePtr, HeapStats, RegionId, RegionInfo,
    NULL_DEVICE_PTR,
};
pub use scalar::Scalar;
pub use transfer::{TransferDirection, TransferEngine, TransferRecord};
