use serde::{Deserialize, Serialize};

/// Direction of a host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferDirection {
    HostToDevice,
    DeviceToHost,
}

/// One logged transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    pub direction: TransferDirection,
    pub bytes: u64,
    pub seconds: f64,
}

/// Cost model for host↔device copies over a PCIe-class interconnect.
///
/// Each transfer pays a fixed submission latency plus bytes/bandwidth.
/// The loaders use this to account for argv mapping (`map(to:)`) and the
/// `map(from: Ret[:NI])` result copy in the paper's Figure 4 region.
#[derive(Debug, Clone)]
pub struct TransferEngine {
    bytes_per_sec: f64,
    latency_sec: f64,
    log: Vec<TransferRecord>,
}

impl TransferEngine {
    /// `bandwidth_gbps` in GB/s; `latency_us` fixed per-transfer cost.
    pub fn new(bandwidth_gbps: f64, latency_us: f64) -> Self {
        Self {
            bytes_per_sec: bandwidth_gbps * 1e9,
            latency_sec: latency_us * 1e-6,
            log: Vec::new(),
        }
    }

    /// Time for one transfer of `bytes`, in seconds.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_sec + bytes as f64 / self.bytes_per_sec
    }

    /// Record a transfer and return its simulated duration.
    pub fn record(&mut self, direction: TransferDirection, bytes: u64) -> f64 {
        let seconds = self.transfer_time(bytes);
        self.log.push(TransferRecord {
            direction,
            bytes,
            seconds,
        });
        seconds
    }

    /// Total simulated seconds spent in transfers so far.
    pub fn total_seconds(&self) -> f64 {
        self.log.iter().map(|r| r.seconds).sum()
    }

    /// Total bytes moved in `direction`.
    pub fn total_bytes(&self, direction: TransferDirection) -> u64 {
        self.log
            .iter()
            .filter(|r| r.direction == direction)
            .map(|r| r.bytes)
            .sum()
    }

    pub fn log(&self) -> &[TransferRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let e = TransferEngine::new(25.0, 10.0);
        let t_small = e.transfer_time(64);
        let t_zeroish = e.transfer_time(0);
        assert!((t_small - t_zeroish) < 1e-6);
        assert!(t_small >= 10e-6);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let e = TransferEngine::new(25.0, 10.0);
        // 25 GB at 25 GB/s ≈ 1 s.
        let t = e.transfer_time(25_000_000_000);
        assert!((t - 1.0).abs() < 0.01);
    }

    #[test]
    fn record_accumulates() {
        let mut e = TransferEngine::new(25.0, 5.0);
        e.record(TransferDirection::HostToDevice, 1 << 20);
        e.record(TransferDirection::DeviceToHost, 1 << 10);
        e.record(TransferDirection::HostToDevice, 1 << 20);
        assert_eq!(e.total_bytes(TransferDirection::HostToDevice), 2 << 20);
        assert_eq!(e.total_bytes(TransferDirection::DeviceToHost), 1 << 10);
        assert_eq!(e.log().len(), 3);
        assert!(e.total_seconds() > 0.0);
    }
}
