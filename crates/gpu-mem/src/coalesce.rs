use serde::{Deserialize, Serialize};

/// DRAM sector size: the granularity of a global-memory transaction.
pub const SECTOR_BYTES: u64 = 32;

/// Cache-line size: four sectors.
pub const LINE_BYTES: u64 = 128;

/// Result of coalescing one warp-wide access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalesceResult {
    /// Number of 32-byte sectors touched (the transaction count).
    pub sectors: u32,
    /// Number of distinct 128-byte lines touched.
    pub lines: u32,
    /// Bytes the program actually asked for.
    pub useful_bytes: u64,
    /// Bytes moved from DRAM (`sectors * 32`).
    pub moved_bytes: u64,
}

impl CoalesceResult {
    /// Fraction of moved bytes that were useful (1.0 = perfectly coalesced).
    pub fn efficiency(&self) -> f64 {
        if self.moved_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.moved_bytes as f64
        }
    }

    /// Accumulate another result into this one.
    pub fn merge(&mut self, other: &CoalesceResult) {
        self.sectors += other.sectors;
        self.lines += other.lines;
        self.useful_bytes += other.useful_bytes;
        self.moved_bytes += other.moved_bytes;
    }
}

/// Coalesce one warp access: each active lane supplies the address of an
/// `size`-byte element; the hardware merges them into 32-byte sector
/// transactions.
///
/// `addrs` holds one entry per lane; `None` marks an inactive lane
/// (predicated off or beyond the loop bound). An access that straddles a
/// sector boundary touches both sectors, exactly as on real hardware.
pub fn coalesce(addrs: &[Option<u64>], size: u32) -> CoalesceResult {
    let mut sectors: Vec<u64> = Vec::with_capacity(addrs.len() * 2);
    let mut lines: Vec<u64> = Vec::with_capacity(addrs.len());
    let mut useful = 0u64;
    for addr in addrs.iter().flatten() {
        useful += size as u64;
        let first = addr / SECTOR_BYTES;
        let last = (addr + size as u64 - 1) / SECTOR_BYTES;
        for s in first..=last {
            sectors.push(s);
        }
        let lfirst = addr / LINE_BYTES;
        let llast = (addr + size as u64 - 1) / LINE_BYTES;
        for l in lfirst..=llast {
            lines.push(l);
        }
    }
    sectors.sort_unstable();
    sectors.dedup();
    lines.sort_unstable();
    lines.dedup();
    CoalesceResult {
        sectors: sectors.len() as u32,
        lines: lines.len() as u32,
        useful_bytes: useful,
        moved_bytes: sectors.len() as u64 * SECTOR_BYTES,
    }
}

/// Coalesce a strided warp access analytically: `lanes` active lanes reading
/// `size`-byte elements starting at `base` with a byte stride of `stride`.
///
/// Fast path used by bulk device operations that would otherwise synthesize
/// thousands of identical per-lane address vectors.
pub fn coalesce_strided(base: u64, stride: u64, size: u32, lanes: u32) -> CoalesceResult {
    if lanes == 0 {
        return CoalesceResult::default();
    }
    if lanes <= 64 && stride != size as u64 {
        // Small irregular case: fall back to the exact path.
        let addrs: Vec<Option<u64>> = (0..lanes as u64).map(|l| Some(base + l * stride)).collect();
        return coalesce(&addrs, size);
    }
    let useful = lanes as u64 * size as u64;
    let (sectors, lines) = if stride == size as u64 {
        // Dense: the warp touches one contiguous byte range.
        let lo = base;
        let hi = base + useful;
        let sectors = hi.div_ceil(SECTOR_BYTES) - lo / SECTOR_BYTES;
        let lines = hi.div_ceil(LINE_BYTES) - lo / LINE_BYTES;
        (sectors, lines)
    } else if stride >= SECTOR_BYTES {
        // Fully scattered: one (or two, if straddling) sectors per lane.
        let per_lane = if base % SECTOR_BYTES + size as u64 > SECTOR_BYTES {
            2
        } else {
            1
        };
        (
            lanes as u64 * per_lane,
            lanes as u64, // approximately one line per lane
        )
    } else {
        // Partially dense: lanes per sector = sector / stride.
        let lanes_per_sector = (SECTOR_BYTES / stride).max(1);
        let sectors = (lanes as u64).div_ceil(lanes_per_sector);
        let lanes_per_line = (LINE_BYTES / stride).max(1);
        (sectors, (lanes as u64).div_ceil(lanes_per_line))
    };
    CoalesceResult {
        sectors: sectors as u32,
        lines: lines as u32,
        useful_bytes: useful,
        moved_bytes: sectors * SECTOR_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(addrs: impl IntoIterator<Item = u64>) -> Vec<Option<u64>> {
        addrs.into_iter().map(Some).collect()
    }

    #[test]
    fn dense_f32_warp_is_four_sectors() {
        // 32 lanes × 4 B contiguous from an aligned base = 128 B = 4 sectors.
        let a = lanes((0..32).map(|l| 0x1000 + l * 4));
        let r = coalesce(&a, 4);
        assert_eq!(r.sectors, 4);
        assert_eq!(r.lines, 1);
        assert_eq!(r.useful_bytes, 128);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_f64_warp_is_eight_sectors() {
        let a = lanes((0..32).map(|l| 0x2000 + l * 8));
        let r = coalesce(&a, 8);
        assert_eq!(r.sectors, 8);
        assert_eq!(r.lines, 2);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_strided_warp_is_uncoalesced() {
        // Stride of 256 B: every lane its own sector, efficiency 4/32.
        let a = lanes((0..32).map(|l| 0x3000 + l * 256));
        let r = coalesce(&a, 4);
        assert_eq!(r.sectors, 32);
        assert!((r.efficiency() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn broadcast_is_one_sector() {
        let a = lanes(std::iter::repeat_n(0x4000u64, 32));
        let r = coalesce(&a, 8);
        assert_eq!(r.sectors, 1);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let mut a = lanes((0..16).map(|l| 0x1000 + l * 4));
        a.extend(std::iter::repeat_n(None, 16));
        let r = coalesce(&a, 4);
        assert_eq!(r.useful_bytes, 64);
        assert_eq!(r.sectors, 2);
    }

    #[test]
    fn straddling_access_touches_two_sectors() {
        let a = lanes([0x101Eu64]); // 8-byte access at offset 30 of a sector
        let r = coalesce(&a, 8);
        assert_eq!(r.sectors, 2);
    }

    #[test]
    fn empty_warp() {
        let r = coalesce(&[], 8);
        assert_eq!(r, CoalesceResult::default());
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_fast_path_matches_exact_dense() {
        let exact = coalesce(&lanes((0..32).map(|l| 0x7000 + l * 8)), 8);
        let fast = coalesce_strided(0x7000, 8, 8, 32);
        assert_eq!(exact.sectors, fast.sectors);
        assert_eq!(exact.useful_bytes, fast.useful_bytes);
    }

    #[test]
    fn strided_fast_path_matches_exact_scattered() {
        let exact = coalesce(&lanes((0..32).map(|l| 0x9000 + l * 64)), 4);
        let fast = coalesce_strided(0x9000, 64, 4, 32);
        assert_eq!(exact.sectors, fast.sectors);
    }

    #[test]
    fn strided_large_lane_count_dense() {
        let r = coalesce_strided(0, 8, 8, 1024);
        assert_eq!(r.useful_bytes, 8192);
        assert_eq!(r.sectors, 256);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = coalesce(&lanes((0..32).map(|l| l * 4)), 4);
        let b = a;
        a.merge(&b);
        assert_eq!(a.sectors, 2 * b.sectors);
        assert_eq!(a.useful_bytes, 2 * b.useful_bytes);
    }
}
