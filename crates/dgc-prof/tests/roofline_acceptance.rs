//! Acceptance: the roofline classification reproduces the paper's §4
//! narrative on the real benchmark suite.
//!
//! * At thread limit 32 (the paper's high-parallelism ensemble sweet
//!   spot) no benchmark saturates a roof — each block is one warp whose
//!   MLP window caps its bandwidth draw, so everything is latency-bound.
//!   That slack is exactly why Figure 6 scales near-linearly.
//! * AMGmk at thread limit 1024 is the paper's memory-bound outlier:
//!   wide blocks stream enough concurrent sectors to saturate DRAM, so
//!   its ensemble speedup flattens first.

use dgc_apps::app_by_name;
use dgc_core::{run_ensemble, EnsembleOptions};
use dgc_prof::{BoundClass, RooflinePoint};
use gpu_arch::GpuSpec;
use gpu_sim::Gpu;
use host_rpc::HostServices;

fn roofline_of(name: &str, args: &[&str], instances: u32, thread_limit: u32) -> RooflinePoint {
    let spec = GpuSpec::a100_40gb();
    let mut gpu = Gpu::new(spec.clone());
    let app = app_by_name(name).expect("benchmark registered");
    let opts = EnsembleOptions {
        cycle_args: true,
        num_instances: instances,
        thread_limit,
        ..Default::default()
    };
    let lines: Vec<Vec<String>> = vec![args.iter().map(|s| s.to_string()).collect()];
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default())
        .expect("launchable configuration");
    assert!(res.all_succeeded(), "{name}: {:?}", res.instances);
    RooflinePoint::from_report(&spec, &res.report)
}

// The harness's smoke-scaled workload arguments (kept in sync with
// `dgc_bench::smoke_workloads`, which this crate cannot depend on
// without a cycle). AMGMK_FULL is the default (paper-scaled) size: the
// bandwidth-saturation regime needs the full streaming working set.
const XSBENCH: &[&str] = &["-l", "60", "-g", "16"];
const RSBENCH: &[&str] = &["-l", "60", "-w", "8", "-p", "2"];
const AMGMK: &[&str] = &["-n", "6", "-s", "4"];
const AMGMK_FULL: &[&str] = &["-n", "10", "-s", "10"];

#[test]
fn amgmk_is_memory_bound_at_thread_limit_1024() {
    let p = roofline_of("amgmk", AMGMK_FULL, 64, 1024);
    assert_eq!(
        p.bound,
        BoundClass::MemoryBw,
        "amgmk tl=1024: {}",
        p.render()
    );
    // Its intensity sits on the memory side of the ridge and the launch
    // draws most of the effective bandwidth.
    assert!(p.ai < p.ridge_ai, "{}", p.render());
    assert!(p.bw_fraction > 0.7, "{}", p.render());
}

#[test]
fn xsbench_and_rsbench_are_not_memory_bound_at_thread_limit_32() {
    for (name, args) in [("xsbench", XSBENCH), ("rsbench", RSBENCH)] {
        let p = roofline_of(name, args, 16, 32);
        assert_ne!(
            p.bound,
            BoundClass::MemoryBw,
            "{name} tl=32: {}",
            p.render()
        );
    }
}

#[test]
fn thread_limit_32_leaves_bandwidth_headroom_for_ensembles() {
    // The single-warp-per-block regime draws a small fraction of DRAM
    // bandwidth even with 16 instances — the headroom ensembles exploit.
    let p = roofline_of("amgmk", AMGMK, 16, 32);
    assert_eq!(p.bound, BoundClass::Latency, "{}", p.render());
    let wide = roofline_of("amgmk", AMGMK, 16, 1024);
    assert!(
        p.bw_fraction < wide.bw_fraction,
        "narrow {} vs wide {}",
        p.render(),
        wide.render()
    );
}

#[test]
fn rsbench_sits_on_the_compute_side_of_the_ridge() {
    // RSBench recomputes cross sections (high winsts/byte): its roof is
    // the compute one, but at thread limit 32 it cannot approach it —
    // latency-bound, not compute-bound.
    let p = roofline_of("rsbench", RSBENCH, 16, 32);
    assert!(p.ai > p.ridge_ai, "{}", p.render());
    assert_eq!(p.bound, BoundClass::Latency, "{}", p.render());
}
