//! Exit-code contract of the `prof-diff` and `trace-check` binaries —
//! what `ci.sh` relies on.

use std::path::PathBuf;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dgc-prof-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

const BASE: &str = concat!(
    r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":1,"time_s":0.010,"metrics":[]}"#,
    "\n",
    r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":4,"time_s":0.012,"metrics":[]}"#,
    "\n",
);

const SLOWER: &str = concat!(
    r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":1,"time_s":0.010,"metrics":[]}"#,
    "\n",
    r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":4,"time_s":0.020,"metrics":[]}"#,
    "\n",
);

#[test]
fn prof_diff_exit_codes() {
    let base = write_temp("base.jsonl", BASE);
    let slow = write_temp("slow.jsonl", SLOWER);
    let garbage = write_temp("garbage.txt", "not a snapshot");

    // Identical snapshots: pass.
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .args([&base, &base])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // +67% on one configuration: regression, exit 1, named in the report.
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .args([&base, &slow])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("xsbench tl=32 ×4"), "{stdout}");

    // A loose tolerance turns the same diff into a pass.
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .arg(&base)
        .arg(&slow)
        .args(["--tolerance", "0.9"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Parse and usage errors: exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .args([&base, &garbage])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .arg(&base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    for p in [base, slow, garbage] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn prof_diff_json_output_parses() {
    let base = write_temp("jbase.jsonl", BASE);
    let slow = write_temp("jslow.jsonl", SLOWER);
    let out = Command::new(env!("CARGO_BIN_EXE_prof-diff"))
        .arg(&base)
        .arg(&slow)
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let v: serde::Value = serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert!(v.get("deltas").unwrap().as_array().is_some());
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(slow);
}

#[test]
fn trace_check_exit_codes() {
    let good = write_temp(
        "good.json",
        r#"{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":1}]}"#,
    );
    let bad = write_temp(
        "bad.json",
        r#"{"traceEvents":[{"ph":"B","name":"a","pid":0}]}"#,
    );

    let out = Command::new(env!("CARGO_BIN_EXE_trace-check"))
        .arg(&good)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok (1 events)"));

    let out = Command::new(env!("CARGO_BIN_EXE_trace-check"))
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let out = Command::new(env!("CARGO_BIN_EXE_trace-check"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}
