//! Roofline model over the simulator's own reports.
//!
//! The classic roofline plots attainable instruction throughput against
//! arithmetic intensity (work per byte of DRAM traffic): below the ridge
//! point the memory roof `AI × BW` caps throughput, above it the compute
//! roof does. Because every number here comes from the same analytic
//! machine model that produced the timing ([`gpu_sim::SimReport`] +
//! [`gpu_arch::GpuSpec`]), achieved throughput can also be compared
//! against the attainable roof, which splits "under the memory roof" into
//! two very different regimes:
//!
//! * **bandwidth-saturated** — the kernel actually draws near the
//!   effective DRAM bandwidth (AMGmk at thread limit 1024: wide blocks
//!   stream enough concurrent sectors to fill the pipe), and
//! * **latency/parallelism-limited** — the roof is memory-side but the
//!   kernel cannot reach it (any benchmark at thread limit 32: one warp's
//!   MLP window caps each block far below the device roof; the very
//!   headroom ensemble execution exploits).

use gpu_arch::GpuSpec;
use gpu_sim::SimReport;
use serde::{Deserialize, Serialize};

/// Which roof (or neither) bounds a measured configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundClass {
    /// Issue throughput is within [`RooflinePoint::SATURATION`] of the
    /// compute roof.
    Compute,
    /// The memory roof caps throughput *and* the kernel draws at least
    /// [`RooflinePoint::SATURATION`] of the effective DRAM bandwidth.
    MemoryBw,
    /// Neither roof is approached: per-warp MLP, occupancy (wave tails)
    /// or RPC round trips keep the kernel under its rooflines.
    Latency,
}

impl BoundClass {
    pub fn name(self) -> &'static str {
        match self {
            BoundClass::Compute => "compute-bound",
            BoundClass::MemoryBw => "memory-bandwidth-bound",
            BoundClass::Latency => "latency-bound",
        }
    }
}

/// One kernel (or ensemble launch) placed on the device's roofline.
///
/// Throughputs are warp instructions per cycle (device-wide); intensity is
/// warp instructions per byte of post-L2 DRAM traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    pub kernel: String,
    /// Arithmetic intensity: warp instructions per DRAM byte
    /// (`f64::INFINITY` for kernels with no DRAM traffic).
    pub ai: f64,
    /// Achieved warp instructions per cycle.
    pub achieved_ipc: f64,
    /// `min(compute roof, memory roof)` at this intensity.
    pub attainable_ipc: f64,
    /// Compute roof: `sm_count × issue_slots_per_sm`.
    pub peak_ipc: f64,
    /// Memory roof at this intensity: `ai × effective bandwidth`.
    pub mem_roof_ipc: f64,
    /// Effective DRAM bandwidth in bytes/cycle (raw peak × the launch's
    /// modeled DRAM efficiency).
    pub eff_bw_bytes_per_cycle: f64,
    /// Intensity of the ridge point: `peak_ipc / effective bandwidth`.
    pub ridge_ai: f64,
    /// Achieved DRAM draw as a fraction of the effective bandwidth.
    pub bw_fraction: f64,
    pub bound: BoundClass,
}

impl RooflinePoint {
    /// Fraction of a roof a kernel must reach to be *bound* by it rather
    /// than by latency/parallelism.
    pub const SATURATION: f64 = 0.60;

    /// Place a finished launch on the device's roofline.
    pub fn from_report(spec: &GpuSpec, report: &SimReport) -> Self {
        let cycles = report.kernel_cycles.max(1e-12);
        let insts = report.total_insts;
        // Post-L2 DRAM traffic: what actually hits the bandwidth roof.
        let dram_bytes = report.moved_bytes * (1.0 - report.l2_hit);
        let achieved_ipc = insts / cycles;
        let peak_ipc = (spec.sm_count * spec.issue_slots_per_sm) as f64;
        let eff_bw = spec.dram_bytes_per_cycle() * report.dram_efficiency;
        let ai = if dram_bytes > 0.0 {
            insts / dram_bytes
        } else {
            f64::INFINITY
        };
        let mem_roof_ipc = if dram_bytes > 0.0 {
            ai * eff_bw
        } else {
            f64::INFINITY
        };
        let attainable_ipc = mem_roof_ipc.min(peak_ipc);
        let bw_fraction = if eff_bw > 0.0 {
            (dram_bytes / cycles) / eff_bw
        } else {
            0.0
        };
        let bound = if mem_roof_ipc < peak_ipc {
            // Memory side of the ridge: bandwidth-bound only when the
            // kernel actually saturates the pipe.
            if bw_fraction >= Self::SATURATION {
                BoundClass::MemoryBw
            } else {
                BoundClass::Latency
            }
        } else if achieved_ipc >= Self::SATURATION * peak_ipc {
            BoundClass::Compute
        } else {
            BoundClass::Latency
        };
        Self {
            kernel: report.kernel_name.clone(),
            ai,
            achieved_ipc,
            attainable_ipc,
            peak_ipc,
            mem_roof_ipc,
            eff_bw_bytes_per_cycle: eff_bw,
            ridge_ai: peak_ipc / eff_bw.max(1e-12),
            bw_fraction,
            bound,
        }
    }

    /// Achieved throughput as a fraction of the attainable roof.
    pub fn efficiency(&self) -> f64 {
        if self.attainable_ipc.is_finite() && self.attainable_ipc > 0.0 {
            self.achieved_ipc / self.attainable_ipc
        } else if self.peak_ipc > 0.0 {
            self.achieved_ipc / self.peak_ipc
        } else {
            0.0
        }
    }

    /// One-line rendering for reports:
    /// `AI 0.12 winsts/B | 31.4 / 101.9 IPC (roof: memory) | 31% BW | latency-bound`.
    pub fn render(&self) -> String {
        let roof_side = if self.mem_roof_ipc < self.peak_ipc {
            "memory"
        } else {
            "compute"
        };
        let ai = if self.ai.is_finite() {
            format!("{:.3}", self.ai)
        } else {
            "inf".to_string()
        };
        format!(
            "AI {ai} winsts/B | {:.1} / {:.1} IPC (roof: {roof_side}) | {:.0}% BW | {}",
            self.achieved_ipc,
            self.attainable_ipc,
            self.bw_fraction * 100.0,
            self.bound.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(insts: f64, moved: f64, l2_hit: f64, cycles: f64, dram_eff: f64) -> SimReport {
        SimReport {
            kernel_name: "k".into(),
            kernel_cycles: cycles,
            sim_time_s: cycles / 1.41e9,
            blocks: 1,
            threads_per_block: 32,
            waves: 1,
            occupancy: 1.0,
            total_insts: insts,
            total_sectors: (moved / 32.0) as u64,
            useful_bytes: moved,
            moved_bytes: moved,
            coalescing_efficiency: 1.0,
            l2_hit,
            dram_efficiency: dram_eff,
            active_region_tags: 1,
            issue_utilization: 0.5,
            dram_utilization: 0.5,
            rpc_calls: 0,
            block_end_cycles: vec![cycles],
        }
    }

    #[test]
    fn pure_compute_kernel_is_compute_bound() {
        let spec = GpuSpec::a100_40gb();
        let peak = (spec.sm_count * spec.issue_slots_per_sm) as f64;
        // No DRAM traffic, running at 80% of peak issue.
        let r = report(0.8 * peak * 1e6, 0.0, 0.0, 1e6, 0.92);
        let p = RooflinePoint::from_report(&spec, &r);
        assert!(p.ai.is_infinite());
        assert_eq!(p.bound, BoundClass::Compute);
        assert!(p.efficiency() > 0.7);
    }

    #[test]
    fn saturated_streaming_kernel_is_memory_bound() {
        let spec = GpuSpec::a100_40gb();
        let eff_bw = spec.dram_bytes_per_cycle() * 0.9;
        // Low intensity, drawing 95% of effective bandwidth.
        let cycles = 1e6;
        let dram = 0.95 * eff_bw * cycles;
        let r = report(0.01 * dram, dram, 0.0, cycles, 0.9);
        let p = RooflinePoint::from_report(&spec, &r);
        assert!(p.mem_roof_ipc < p.peak_ipc);
        assert_eq!(p.bound, BoundClass::MemoryBw);
        assert!(p.bw_fraction > 0.9);
    }

    #[test]
    fn slow_low_intensity_kernel_is_latency_bound() {
        let spec = GpuSpec::a100_40gb();
        // Memory-side intensity but drawing only 5% of the pipe — the
        // MLP-capped single-warp regime.
        let eff_bw = spec.dram_bytes_per_cycle() * 0.9;
        let cycles = 1e6;
        let dram = 0.05 * eff_bw * cycles;
        let r = report(0.01 * dram, dram, 0.0, cycles, 0.9);
        let p = RooflinePoint::from_report(&spec, &r);
        assert_eq!(p.bound, BoundClass::Latency);
    }

    #[test]
    fn ridge_point_separates_roofs() {
        let spec = GpuSpec::a100_40gb();
        let r = report(1e9, 1e6, 0.0, 1e6, 0.9);
        let p = RooflinePoint::from_report(&spec, &r);
        // AI = 1000 winsts/B is far above the ridge (~0.4): compute side.
        assert!(p.ai > p.ridge_ai);
        assert!(p.mem_roof_ipc > p.peak_ipc);
        // L2 hits reduce DRAM traffic and raise AI.
        let r_hit = report(1e9, 1e6, 0.9, 1e6, 0.9);
        let p_hit = RooflinePoint::from_report(&spec, &r_hit);
        assert!(p_hit.ai > p.ai);
    }

    #[test]
    fn render_mentions_class() {
        let spec = GpuSpec::a100_40gb();
        let r = report(1e6, 1e9, 0.0, 1e6, 0.9);
        let p = RooflinePoint::from_report(&spec, &r);
        assert!(p.render().contains(p.bound.name()));
    }

    #[test]
    fn round_trips_through_json() {
        let spec = GpuSpec::a100_40gb();
        let r = report(1e6, 1e9, 0.1, 1e6, 0.9);
        let p = RooflinePoint::from_report(&spec, &r);
        let json = serde_json::to_string(&p).unwrap();
        let back: RooflinePoint = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
