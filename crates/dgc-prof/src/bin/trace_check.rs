//! Validate a Chrome trace-event export.
//!
//! ```text
//! trace-check <trace.json> [<more.json> ...]
//! ```
//!
//! Runs every file through [`dgc_obs::validate_chrome_trace`]; exits `0`
//! when all are structurally valid (printing the payload event count per
//! file), `1` on the first invalid trace, `2` on usage/IO errors.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-check <trace.json> [<more.json> ...]");
        std::process::exit(2);
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace-check: cannot read {path}: {e}");
            std::process::exit(2);
        });
        match dgc_obs::validate_chrome_trace(&text) {
            Ok(n) => println!("{path}: ok ({n} events)"),
            Err(e) => {
                eprintln!("trace-check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
