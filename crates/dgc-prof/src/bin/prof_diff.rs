//! Profile-diff regression gate.
//!
//! ```text
//! prof-diff <baseline> <current> [--tolerance 0.05] [--json]
//! ```
//!
//! Compares two metrics snapshots (MeasuredConfig JSONL, figure6 panel
//! JSON, or ensemble metrics JSONL — autodetected) and exits non-zero
//! when any configuration regressed beyond the tolerance:
//!
//! * `0` — no regressions
//! * `1` — at least one regression (or a baseline configuration is
//!   missing / newly OOM)
//! * `2` — usage or parse error

use dgc_prof::{ProfileDiff, Snapshot};

fn fail_usage(msg: &str) -> ! {
    eprintln!("prof-diff: {msg}");
    eprintln!("usage: prof-diff <baseline> <current> [--tolerance 0.05] [--json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 0.05f64;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail_usage(&format!("bad tolerance '{v}'")));
                if !(0.0..1.0).contains(&tolerance) {
                    fail_usage("tolerance must be in [0, 1)");
                }
            }
            "--json" => json = true,
            flag if flag.starts_with("--") => fail_usage(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        fail_usage("expected exactly two snapshot paths");
    }
    let load = |path: &str| -> Snapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("prof-diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        Snapshot::parse(&text).unwrap_or_else(|e| {
            eprintln!("prof-diff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let diff = ProfileDiff::compare(&baseline, &current, tolerance);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&diff).expect("diff serializes")
        );
    } else {
        print!("{}", diff.render());
    }
    std::process::exit(if diff.has_regressions() { 1 } else { 0 });
}
