//! Profile-diff regression gate.
//!
//! ```text
//! prof-diff <baseline> <current> [--tolerance 0.05] [--json]
//!           [--ignore-field <name>]... [--keep-all-fields]
//! ```
//!
//! Compares two metrics snapshots (MeasuredConfig JSONL, figure6 panel
//! JSON, or ensemble metrics JSONL — autodetected) and exits non-zero
//! when any configuration regressed beyond the tolerance:
//!
//! * `0` — no regressions
//! * `1` — at least one regression (or a baseline configuration is
//!   missing / newly OOM)
//! * `2` — usage or parse error
//!
//! The large schema-v5 `timeline` arrays are stripped before parsing by
//! default (a sampling-only change must never move the gate, and
//! skipping them keeps diffs fast). `--ignore-field <name>` strips
//! further fields; `--keep-all-fields` disables the default.

use dgc_prof::{strip_json_fields, ProfileDiff, Snapshot};

fn fail_usage(msg: &str) -> ! {
    eprintln!("prof-diff: {msg}");
    eprintln!(
        "usage: prof-diff <baseline> <current> [--tolerance 0.05] [--json] \
         [--ignore-field <name>]... [--keep-all-fields]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 0.05f64;
    let mut json = false;
    let mut ignore_fields: Vec<String> = vec!["timeline".to_string()];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail_usage(&format!("bad tolerance '{v}'")));
                if !(0.0..1.0).contains(&tolerance) {
                    fail_usage("tolerance must be in [0, 1)");
                }
            }
            "--json" => json = true,
            "--ignore-field" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail_usage("--ignore-field needs a value"));
                if !ignore_fields.contains(v) {
                    ignore_fields.push(v.to_string());
                }
            }
            "--keep-all-fields" => ignore_fields.retain(|f| f != "timeline"),
            flag if flag.starts_with("--") => fail_usage(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        fail_usage("expected exactly two snapshot paths");
    }
    let ignore: Vec<&str> = ignore_fields.iter().map(|s| s.as_str()).collect();
    let load = |path: &str| -> Snapshot {
        let mut text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("prof-diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        if !ignore.is_empty() {
            text = strip_json_fields(&text, &ignore);
        }
        Snapshot::parse(&text).unwrap_or_else(|e| {
            eprintln!("prof-diff: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let diff = ProfileDiff::compare(&baseline, &current, tolerance);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&diff).expect("diff serializes")
        );
    } else {
        print!("{}", diff.render());
    }
    std::process::exit(if diff.has_regressions() { 1 } else { 0 });
}
