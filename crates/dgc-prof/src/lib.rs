//! Profiling analyses over the simulator's observability exports
//! (`dgc-prof`).
//!
//! Two analyses, plus the binaries that put them in CI:
//!
//! * [`RooflinePoint`] — places a finished launch on the device's
//!   roofline (arithmetic intensity vs. attainable throughput, computed
//!   from [`gpu_arch::GpuSpec`] data-sheet peaks and the launch's
//!   [`gpu_sim::SimReport`]) and classifies it compute-, memory-
//!   bandwidth- or latency-bound. The classification explains the
//!   paper's Figure 6 shape: at thread limit 32 every benchmark is
//!   latency-bound (near-linear ensemble scaling headroom), while AMGmk
//!   at thread limit 1024 saturates DRAM bandwidth (flat scaling).
//! * [`ProfileDiff`] — compares two metrics snapshots (any of the
//!   repo's three export formats) under a relative tolerance and flags
//!   regressions; the `prof-diff` binary turns that into a CI gate with
//!   a non-zero exit code.
//! * [`BenchDiff`] — the perf-trajectory gate: compares two
//!   `BENCH_ensemble.json` wall-clock snapshots written by the
//!   `bench_harness` binary (crate `dgc-bench`), gating instance counts
//!   exactly, simulated cycles under a relative tolerance, and wall
//!   time only on catastrophic blow-ups.
//! * `trace-check` — validates a Chrome trace export against
//!   [`dgc_obs::validate_chrome_trace`].

mod bench;
mod diff;
mod provenance;
mod roofline;

pub use bench::{
    BenchDelta, BenchDeltaKind, BenchDiff, BenchReport, BenchSection, BENCH_SCHEMA_VERSION,
};
pub use diff::{
    strip_json_fields, ConfigKey, Delta, DeltaKind, ParseError, ProfileDiff, Snapshot,
    ZERO_BASELINE_EPSILON_S,
};
pub use provenance::{config_fingerprint, git_rev};
pub use roofline::{BoundClass, RooflinePoint};
