//! Perf-trajectory gating over `BENCH_ensemble.json` snapshots.
//!
//! The `bench_harness` binary (crate `dgc-bench`) wall-clocks a pinned
//! figure-6 smoke sweep plus a sharded multi-device run and writes one
//! [`BenchReport`] per invocation. This module compares two such
//! reports the way [`crate::ProfileDiff`] compares metrics snapshots,
//! with per-field semantics matched to what each number can promise:
//!
//! * `instances` — the simulator is deterministic, so the completed
//!   instance count must match **exactly**; any drift is a regression.
//! * `sim_cycles` — also deterministic, but gated under a relative
//!   tolerance so an intentional, reviewed timing-model change can ship
//!   by refreshing the golden instead of fighting the gate. Growth
//!   beyond tolerance is a regression; shrinkage is an improvement.
//! * `wall_s` — host wall-clock, noisy across machines and loads. Only
//!   a **catastrophic** blow-up (current > baseline × `wall_factor`)
//!   fails the gate; everything else is informative.
//!
//! The exit-code contract is shared with `prof-diff`: 0 pass, 1 gate
//! failure, 2 usage/parse error.

use serde::{Serialize, Value};
use std::collections::BTreeMap;

use crate::ParseError;

/// Schema version of `BENCH_ensemble.json`.
///
/// * v1 — sections + total wall time.
/// * v2 — adds `git_rev` and `config_hash` so every snapshot is
///   self-identifying (the `dgc-insight` ledger copies them verbatim).
///   [`BenchReport::parse`] still accepts v1 documents; the provenance
///   fields default to `"unknown"`.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// One timed section of the harness (a sweep or a sharded run).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchSection {
    pub name: String,
    /// Host wall-clock time of the section, seconds.
    pub wall_s: f64,
    /// Instances that completed successfully (OOM configs excluded).
    pub instances: u64,
    /// Simulated device cycles accumulated across the section.
    pub sim_cycles: f64,
    /// `instances / wall_s` — the headline throughput number.
    pub instances_per_s: f64,
    /// `sim_cycles / wall_s` — simulator speed, cycles per host second.
    pub sim_cycles_per_s: f64,
}

/// A full harness run: every section plus the total wall time.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BenchReport {
    pub schema: u32,
    /// Abbreviated git revision the harness ran at (schema ≥ 2;
    /// `"unknown"` outside a git checkout or for v1 documents).
    pub git_rev: String,
    /// Fingerprint of the harness configuration (schema ≥ 2; see
    /// [`crate::config_fingerprint`]). Two reports with different
    /// hashes measured different workloads and should not be trended
    /// against each other.
    pub config_hash: String,
    pub sections: Vec<BenchSection>,
    pub total_wall_s: f64,
}

impl BenchReport {
    /// Parse a `BENCH_ensemble.json` document.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| ParseError(format!("bench JSON: {e}")))?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| ParseError("bench report without schema".into()))?
            as u32;
        let total_wall_s = doc
            .get("total_wall_s")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| ParseError("bench report without total_wall_s".into()))?;
        let raw = doc
            .get("sections")
            .and_then(|v| v.as_array())
            .ok_or_else(|| ParseError("bench report without sections".into()))?;
        let mut sections = Vec::new();
        for s in raw {
            let name = s
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ParseError("section without name".into()))?
                .to_string();
            let num = |key: &str| {
                s.get(key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| ParseError(format!("section {name:?} missing {key}")))
            };
            sections.push(BenchSection {
                wall_s: num("wall_s")?,
                instances: num("instances")? as u64,
                sim_cycles: num("sim_cycles")?,
                instances_per_s: num("instances_per_s")?,
                sim_cycles_per_s: num("sim_cycles_per_s")?,
                name,
            });
        }
        if sections.is_empty() {
            return Err(ParseError("bench report has no sections".into()));
        }
        // Provenance fields are v2; a v1 document parses with defaults so
        // BenchDiff accepts either schema on either side.
        let text_field = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_str())
                .unwrap_or("unknown")
                .to_string()
        };
        Ok(Self {
            schema,
            git_rev: text_field("git_rev"),
            config_hash: text_field("config_hash"),
            sections,
            total_wall_s,
        })
    }
}

/// What happened to one gated quantity between two bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BenchDeltaKind {
    Unchanged,
    Improvement,
    Regression,
    /// Section present in the golden, absent from the current report.
    Missing,
    /// Section new in the current report (never gates).
    Added,
}

/// One compared quantity of one section.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchDelta {
    pub section: String,
    /// Which field this delta gates: `instances`, `sim_cycles`, `wall_s`.
    pub field: String,
    pub baseline: Option<f64>,
    pub current: Option<f64>,
    /// `current / baseline − 1`; `None` for missing/added sections.
    pub rel_change: Option<f64>,
    pub kind: BenchDeltaKind,
}

/// Full comparison of two bench reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchDiff {
    pub tolerance: f64,
    pub wall_factor: f64,
    pub deltas: Vec<BenchDelta>,
}

impl BenchDiff {
    /// Compare `current` against the golden `baseline`.
    ///
    /// `tolerance` is the relative allowance on `sim_cycles` (e.g.
    /// `0.05` = 5% growth still passes); `wall_factor` is the
    /// catastrophic-only multiplier on `wall_s` (e.g. `10.0` = fail
    /// only when a section got ten times slower on the wall clock).
    pub fn compare(
        baseline: &BenchReport,
        current: &BenchReport,
        tolerance: f64,
        wall_factor: f64,
    ) -> Self {
        let index = |r: &BenchReport| -> BTreeMap<String, BenchSection> {
            r.sections
                .iter()
                .map(|s| (s.name.clone(), s.clone()))
                .collect()
        };
        let base = index(baseline);
        let cur = index(current);
        let mut deltas = Vec::new();

        for (name, b) in &base {
            let Some(c) = cur.get(name) else {
                deltas.push(BenchDelta {
                    section: name.clone(),
                    field: "section".into(),
                    baseline: Some(b.wall_s),
                    current: None,
                    rel_change: None,
                    kind: BenchDeltaKind::Missing,
                });
                continue;
            };
            // instances: deterministic — exact or regression.
            deltas.push(BenchDelta {
                section: name.clone(),
                field: "instances".into(),
                baseline: Some(b.instances as f64),
                current: Some(c.instances as f64),
                rel_change: relative(b.instances as f64, c.instances as f64),
                kind: if c.instances == b.instances {
                    BenchDeltaKind::Unchanged
                } else {
                    BenchDeltaKind::Regression
                },
            });
            // sim_cycles: relative tolerance, growth gates.
            let rel = relative(b.sim_cycles, c.sim_cycles);
            deltas.push(BenchDelta {
                section: name.clone(),
                field: "sim_cycles".into(),
                baseline: Some(b.sim_cycles),
                current: Some(c.sim_cycles),
                rel_change: rel,
                kind: match rel {
                    Some(r) if r > tolerance => BenchDeltaKind::Regression,
                    Some(r) if r < -tolerance => BenchDeltaKind::Improvement,
                    Some(_) => BenchDeltaKind::Unchanged,
                    // Zero-cycle baseline: any real cycle count regressed.
                    None if c.sim_cycles > 0.0 => BenchDeltaKind::Regression,
                    None => BenchDeltaKind::Unchanged,
                },
            });
            // wall_s: catastrophic-only gate.
            let wall_rel = relative(b.wall_s, c.wall_s);
            deltas.push(BenchDelta {
                section: name.clone(),
                field: "wall_s".into(),
                baseline: Some(b.wall_s),
                current: Some(c.wall_s),
                rel_change: wall_rel,
                kind: if b.wall_s > 0.0 && c.wall_s > b.wall_s * wall_factor {
                    BenchDeltaKind::Regression
                } else {
                    BenchDeltaKind::Unchanged
                },
            });
        }
        for (name, c) in &cur {
            if !base.contains_key(name) {
                deltas.push(BenchDelta {
                    section: name.clone(),
                    field: "section".into(),
                    baseline: None,
                    current: Some(c.wall_s),
                    rel_change: None,
                    kind: BenchDeltaKind::Added,
                });
            }
        }
        Self {
            tolerance,
            wall_factor,
            deltas,
        }
    }

    pub fn regressions(&self) -> impl Iterator<Item = &BenchDelta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d.kind, BenchDeltaKind::Regression | BenchDeltaKind::Missing))
    }

    /// True when the gate should fail.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Human-readable report: one line per changed quantity plus a
    /// summary line (mirrors `ProfileDiff::render`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let tag = match d.kind {
                BenchDeltaKind::Unchanged => continue,
                BenchDeltaKind::Improvement => "improved",
                BenchDeltaKind::Regression => "REGRESSION",
                BenchDeltaKind::Missing => "MISSING",
                BenchDeltaKind::Added => "added",
            };
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.6}"),
                None => "absent".to_string(),
            };
            let change = match d.rel_change {
                Some(rel) => format!(" ({:+.1}%)", rel * 100.0),
                None => String::new(),
            };
            out.push_str(&format!(
                "{tag:>10}  {} {}  {} -> {}{change}\n",
                d.section,
                d.field,
                fmt(d.baseline),
                fmt(d.current),
            ));
        }
        let n_reg = self.regressions().count();
        out.push_str(&format!(
            "{} quantities compared, {} regression(s), sim-cycle tolerance {:.1}%, wall factor {:.0}x\n",
            self.deltas.len(),
            n_reg,
            self.tolerance * 100.0,
            self.wall_factor
        ));
        out
    }
}

/// `current / baseline − 1`, or `None` when the baseline is zero.
fn relative(baseline: f64, current: f64) -> Option<f64> {
    (baseline > 0.0).then(|| current / baseline - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn section(name: &str, wall_s: f64, instances: u64, sim_cycles: f64) -> BenchSection {
        BenchSection {
            name: name.into(),
            wall_s,
            instances,
            sim_cycles,
            instances_per_s: instances as f64 / wall_s,
            sim_cycles_per_s: sim_cycles / wall_s,
        }
    }

    fn report(sections: Vec<BenchSection>) -> BenchReport {
        let total_wall_s = sections.iter().map(|s| s.wall_s).sum();
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            git_rev: "abc123def456".into(),
            config_hash: "00ff00ff00ff00ff".into(),
            sections,
            total_wall_s,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![
            section("figure6_smoke_tl32", 1.25, 60, 4.0e9),
            section("sharded_xsbench_x8", 0.5, 8, 9.0e8),
        ]);
        let text = serde_json::to_string_pretty(&r).unwrap();
        let parsed = BenchReport::parse(&text).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn schema_v1_documents_parse_with_unknown_provenance() {
        let v1 = r#"{"schema":1,"total_wall_s":1.0,"sections":[
            {"name":"a","wall_s":1.0,"instances":10,"sim_cycles":1e6,
             "instances_per_s":10.0,"sim_cycles_per_s":1e6}]}"#;
        let parsed = BenchReport::parse(v1).unwrap();
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.git_rev, "unknown");
        assert_eq!(parsed.config_hash, "unknown");
        // BenchDiff accepts a v1 golden against a v2 current.
        let current = report(vec![section("a", 1.0, 10, 1e6)]);
        assert!(!BenchDiff::compare(&parsed, &current, 0.05, 10.0).has_regressions());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse(r#"{"schema":1,"total_wall_s":1.0,"sections":[]}"#).is_err());
        assert!(BenchReport::parse(r#"{"sections":[{"name":"x"}]}"#).is_err());
        assert!(BenchReport::parse(
            r#"{"schema":1,"total_wall_s":1.0,"sections":[{"name":"x","wall_s":1.0}]}"#
        )
        .is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![section("a", 1.0, 10, 1e6)]);
        let d = BenchDiff::compare(&r, &r.clone(), 0.0, 10.0);
        assert!(!d.has_regressions());
        assert!(d.deltas.iter().all(|x| x.kind == BenchDeltaKind::Unchanged));
    }

    #[test]
    fn instance_count_drift_is_always_a_regression() {
        let base = report(vec![section("a", 1.0, 10, 1e6)]);
        // Even one extra instance fails — the simulator is deterministic.
        let cur = report(vec![section("a", 1.0, 11, 1e6)]);
        let d = BenchDiff::compare(&base, &cur, 0.5, 10.0);
        assert!(d.has_regressions());
        let delta = d.deltas.iter().find(|x| x.field == "instances").unwrap();
        assert_eq!(delta.kind, BenchDeltaKind::Regression);
    }

    #[test]
    fn sim_cycles_gate_under_relative_tolerance() {
        let base = report(vec![section("a", 1.0, 10, 1.00e6)]);
        let within = report(vec![section("a", 1.0, 10, 1.03e6)]);
        assert!(!BenchDiff::compare(&base, &within, 0.05, 10.0).has_regressions());
        let grown = report(vec![section("a", 1.0, 10, 1.20e6)]);
        let d = BenchDiff::compare(&base, &grown, 0.05, 10.0);
        assert!(d.has_regressions());
        assert!(d.render().contains("REGRESSION"));
        // Shrinkage is an improvement, never a failure.
        let shrunk = report(vec![section("a", 1.0, 10, 0.80e6)]);
        let d = BenchDiff::compare(&base, &shrunk, 0.05, 10.0);
        assert!(!d.has_regressions());
        assert!(d
            .deltas
            .iter()
            .any(|x| x.kind == BenchDeltaKind::Improvement));
    }

    #[test]
    fn wall_time_gates_only_on_catastrophic_blowup() {
        let base = report(vec![section("a", 1.0, 10, 1e6)]);
        // 5x slower on the wall clock: noisy machines do that. Passes.
        let slow = report(vec![section("a", 5.0, 10, 1e6)]);
        assert!(!BenchDiff::compare(&base, &slow, 0.05, 10.0).has_regressions());
        // 20x slower: catastrophic, fails.
        let dead = report(vec![section("a", 20.0, 10, 1e6)]);
        assert!(BenchDiff::compare(&base, &dead, 0.05, 10.0).has_regressions());
    }

    #[test]
    fn missing_section_fails_and_added_section_passes() {
        let base = report(vec![section("a", 1.0, 10, 1e6)]);
        let cur = report(vec![section("b", 1.0, 10, 1e6)]);
        let d = BenchDiff::compare(&base, &cur, 0.05, 10.0);
        assert!(d.has_regressions());
        let kinds: Vec<(String, BenchDeltaKind)> = d
            .deltas
            .iter()
            .map(|x| (x.section.clone(), x.kind))
            .collect();
        assert!(kinds.contains(&("a".into(), BenchDeltaKind::Missing)));
        assert!(kinds.contains(&("b".into(), BenchDeltaKind::Added)));
        // Added alone never gates.
        let d = BenchDiff::compare(
            &base,
            &report(vec![section("a", 1.0, 10, 1e6), section("b", 1.0, 10, 1e6)]),
            0.05,
            10.0,
        );
        assert!(!d.has_regressions());
    }
}
