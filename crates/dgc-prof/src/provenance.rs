//! Run provenance: who measured this, and what exactly was measured.
//!
//! Every perf artifact that outlives its run — `BENCH_ensemble.json`
//! (schema ≥ 2) and the `dgc-insight` ledger — stamps two fields from
//! here: the git revision the code was built from and a fingerprint of
//! the workload configuration. The rev answers "which code", the
//! fingerprint answers "which experiment": trend analysis must never
//! compare rates across different workloads, and the hash makes that
//! check mechanical.

use std::process::Command;

/// Abbreviated git revision of the working tree, or `"unknown"` when
/// not in a git checkout (or git is unavailable). A dirty tree gets a
/// `+` suffix so a ledger entry from uncommitted code is identifiable.
pub fn git_rev() -> String {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let Some(rev) = rev else {
        return "unknown".into();
    };
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}+")
    } else {
        rev
    }
}

/// Deterministic 64-bit FNV-1a fingerprint over the configuration's
/// parts (section names, instance counts, device strings — whatever
/// defines the experiment), rendered as 16 hex digits. Parts are
/// NUL-separated so `["ab","c"]` and `["a","bc"]` hash differently.
pub fn config_fingerprint<I, S>(parts: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in part.as_ref().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        // NUL separator byte: the XOR with 0 is a no-op, so only the
        // multiply advances the state.
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_deterministic_and_separator_sensitive() {
        let a = config_fingerprint(["figure6_smoke_tl32", "1,2,4,8"]);
        assert_eq!(a, config_fingerprint(["figure6_smoke_tl32", "1,2,4,8"]));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        // Different splits of the same bytes hash differently.
        assert_ne!(
            config_fingerprint(["ab", "c"]),
            config_fingerprint(["a", "bc"])
        );
        assert_ne!(a, config_fingerprint(["figure6_smoke_tl32"]));
    }

    #[test]
    fn git_rev_is_nonempty() {
        // In this repo it is a hex rev (possibly `+`-suffixed); outside
        // any checkout it is "unknown". Either way: non-empty, no
        // whitespace.
        let rev = git_rev();
        assert!(!rev.is_empty());
        assert!(!rev.contains(char::is_whitespace));
    }
}
