//! Profile-diff regression gating.
//!
//! Parses two metrics snapshots — any of the repo's three on-disk formats
//! — into a common keyed form and compares the per-configuration kernel
//! times under a relative tolerance. Recognized formats (autodetected):
//!
//! 1. **MeasuredConfig JSONL** — one `{"benchmark": ..., "thread_limit":
//!    ..., "instances": ..., "time_s": ...}` object per line (the
//!    `figure6 --metrics-out` export).
//! 2. **Figure-6 panels JSON** — the `figure6 --json` array of panels,
//!    each series point contributing one configuration.
//! 3. **Ensemble metrics JSONL** — `{"record": "launch", "kernel":
//!    "name-xN", "kernel_time_s": ...}` lines (the `ensemble-cli
//!    --metrics-out` export); `instance` records are skipped.
//!
//! A **regression** is a configuration whose time grew beyond the
//! tolerance, or that was runnable in the baseline and is OOM/absent now.
//! Improvements and new configurations are reported but never fail the
//! gate.

use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Identity of one measured configuration across snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigKey {
    pub benchmark: String,
    /// `0` when the source format does not record a thread limit
    /// (ensemble launch records).
    pub thread_limit: u32,
    pub instances: u32,
}

impl ConfigKey {
    pub fn render(&self) -> String {
        if self.thread_limit == 0 {
            format!("{} ×{}", self.benchmark, self.instances)
        } else {
            format!(
                "{} tl={} ×{}",
                self.benchmark, self.thread_limit, self.instances
            )
        }
    }
}

/// One configuration's measurement: `None` means it hit device OOM (the
/// paper's "not runnable").
pub type Measurement = Option<f64>;

/// A parsed snapshot: configuration → kernel time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub entries: BTreeMap<ConfigKey, Measurement>,
}

/// Why a snapshot failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Snapshot {
    /// Parse a snapshot, autodetecting the format.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let trimmed = text.trim_start();
        if trimmed.starts_with('[') {
            Self::parse_panels(text)
        } else {
            Self::parse_jsonl(text)
        }
    }

    fn parse_panels(text: &str) -> Result<Self, ParseError> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| ParseError(format!("panels JSON: {e}")))?;
        let panels = doc
            .as_array()
            .ok_or_else(|| ParseError("expected a top-level panel array".into()))?;
        let mut entries = BTreeMap::new();
        for panel in panels {
            let tl = field_u64(panel, "thread_limit").unwrap_or(0) as u32;
            let series = panel
                .get("series")
                .and_then(|v| v.as_array())
                .ok_or_else(|| ParseError("panel without series".into()))?;
            for s in series {
                let bench = s
                    .get("benchmark")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| ParseError("series without benchmark".into()))?
                    .to_string();
                let points = s
                    .get("points")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| ParseError("series without points".into()))?;
                for p in points {
                    let n = field_u64(p, "instances")
                        .ok_or_else(|| ParseError("point without instances".into()))?
                        as u32;
                    let time = p.get("time_s").and_then(|v| v.as_f64());
                    entries.insert(
                        ConfigKey {
                            benchmark: bench.clone(),
                            thread_limit: tl,
                            instances: n,
                        },
                        time,
                    );
                }
            }
        }
        Ok(Self { entries })
    }

    fn parse_jsonl(text: &str) -> Result<Self, ParseError> {
        let mut entries = BTreeMap::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| ParseError(format!("line {}: {e}", ln + 1)))?;
            if let Some(record) = v.get("record").and_then(|r| r.as_str()) {
                // Ensemble metrics JSONL: only launch records carry time.
                if record != "launch" {
                    continue;
                }
                let kernel = v
                    .get("kernel")
                    .and_then(|k| k.as_str())
                    .ok_or_else(|| ParseError(format!("line {}: launch without kernel", ln + 1)))?;
                let (benchmark, named_instances) = split_kernel_name(kernel);
                // Schema v3 records the instance count explicitly; prefer
                // it over parsing the kernel name.
                let instances = field_u64(&v, "instances")
                    .map(|n| n as u32)
                    .unwrap_or(named_instances);
                // Runnability: under schema >= 3 `oom` counts failures
                // cumulatively across recovery attempts, so a recovered
                // OOM still produced a valid time — only `unrecovered`
                // failures make the configuration unrunnable.
                let schema = field_u64(&v, "schema").unwrap_or(1);
                let failed = if schema >= 3 {
                    field_u64(&v, "unrecovered").unwrap_or(0) > 0
                } else {
                    field_u64(&v, "oom").unwrap_or(0) > 0
                };
                let time = if failed {
                    None
                } else {
                    v.get("kernel_time_s").and_then(|t| t.as_f64())
                };
                entries.insert(
                    ConfigKey {
                        benchmark,
                        thread_limit: 0,
                        instances,
                    },
                    time,
                );
            } else if v.get("benchmark").is_some() {
                // MeasuredConfig JSONL.
                let benchmark = v
                    .get("benchmark")
                    .and_then(|b| b.as_str())
                    .ok_or_else(|| ParseError(format!("line {}: bad benchmark", ln + 1)))?
                    .to_string();
                let thread_limit = field_u64(&v, "thread_limit").unwrap_or(0) as u32;
                let instances = field_u64(&v, "instances")
                    .ok_or_else(|| ParseError(format!("line {}: missing instances", ln + 1)))?
                    as u32;
                let time = v.get("time_s").and_then(|t| t.as_f64());
                entries.insert(
                    ConfigKey {
                        benchmark,
                        thread_limit,
                        instances,
                    },
                    time,
                );
            } else {
                return Err(ParseError(format!(
                    "line {}: unrecognized record shape",
                    ln + 1
                )));
            }
        }
        if entries.is_empty() {
            return Err(ParseError("no configurations found".into()));
        }
        Ok(Self { entries })
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_u64())
}

/// Remove `"field": <value>` members from raw JSON text before parsing.
///
/// The v5 launch record's `timeline` array can dwarf the rest of the
/// snapshot by orders of magnitude; stripping it keeps `prof-diff` fast
/// and makes the gate indifferent to sampling-only changes (`prof-diff
/// --ignore-field`, which ignores `timeline` by default). The scanner is
/// purely lexical — balanced braces/brackets with JSON string escapes —
/// so it works per line on JSONL without a full parse, and leaves
/// malformed text for the parser to reject with a real error.
pub fn strip_json_fields(text: &str, fields: &[&str]) -> String {
    let b = text.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'"' {
            let end = skip_string(b, i);
            let key = &text[i + 1..end.saturating_sub(1).max(i + 1)];
            // A string is a candidate key when the next non-space byte
            // is a colon.
            let mut j = end;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b':' && fields.contains(&key) {
                let mut k = j + 1;
                while k < b.len() && b[k].is_ascii_whitespace() {
                    k += 1;
                }
                k = skip_value(b, k);
                // Swallow one adjacent comma so the member list stays
                // well-formed: prefer the trailing one, else the
                // preceding one already emitted.
                let mut m = k;
                while m < b.len() && (b[m] == b' ' || b[m] == b'\t') {
                    m += 1;
                }
                if m < b.len() && b[m] == b',' {
                    i = m + 1;
                } else {
                    while out.last().is_some_and(|&c| c == b' ' || c == b'\t') {
                        out.pop();
                    }
                    if out.last() == Some(&b',') {
                        out.pop();
                    }
                    i = k;
                }
                continue;
            }
            out.extend_from_slice(&b[i..end]);
            i = end;
            continue;
        }
        out.push(b[i]);
        i += 1;
    }
    // Only whole well-formed segments were removed, so the bytes are
    // still valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Index just past the closing quote of the string starting at `b[i]`.
fn skip_string(b: &[u8], i: usize) -> usize {
    debug_assert_eq!(b[i], b'"');
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

/// Index just past the JSON value starting at `b[i]` (string, object,
/// array, or primitive token).
fn skip_value(b: &[u8], i: usize) -> usize {
    if i >= b.len() {
        return i;
    }
    match b[i] {
        b'"' => skip_string(b, i),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'"' => j = skip_string(b, j),
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return j;
                        }
                    }
                    _ => j += 1,
                }
            }
            j
        }
        _ => {
            // Primitive: runs to the next structural byte.
            let mut j = i;
            while j < b.len() && !matches!(b[j], b',' | b'}' | b']') && !b[j].is_ascii_whitespace()
            {
                j += 1;
            }
            j
        }
    }
}

/// `"xsbench-x64"` → `("xsbench", 64)`; names without the suffix map to
/// one instance.
fn split_kernel_name(kernel: &str) -> (String, u32) {
    if let Some(pos) = kernel.rfind("-x") {
        if let Ok(n) = kernel[pos + 2..].parse::<u32>() {
            return (kernel[..pos].to_string(), n);
        }
    }
    (kernel.to_string(), 1)
}

/// What happened to one configuration between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaKind {
    /// Time within tolerance (or both OOM).
    Unchanged,
    /// Time shrank beyond the tolerance.
    Improvement,
    /// Time grew beyond the tolerance, or runnable → OOM.
    Regression,
    /// In the baseline, absent from the current snapshot.
    Missing,
    /// New in the current snapshot (never gates).
    Added,
}

/// One per-configuration comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Delta {
    pub key: ConfigKey,
    pub baseline_s: Option<f64>,
    pub current_s: Option<f64>,
    /// `current / baseline − 1`; `None` when either side is OOM/absent.
    pub rel_change: Option<f64>,
    pub kind: DeltaKind,
}

/// Full diff of two snapshots under one relative tolerance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileDiff {
    pub tolerance: f64,
    pub deltas: Vec<Delta>,
}

/// Absolute floor used by [`ProfileDiff::compare`] when a baseline time
/// is zero: below it, a current time still counts as "zero".
pub const ZERO_BASELINE_EPSILON_S: f64 = 1e-9;

impl ProfileDiff {
    /// Compare `current` against `baseline` with relative tolerance
    /// `tolerance` (e.g. `0.05` = 5% slower still passes). Zero
    /// baselines fall back to an absolute epsilon of
    /// [`ZERO_BASELINE_EPSILON_S`] — see
    /// [`ProfileDiff::compare_with_epsilon`].
    pub fn compare(baseline: &Snapshot, current: &Snapshot, tolerance: f64) -> Self {
        Self::compare_with_epsilon(baseline, current, tolerance, ZERO_BASELINE_EPSILON_S)
    }

    /// Like [`ProfileDiff::compare`], with an explicit absolute epsilon
    /// for zero baselines. A relative gate is undefined at `baseline ==
    /// 0` — `current / 0 − 1` is not a percentage — so such entries gate
    /// on the absolute time instead: a current time above `abs_epsilon_s`
    /// is a regression, at or below it the entry is unchanged. Without
    /// the fallback a zero-time baseline entry would wave *any* current
    /// time through.
    pub fn compare_with_epsilon(
        baseline: &Snapshot,
        current: &Snapshot,
        tolerance: f64,
        abs_epsilon_s: f64,
    ) -> Self {
        let mut deltas = Vec::new();
        for (key, &base) in &baseline.entries {
            match current.entries.get(key) {
                None => deltas.push(Delta {
                    key: key.clone(),
                    baseline_s: base,
                    current_s: None,
                    rel_change: None,
                    kind: DeltaKind::Missing,
                }),
                Some(&cur) => {
                    let (rel_change, kind) = match (base, cur) {
                        (Some(b), Some(c)) if b > 0.0 => {
                            let rel = c / b - 1.0;
                            let kind = if rel > tolerance {
                                DeltaKind::Regression
                            } else if rel < -tolerance {
                                DeltaKind::Improvement
                            } else {
                                DeltaKind::Unchanged
                            };
                            (Some(rel), kind)
                        }
                        // Zero baseline: relative change is undefined, so
                        // gate on the absolute current time.
                        (Some(_), Some(c)) if c > abs_epsilon_s => (None, DeltaKind::Regression),
                        (Some(_), Some(_)) => (None, DeltaKind::Unchanged),
                        // Runnable before, OOM now: the §4.3 memory wall
                        // moved the wrong way.
                        (Some(_), None) => (None, DeltaKind::Regression),
                        // OOM before, runnable now: strictly better.
                        (None, Some(_)) => (None, DeltaKind::Improvement),
                        (None, None) => (None, DeltaKind::Unchanged),
                    };
                    deltas.push(Delta {
                        key: key.clone(),
                        baseline_s: base,
                        current_s: cur,
                        rel_change,
                        kind,
                    });
                }
            }
        }
        for (key, &cur) in &current.entries {
            if !baseline.entries.contains_key(key) {
                deltas.push(Delta {
                    key: key.clone(),
                    baseline_s: None,
                    current_s: cur,
                    rel_change: None,
                    kind: DeltaKind::Added,
                });
            }
        }
        Self { tolerance, deltas }
    }

    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas
            .iter()
            .filter(|d| matches!(d.kind, DeltaKind::Regression | DeltaKind::Missing))
    }

    /// True when the gate should fail (any regression or missing config).
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Human-readable report, one line per configuration that changed,
    /// plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt_t = |t: Option<f64>| match t {
            Some(s) => format!("{:.3} ms", s * 1e3),
            None => "OOM".to_string(),
        };
        for d in &self.deltas {
            let tag = match d.kind {
                DeltaKind::Unchanged => continue,
                DeltaKind::Improvement => "improved",
                DeltaKind::Regression => "REGRESSION",
                DeltaKind::Missing => "MISSING",
                DeltaKind::Added => "added",
            };
            let change = match d.rel_change {
                Some(rel) => format!(" ({:+.1}%)", rel * 100.0),
                None => String::new(),
            };
            out.push_str(&format!(
                "{tag:>10}  {}  {} -> {}{change}\n",
                d.key.render(),
                fmt_t(d.baseline_s),
                fmt_t(d.current_s),
            ));
        }
        let n_reg = self.regressions().count();
        out.push_str(&format!(
            "{} configurations compared, {} regression(s), tolerance {:.1}%\n",
            self.deltas.len(),
            n_reg,
            self.tolerance * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: &str, tl: u32, n: u32) -> ConfigKey {
        ConfigKey {
            benchmark: b.into(),
            thread_limit: tl,
            instances: n,
        }
    }

    const MEASURED: &str = concat!(
        r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":1,"time_s":0.010,"metrics":[]}"#,
        "\n",
        r#"{"benchmark":"xsbench","device":"A100","thread_limit":32,"instances":4,"time_s":0.012,"metrics":[]}"#,
        "\n",
        r#"{"benchmark":"pagerank","device":"A100","thread_limit":32,"instances":8,"time_s":null,"metrics":[]}"#,
        "\n",
    );

    #[test]
    fn parses_measured_config_jsonl() {
        let s = Snapshot::parse(MEASURED).unwrap();
        assert_eq!(s.entries.len(), 3);
        assert_eq!(s.entries[&key("xsbench", 32, 1)], Some(0.010));
        assert_eq!(s.entries[&key("pagerank", 32, 8)], None);
    }

    #[test]
    fn parses_launch_record_jsonl() {
        let text = concat!(
            r#"{"record":"instance","instance":0,"cycles":5.0}"#,
            "\n",
            r#"{"record":"launch","schema":2,"kernel":"amgmk-x16","instances":16,"failed":0,"oom":0,"kernel_time_s":0.002,"total_time_s":0.003,"waves":1,"rpc_total":4}"#,
            "\n",
        );
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[&key("amgmk", 0, 16)], Some(0.002));
    }

    #[test]
    fn oom_launch_records_parse_as_not_runnable() {
        let text = r#"{"record":"launch","kernel":"pagerank-x8","instances":8,"failed":2,"oom":2,"kernel_time_s":0.001,"total_time_s":0.001,"waves":1,"rpc_total":0}"#;
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.entries[&key("pagerank", 0, 8)], None);
    }

    #[test]
    fn schema_v3_runnability_comes_from_unrecovered() {
        // A recovered OOM (cumulative oom > 0, unrecovered = 0) under the
        // resilient driver still produced a valid time.
        let recovered = r#"{"record":"launch","schema":3,"kernel":"pagerank-x8","instances":8,"failed":8,"oom":8,"unrecovered":0,"oom_splits":1,"kernel_time_s":0.004,"total_time_s":0.005,"waves":2,"rpc_total":8}"#;
        let s = Snapshot::parse(recovered).unwrap();
        assert_eq!(s.entries[&key("pagerank", 0, 8)], Some(0.004));
        // Unrecovered failures still mark the configuration unrunnable.
        let stuck = r#"{"record":"launch","schema":3,"kernel":"pagerank-x8","instances":8,"failed":9,"oom":9,"unrecovered":3,"kernel_time_s":0.004,"total_time_s":0.005,"waves":2,"rpc_total":8}"#;
        let s = Snapshot::parse(stuck).unwrap();
        assert_eq!(s.entries[&key("pagerank", 0, 8)], None);
    }

    #[test]
    fn explicit_instances_field_beats_kernel_name_parsing() {
        // The resilient driver's rollup names the whole sequence; the
        // `instances` field is authoritative.
        let text = r#"{"record":"launch","schema":3,"kernel":"weird-xname","instances":6,"failed":0,"oom":0,"unrecovered":0,"kernel_time_s":0.002,"total_time_s":0.002,"waves":1,"rpc_total":0}"#;
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.entries[&key("weird-xname", 0, 6)], Some(0.002));
    }

    #[test]
    fn parses_panel_json() {
        let text = r#"[{"thread_limit":32,"instance_counts":[1,2],"series":[
            {"benchmark":"xsbench","thread_limit":32,"points":[
                {"instances":1,"time_s":0.01,"speedup":1.0},
                {"instances":2,"time_s":null,"speedup":null}]}]}]"#;
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.entries[&key("xsbench", 32, 1)], Some(0.01));
        assert_eq!(s.entries[&key("xsbench", 32, 2)], None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Snapshot::parse("not json").is_err());
        assert!(Snapshot::parse(r#"{"neither":"format"}"#).is_err());
        assert!(Snapshot::parse("").is_err());
    }

    #[test]
    fn kernel_name_splitting() {
        assert_eq!(split_kernel_name("xsbench-x64"), ("xsbench".into(), 64));
        assert_eq!(split_kernel_name("plain"), ("plain".into(), 1));
        assert_eq!(split_kernel_name("odd-xname"), ("odd-xname".into(), 1));
    }

    fn snap(pairs: &[(&str, u32, u32, Option<f64>)]) -> Snapshot {
        Snapshot {
            entries: pairs
                .iter()
                .map(|&(b, tl, n, t)| (key(b, tl, n), t))
                .collect(),
        }
    }

    #[test]
    fn diff_flags_only_out_of_tolerance_growth() {
        let base = snap(&[
            ("a", 32, 1, Some(0.100)),
            ("a", 32, 4, Some(0.100)),
            ("a", 32, 8, Some(0.100)),
        ]);
        let cur = snap(&[
            ("a", 32, 1, Some(0.103)), // +3%: within 5%
            ("a", 32, 4, Some(0.120)), // +20%: regression
            ("a", 32, 8, Some(0.080)), // −20%: improvement
        ]);
        let d = ProfileDiff::compare(&base, &cur, 0.05);
        assert!(d.has_regressions());
        let kinds: Vec<DeltaKind> = d.deltas.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DeltaKind::Unchanged,
                DeltaKind::Regression,
                DeltaKind::Improvement
            ]
        );
        assert!(d.render().contains("REGRESSION"));
        assert!(d.render().contains("1 regression(s)"));
    }

    #[test]
    fn oom_flip_and_missing_config_are_regressions() {
        let base = snap(&[("a", 32, 1, Some(0.1)), ("a", 32, 2, Some(0.1))]);
        let cur = snap(&[("a", 32, 1, None), ("b", 32, 1, Some(0.1))]);
        let d = ProfileDiff::compare(&base, &cur, 0.05);
        let by_key = |b: &str, n: u32| {
            d.deltas
                .iter()
                .find(|x| x.key == key(b, 32, n))
                .unwrap()
                .kind
        };
        assert_eq!(by_key("a", 1), DeltaKind::Regression); // runnable → OOM
        assert_eq!(by_key("a", 2), DeltaKind::Missing);
        assert_eq!(by_key("b", 1), DeltaKind::Added);
        assert!(d.has_regressions());
        // OOM → runnable is an improvement, never a failure.
        let d = ProfileDiff::compare(
            &snap(&[("a", 32, 1, None)]),
            &snap(&[("a", 32, 1, Some(0.1))]),
            0.05,
        );
        assert!(!d.has_regressions());
        assert_eq!(d.deltas[0].kind, DeltaKind::Improvement);
    }

    #[test]
    fn identical_snapshots_pass() {
        let base = snap(&[("a", 32, 1, Some(0.1)), ("a", 1024, 64, None)]);
        let d = ProfileDiff::compare(&base, &base.clone(), 0.0);
        assert!(!d.has_regressions());
        assert!(d.deltas.iter().all(|x| x.kind == DeltaKind::Unchanged));
    }

    #[test]
    fn zero_baseline_gates_on_absolute_time() {
        // A 0 s baseline has no meaningful relative change; any real
        // current time must still fail the gate instead of slipping
        // through as Unchanged.
        let base = snap(&[("a", 32, 1, Some(0.0))]);
        let d = ProfileDiff::compare(&base, &snap(&[("a", 32, 1, Some(0.1))]), 0.05);
        assert_eq!(d.deltas[0].kind, DeltaKind::Regression);
        assert_eq!(d.deltas[0].rel_change, None);
        assert!(d.has_regressions());
        // Zero → zero is unchanged.
        let d = ProfileDiff::compare(&base, &snap(&[("a", 32, 1, Some(0.0))]), 0.05);
        assert_eq!(d.deltas[0].kind, DeltaKind::Unchanged);
        assert!(!d.has_regressions());
        // Noise below the absolute epsilon also passes.
        let d = ProfileDiff::compare(&base, &snap(&[("a", 32, 1, Some(1e-12))]), 0.05);
        assert_eq!(d.deltas[0].kind, DeltaKind::Unchanged);
    }

    #[test]
    fn strip_json_fields_removes_members_lexically() {
        // Trailing-comma case: the member's own comma goes with it.
        assert_eq!(
            strip_json_fields(
                r#"{"a":1,"timeline":[{"t":1},{"t":2}],"b":2}"#,
                &["timeline"]
            ),
            r#"{"a":1,"b":2}"#
        );
        // Last-member case: the preceding comma goes instead.
        assert_eq!(
            strip_json_fields(r#"{"a":1,"timeline":[1,2,3]}"#, &["timeline"]),
            r#"{"a":1}"#
        );
        // Strings, nesting and escapes don't confuse the scanner; a
        // value string containing the field name is untouched.
        assert_eq!(
            strip_json_fields(
                r#"{"k":"timeline","timeline":{"x":"a\"b,}","y":[{}]},"n":3}"#,
                &["timeline"]
            ),
            r#"{"k":"timeline","n":3}"#
        );
        // Works per line on JSONL and with multiple fields.
        let jsonl = "{\"a\":1,\"big\":[1,2]}\n{\"b\":null,\"big\":{},\"c\":true}\n";
        assert_eq!(
            strip_json_fields(jsonl, &["big", "c"]),
            "{\"a\":1}\n{\"b\":null}\n"
        );
        // No match: byte-identical output.
        let text = r#"{"a": [1, 2], "b": "x"}"#;
        assert_eq!(strip_json_fields(text, &["missing"]), text);
        // A stripped snapshot still parses.
        let launch = r#"{"record":"launch","schema":5,"kernel":"xsbench-x4","instances":4,"unrecovered":0,"kernel_time_s":0.002,"timeline":[{"ts_us":1.0,"utilization":0.5}]}"#;
        let s = Snapshot::parse(&strip_json_fields(launch, &["timeline"])).unwrap();
        assert_eq!(s.entries[&key("xsbench", 0, 4)], Some(0.002));
    }

    #[test]
    fn zero_baseline_epsilon_is_configurable() {
        let base = snap(&[("a", 32, 1, Some(0.0))]);
        let cur = snap(&[("a", 32, 1, Some(0.5e-3))]);
        // Default epsilon (1 ns): 0.5 ms is a regression.
        assert!(ProfileDiff::compare(&base, &cur, 0.05).has_regressions());
        // A 1 ms allowance waves it through.
        let d = ProfileDiff::compare_with_epsilon(&base, &cur, 0.05, 1e-3);
        assert!(!d.has_regressions());
        assert_eq!(d.deltas[0].kind, DeltaKind::Unchanged);
    }
}
