use crate::pass::{run_passes, Diagnostics, PassContext, PassError};
use crate::passes::{
    DeadSymbolElim, DeclareTargetMarker, GlobalsToShared, HostCallResolver, MainCanonicalizer,
    ParallelismExpansion, USER_MAIN,
};
use dgc_ir::{GlobalPlacement, Module};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Result of the parallelism-expansion analysis (the \[27\] baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionInfo {
    /// Parallel regions reachable from the entry point.
    pub parallel_regions: u32,
    /// How many of them are provably order-independent.
    pub expandable_regions: u32,
    /// Whether multi-team expansion is semantically allowed everywhere.
    pub multi_team_eligible: bool,
}

/// Options for the standard pipeline.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// Shared-memory budget for the globals-to-shared transform.
    pub shared_budget: u64,
    /// Run the §3.3 globals-to-shared transform (on by default; the
    /// ablation benches switch it off to observe the isolation hazard).
    pub globals_to_shared: bool,
    /// Run dead-symbol elimination.
    pub dce: bool,
    /// Treat reachable host-only symbols as a hard compile error.
    pub strict_host_calls: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            shared_budget: 64 * 1024,
            globals_to_shared: true,
            dce: true,
            strict_host_calls: true,
        }
    }
}

/// Failure modes of [`compile`].
#[derive(Debug)]
pub enum CompileError {
    /// Input module failed structural verification.
    Invalid(dgc_ir::VerifyError),
    /// A pass aborted.
    Pass(PassError),
    /// Diagnostics contain errors (e.g. reachable host-only calls) and
    /// `strict_host_calls` is set. Diagnostics are attached.
    Errors(Diagnostics),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invalid(e) => write!(f, "invalid input module: {e}"),
            CompileError::Pass(e) => write!(f, "{e}"),
            CompileError::Errors(d) => {
                let n = d
                    .iter()
                    .filter(|x| x.severity == crate::Severity::Error)
                    .count();
                write!(f, "compilation produced {n} errors")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The linked device image the offload runtime loads: the transformed
/// module plus everything the loader needs to know about it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledImage {
    pub module: Module,
    /// Device entry point (always [`USER_MAIN`] after the pipeline).
    pub entry: String,
    /// RPC services for which stubs were generated — the runtime enables
    /// exactly these.
    pub rpc_services: BTreeSet<u32>,
    /// Final placement of every global.
    pub global_placements: BTreeMap<String, GlobalPlacement>,
    /// Parallelism-expansion analysis result.
    pub expansion: ExpansionInfo,
    /// All diagnostics the pipeline emitted.
    pub diagnostics: Diagnostics,
}

impl CompiledImage {
    /// Shared-memory bytes the relocated globals need per team.
    pub fn team_shared_globals_bytes(&self) -> u64 {
        self.module
            .globals
            .iter()
            .filter(|g| g.placement == GlobalPlacement::TeamShared)
            .map(|g| g.size)
            .sum()
    }

    /// Names of mutable globals left in device-global memory — the
    /// ensemble isolation hazards of §3.3.
    pub fn isolation_hazards(&self) -> Vec<&str> {
        self.module
            .globals
            .iter()
            .filter(|g| !g.is_const && g.placement == GlobalPlacement::DeviceGlobal)
            .map(|g| g.name.as_str())
            .collect()
    }
}

/// Run the standard direct-GPU-compilation pipeline over `module`.
pub fn compile(mut module: Module, opts: &CompilerOptions) -> Result<CompiledImage, CompileError> {
    module.verify_ok().map_err(CompileError::Invalid)?;
    let mut cx = PassContext::default();

    let g2s = GlobalsToShared {
        shared_budget: opts.shared_budget,
    };
    let mut passes: Vec<&dyn crate::Pass> =
        vec![&DeclareTargetMarker, &MainCanonicalizer, &HostCallResolver];
    if opts.globals_to_shared {
        passes.push(&g2s);
    }
    passes.push(&ParallelismExpansion);
    if opts.dce {
        passes.push(&DeadSymbolElim);
    }

    run_passes(&passes, &mut module, &mut cx).map_err(CompileError::Pass)?;

    module
        .verify_ok()
        .map_err(CompileError::Invalid)
        .expect("pipeline must preserve module validity");

    if opts.strict_host_calls && cx.diags.has_errors() {
        return Err(CompileError::Errors(cx.diags));
    }

    let global_placements = module
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.placement))
        .collect();
    // The enabled services are a property of the *final module*: exactly
    // the services whose stubs survived (dead stubs are DCE'd; stubs that
    // already existed on entry count like freshly generated ones).
    let rpc_services: BTreeSet<u32> = module
        .functions
        .iter()
        .filter_map(|f| f.attrs.rpc_service())
        .collect();
    Ok(CompiledImage {
        entry: USER_MAIN.to_string(),
        rpc_services,
        global_placements,
        expansion: cx.expansion.expect("expansion pass always runs"),
        diagnostics: cx.diags,
        module,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::{Attr, Function, Global};
    use host_rpc::{SERVICE_FS, SERVICE_STDIO};

    /// A module shaped like the paper's benchmarks: a main that parses
    /// arguments, allocates, runs a parallel kernel, prints results.
    fn benchmark_module() -> Module {
        let mut m = Module::new("xsbench");
        m.add_global(Global::new("grid_ptr", 8));
        m.add_global(Global::new("lookup_table", 4096).constant());
        m.add_function(
            Function::defined("main", 2).with_callees(&["parse", "init", "run", "printf"]),
        );
        m.add_function(Function::defined("parse", 2).with_callees(&["atoi", "strcmp"]));
        m.add_function(Function::defined("init", 1).with_callees(&["malloc", "rand"]));
        m.add_function(
            Function::defined("run", 1)
                .with_callees(&["lookup", "printf"])
                .with_attr(Attr::ParallelRegions(1))
                .with_attr(Attr::OrderIndependentParallel),
        );
        m.add_function(Function::defined("lookup", 3).with_callees(&["sqrt"]));
        m.add_function(Function::defined("unused_helper", 0));
        m.add_function(Function::external("printf").with_variadic());
        m.add_function(Function::external("atoi"));
        m.add_function(Function::external("strcmp"));
        m.add_function(Function::external("malloc"));
        m.add_function(Function::external("rand"));
        m.add_function(Function::external("sqrt"));
        m
    }

    #[test]
    fn full_pipeline_produces_expected_image() {
        let image = compile(benchmark_module(), &CompilerOptions::default()).unwrap();
        assert_eq!(image.entry, USER_MAIN);
        let um = image.module.function(USER_MAIN).unwrap();
        assert!(um.attrs.is_nohost_device());
        assert!(image.module.function("__rpc_printf").is_some());
        assert_eq!(
            image.rpc_services.iter().copied().collect::<Vec<_>>(),
            vec![SERVICE_STDIO]
        );
        // DCE removed the unused helper.
        assert!(image.module.function("unused_helper").is_none());
        // Globals placed.
        assert_eq!(
            image.global_placements["lookup_table"],
            GlobalPlacement::Constant
        );
        assert_eq!(
            image.global_placements["grid_ptr"],
            GlobalPlacement::TeamShared
        );
        assert_eq!(image.team_shared_globals_bytes(), 8);
        assert!(image.isolation_hazards().is_empty());
        // Expansion analysis ran.
        assert!(image.expansion.multi_team_eligible);
        assert_eq!(image.expansion.parallel_regions, 1);
        // Module verifies.
        assert!(image.module.verify().is_empty());
    }

    #[test]
    fn fs_usage_enables_fs_service() {
        let mut m = benchmark_module();
        m.function_mut("init").unwrap().callees.push("fopen".into());
        m.add_function(Function::external("fopen"));
        let image = compile(m, &CompilerOptions::default()).unwrap();
        assert!(image.rpc_services.contains(&SERVICE_FS));
        assert!(image.rpc_services.contains(&SERVICE_STDIO));
    }

    #[test]
    fn strict_mode_rejects_reachable_host_only() {
        let mut m = benchmark_module();
        m.function_mut("init").unwrap().callees.push("fork".into());
        m.add_function(Function::external("fork"));
        match compile(m, &CompilerOptions::default()) {
            Err(CompileError::Errors(d)) => assert!(d.has_errors()),
            other => panic!("expected Errors, got {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_compiles_with_error_diags() {
        let mut m = benchmark_module();
        m.function_mut("init").unwrap().callees.push("fork".into());
        m.add_function(Function::external("fork"));
        let opts = CompilerOptions {
            strict_host_calls: false,
            ..CompilerOptions::default()
        };
        let image = compile(m, &opts).unwrap();
        assert!(image.diagnostics.has_errors());
    }

    #[test]
    fn disabling_globals_to_shared_leaves_hazards() {
        let opts = CompilerOptions {
            globals_to_shared: false,
            ..CompilerOptions::default()
        };
        let image = compile(benchmark_module(), &opts).unwrap();
        assert_eq!(image.isolation_hazards(), vec!["grid_ptr"]);
    }

    #[test]
    fn invalid_module_rejected_up_front() {
        let mut m = benchmark_module();
        m.function_mut("main").unwrap().callees.push("ghost".into());
        assert!(matches!(
            compile(m, &CompilerOptions::default()),
            Err(CompileError::Invalid(_))
        ));
    }

    #[test]
    fn missing_main_fails_in_canonicalizer() {
        let mut m = Module::new("nomain");
        m.add_function(Function::defined("helper", 0));
        assert!(matches!(
            compile(m, &CompilerOptions::default()),
            Err(CompileError::Pass(_))
        ));
    }

    #[test]
    fn image_roundtrips_through_ir_text() {
        let image = compile(benchmark_module(), &CompilerOptions::default()).unwrap();
        let text = image.module.to_string();
        let reparsed = Module::parse(&text).unwrap();
        assert_eq!(image.module, reparsed);
    }
}
