use host_rpc::{SERVICE_CLOCK, SERVICE_EXIT, SERVICE_FS, SERVICE_STDIO};
use serde::{Deserialize, Serialize};

/// How an unresolved external symbol can be satisfied on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymbolClass {
    /// Implemented by the partial device libc — callable directly.
    DeviceLibc,
    /// Host-only, but expressible as an RPC to the given service.
    Rpc(u32),
    /// Cannot run on the device and has no RPC mapping.
    HostOnly,
}

/// Classify a libc/POSIX symbol name, mirroring the table the custom LTO
/// pass of the direct-GPU-compilation framework uses to decide between
/// device-libc linking and RPC stub generation.
pub fn classify_external(name: &str) -> SymbolClass {
    match name {
        // ---- partial device libc ------------------------------------
        "malloc" | "free" | "calloc" | "realloc" | "aligned_alloc" => SymbolClass::DeviceLibc,
        "memcpy" | "memset" | "memmove" | "memcmp" => SymbolClass::DeviceLibc,
        "strlen" | "strcmp" | "strncmp" | "strcpy" | "strncpy" | "strchr" | "strstr" | "strtol"
        | "strtoul" | "strtod" | "atoi" | "atol" | "atof" => SymbolClass::DeviceLibc,
        "qsort" | "bsearch" | "rand" | "srand" | "abs" | "labs" => SymbolClass::DeviceLibc,
        "sqrt" | "sqrtf" | "pow" | "powf" | "exp" | "expf" | "log" | "logf" | "log10" | "sin"
        | "sinf" | "cos" | "cosf" | "tan" | "fabs" | "fabsf" | "floor" | "ceil" | "fmod"
        | "fmin" | "fmax" => SymbolClass::DeviceLibc,
        "snprintf" | "sprintf" | "sscanf" => SymbolClass::DeviceLibc,

        // ---- host RPC services --------------------------------------
        "printf" | "puts" | "putchar" | "fputs" | "fprintf" | "vprintf" | "fflush" | "perror" => {
            SymbolClass::Rpc(SERVICE_STDIO)
        }
        "fopen" | "fclose" | "fread" | "fwrite" | "fseek" | "ftell" | "rewind" | "fgets"
        | "fgetc" | "fputc" | "feof" | "remove" | "rename" => SymbolClass::Rpc(SERVICE_FS),
        "time" | "clock" | "clock_gettime" | "gettimeofday" | "difftime" => {
            SymbolClass::Rpc(SERVICE_CLOCK)
        }
        "exit" | "abort" | "_exit" | "atexit" => SymbolClass::Rpc(SERVICE_EXIT),

        // ---- impossible on the device --------------------------------
        "fork" | "execve" | "system" | "popen" | "mmap" | "munmap" | "pthread_create"
        | "pthread_join" | "socket" | "connect" | "bind" | "accept" | "dlopen" | "signal"
        | "sigaction" | "longjmp" | "setjmp" => SymbolClass::HostOnly,

        // Unknown symbols are conservatively host-only: the framework
        // cannot prove they are safe to execute on the device.
        _ => SymbolClass::HostOnly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libc_math_and_memory_stay_on_device() {
        for s in ["malloc", "memcpy", "strlen", "sqrt", "qsort", "rand"] {
            assert_eq!(classify_external(s), SymbolClass::DeviceLibc, "{s}");
        }
    }

    #[test]
    fn io_becomes_rpc_with_right_service() {
        assert_eq!(classify_external("printf"), SymbolClass::Rpc(SERVICE_STDIO));
        assert_eq!(classify_external("fopen"), SymbolClass::Rpc(SERVICE_FS));
        assert_eq!(classify_external("fwrite"), SymbolClass::Rpc(SERVICE_FS));
        assert_eq!(classify_external("time"), SymbolClass::Rpc(SERVICE_CLOCK));
        assert_eq!(classify_external("exit"), SymbolClass::Rpc(SERVICE_EXIT));
    }

    #[test]
    fn process_control_is_host_only() {
        for s in ["fork", "system", "pthread_create", "socket", "mmap"] {
            assert_eq!(classify_external(s), SymbolClass::HostOnly, "{s}");
        }
    }

    #[test]
    fn unknown_symbols_are_host_only() {
        assert_eq!(classify_external("my_mystery_fn"), SymbolClass::HostOnly);
    }
}
