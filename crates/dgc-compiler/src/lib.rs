//! Compiler passes of the direct-GPU-compilation scheme.
//!
//! Reproduces, at module-IR level, the custom link-time pipeline of the
//! direct GPU compilation papers:
//!
//! 1. [`passes::DeclareTargetMarker`] — the user-wrapper header semantics:
//!    every user symbol becomes `declare target device_type(nohost)`.
//! 2. [`passes::MainCanonicalizer`] — canonicalize the user's `main` to
//!    `int main(int, char**)` and rename it to `__user_main` so the loader
//!    wrapper can take over as the host entry point.
//! 3. [`passes::HostCallResolver`] — the "custom LTO" pass: classify every
//!    unresolved external reference as (a) provided by the partial device
//!    libc, (b) host-only but RPC-able, for which a device stub function is
//!    generated, or (c) impossible on the device (diagnostic).
//! 4. [`passes::GlobalsToShared`] — the transform §3.3 of the ensemble
//!    paper proposes: relocate mutable globals into team-local shared
//!    memory so concurrent instances stay isolated.
//! 5. [`passes::ParallelismExpansion`] — the GPU-first analysis: can the
//!    parallel regions be expanded to multiple teams?
//! 6. [`passes::DeadSymbolElim`] — drop symbols unreachable from the
//!    (renamed) entry point.
//!
//! [`compile`] runs the standard pipeline and produces a [`CompiledImage`],
//! which the offload runtime (`dgc-core`) consumes: the entry symbol, the
//! set of RPC services with generated stubs, and the placement decision for
//! every global.

mod pass;
mod pipeline;
mod symbols;

pub mod passes;

pub use pass::{Diagnostic, Diagnostics, Pass, PassContext, PassError, Severity};
pub use pipeline::{compile, CompileError, CompiledImage, CompilerOptions, ExpansionInfo};
pub use symbols::{classify_external, SymbolClass};
