use dgc_ir::Module;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

/// One compiler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    pub severity: Severity,
    pub pass: String,
    pub message: String,
}

/// Accumulated diagnostics across a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostics(Vec<Diagnostic>);

impl Diagnostics {
    pub fn push(&mut self, severity: Severity, pass: &str, message: impl Into<String>) {
        self.0.push(Diagnostic {
            severity,
            pass: pass.to_string(),
            message: message.into(),
        });
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.0.iter()
    }

    pub fn has_errors(&self) -> bool {
        self.0.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.0.iter().filter(|d| d.severity == Severity::Warning)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A pass aborts the pipeline by returning this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    pub pass: String,
    pub message: String,
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// Mutable state threaded through the pipeline: diagnostics plus the
/// analysis results later passes and the runtime consume.
#[derive(Debug, Default)]
pub struct PassContext {
    pub diags: Diagnostics,
    /// RPC services for which stub functions were generated.
    pub rpc_services: BTreeSet<u32>,
    /// External symbol → classification decided by the resolver.
    pub external_resolutions: BTreeMap<String, crate::symbols::SymbolClass>,
    /// Set by `ParallelismExpansion`.
    pub expansion: Option<crate::pipeline::ExpansionInfo>,
    /// Symbols removed by dead-symbol elimination.
    pub removed_symbols: Vec<String>,
}

/// A module transformation or analysis.
pub trait Pass {
    fn name(&self) -> &'static str;

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError>;
}

/// Run a sequence of passes in order, stopping at the first hard failure.
pub fn run_passes(
    passes: &[&dyn Pass],
    module: &mut Module,
    cx: &mut PassContext,
) -> Result<(), PassError> {
    for p in passes {
        p.run(module, cx)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::Function;

    struct Rename;

    impl Pass for Rename {
        fn name(&self) -> &'static str {
            "rename"
        }

        fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
            module.rename_function("a", "b");
            cx.diags.push(Severity::Note, self.name(), "renamed a to b");
            Ok(())
        }
    }

    struct Fail;

    impl Pass for Fail {
        fn name(&self) -> &'static str {
            "fail"
        }

        fn run(&self, _: &mut Module, _: &mut PassContext) -> Result<(), PassError> {
            Err(PassError {
                pass: "fail".into(),
                message: "nope".into(),
            })
        }
    }

    #[test]
    fn passes_run_in_order_and_stop_on_error() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("a", 0));
        let mut cx = PassContext::default();
        let err = run_passes(&[&Rename, &Fail, &Rename], &mut m, &mut cx).unwrap_err();
        assert_eq!(err.pass, "fail");
        assert!(m.function("b").is_some());
        assert_eq!(cx.diags.len(), 1);
    }

    #[test]
    fn diagnostics_severity_queries() {
        let mut d = Diagnostics::default();
        assert!(d.is_empty());
        d.push(Severity::Warning, "p", "w");
        assert!(!d.has_errors());
        assert_eq!(d.warnings().count(), 1);
        d.push(Severity::Error, "p", "e");
        assert!(d.has_errors());
        assert_eq!(d.len(), 2);
    }
}
