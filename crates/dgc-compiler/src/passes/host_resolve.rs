use crate::pass::{Pass, PassContext, PassError, Severity};
use crate::symbols::{classify_external, SymbolClass};
use dgc_ir::{Attr, CallGraph, Function, Module};

/// The "custom LTO" pass of the extended direct-GPU-compilation work \[27\]:
/// resolve every external reference without user-provided stub code.
///
/// * Symbols the partial device libc implements are marked device-callable.
/// * Host-only symbols with an RPC mapping get a generated stub function
///   `__rpc_<name>` carrying `!rpc_stub(service)`; every call edge is
///   rewritten to the stub, and the service is recorded so the runtime can
///   enable it.
/// * Remaining symbols draw an error if reachable from the entry point, a
///   warning otherwise.
pub struct HostCallResolver;

impl Pass for HostCallResolver {
    fn name(&self) -> &'static str {
        "host-call-resolver"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        let entry = if module.function(super::USER_MAIN).is_some() {
            super::USER_MAIN
        } else {
            "main"
        };
        let reachable = CallGraph::build(module).reachable_from(entry);

        let externals: Vec<String> = module
            .external_functions()
            .map(|f| f.name.clone())
            .collect();
        let mut stubs = 0usize;
        for name in externals {
            // Skip externals a previous run already processed.
            if cx.external_resolutions.contains_key(&name) {
                continue;
            }
            let class = classify_external(&name);
            cx.external_resolutions.insert(name.clone(), class);
            match class {
                SymbolClass::DeviceLibc => {
                    let f = module.function_mut(&name).expect("listed above");
                    f.attrs.add(Attr::DeclareTarget);
                    f.attrs.add(Attr::NoHost);
                }
                SymbolClass::Rpc(service) => {
                    let stub_name = format!("__rpc_{name}");
                    if module.function(&stub_name).is_none() {
                        let mut stub = Function::defined(&stub_name, 0);
                        stub.attrs.add(Attr::DeclareTarget);
                        stub.attrs.add(Attr::NoHost);
                        stub.attrs.add(Attr::RpcStub(service));
                        module.add_function(stub);
                    }
                    // Rewrite all call edges to go through the stub.
                    for f in &mut module.functions {
                        if f.name == stub_name {
                            continue;
                        }
                        for c in &mut f.callees {
                            if *c == name {
                                *c = stub_name.clone();
                            }
                        }
                    }
                    cx.rpc_services.insert(service);
                    stubs += 1;
                }
                SymbolClass::HostOnly => {
                    let severity = if reachable.contains(&name) {
                        Severity::Error
                    } else {
                        Severity::Warning
                    };
                    cx.diags.push(
                        severity,
                        self.name(),
                        format!("'{name}' cannot execute on the device and has no RPC mapping"),
                    );
                }
            }
        }
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!(
                "generated {stubs} RPC stubs across {} services",
                cx.rpc_services.len()
            ),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use host_rpc::{SERVICE_FS, SERVICE_STDIO};

    fn module() -> Module {
        let mut m = Module::new("t");
        m.add_function(
            Function::defined("__user_main", 2).with_callees(&["printf", "malloc", "work"]),
        );
        m.add_function(Function::defined("work", 0).with_callees(&["fopen", "sqrt"]));
        m.add_function(Function::external("printf").with_variadic());
        m.add_function(Function::external("malloc"));
        m.add_function(Function::external("fopen"));
        m.add_function(Function::external("sqrt"));
        m
    }

    #[test]
    fn generates_stubs_and_rewrites_edges() {
        let mut m = module();
        let mut cx = PassContext::default();
        HostCallResolver.run(&mut m, &mut cx).unwrap();

        let stub = m.function("__rpc_printf").unwrap();
        assert_eq!(stub.attrs.rpc_service(), Some(SERVICE_STDIO));
        assert!(stub.defined);
        assert!(m
            .function("__user_main")
            .unwrap()
            .callees
            .contains(&"__rpc_printf".to_string()));
        assert!(m
            .function("work")
            .unwrap()
            .callees
            .contains(&"__rpc_fopen".to_string()));
        assert_eq!(
            cx.rpc_services.iter().copied().collect::<Vec<_>>(),
            vec![SERVICE_STDIO, SERVICE_FS]
        );
    }

    #[test]
    fn device_libc_symbols_marked_not_stubbed() {
        let mut m = module();
        let mut cx = PassContext::default();
        HostCallResolver.run(&mut m, &mut cx).unwrap();
        assert!(m.function("malloc").unwrap().attrs.is_nohost_device());
        assert!(m.function("__rpc_malloc").is_none());
        assert!(m
            .function("work")
            .unwrap()
            .callees
            .contains(&"sqrt".to_string()));
    }

    #[test]
    fn reachable_host_only_is_an_error() {
        let mut m = module();
        m.function_mut("work").unwrap().callees.push("fork".into());
        m.add_function(Function::external("fork"));
        let mut cx = PassContext::default();
        HostCallResolver.run(&mut m, &mut cx).unwrap();
        assert!(cx.diags.has_errors());
    }

    #[test]
    fn unreachable_host_only_is_a_warning() {
        let mut m = module();
        m.add_function(Function::external("fork"));
        let mut cx = PassContext::default();
        HostCallResolver.run(&mut m, &mut cx).unwrap();
        assert!(!cx.diags.has_errors());
        assert!(cx.diags.warnings().any(|d| d.message.contains("fork")));
    }

    #[test]
    fn idempotent() {
        let mut m = module();
        let mut cx = PassContext::default();
        HostCallResolver.run(&mut m, &mut cx).unwrap();
        let once = m.clone();
        HostCallResolver.run(&mut m, &mut cx).unwrap();
        assert_eq!(m, once);
    }

    #[test]
    fn module_still_verifies_after_rewrite() {
        let mut m = module();
        HostCallResolver
            .run(&mut m, &mut PassContext::default())
            .unwrap();
        assert!(m.verify().is_empty(), "{:?}", m.verify());
    }
}
