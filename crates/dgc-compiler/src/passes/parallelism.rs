use crate::pass::{Pass, PassContext, PassError, Severity};
use crate::pipeline::ExpansionInfo;
use dgc_ir::{Attr, CallGraph, Module};

/// The GPU-first analysis of the extension work \[27\]: can the parallel
/// regions reachable from the entry point be expanded across multiple
/// teams, or does OpenMP semantics pin execution to a single team?
///
/// A region expands only if its function carries
/// [`Attr::OrderIndependentParallel`] (the IR-level stand-in for the
/// semantic analysis). The result feeds the runtime's choice between
/// single-team execution (\[26\]), multi-team expansion (\[27\]) and ensemble
/// execution (this paper).
pub struct ParallelismExpansion;

impl Pass for ParallelismExpansion {
    fn name(&self) -> &'static str {
        "parallelism-expansion"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        let entry = if module.function(super::USER_MAIN).is_some() {
            super::USER_MAIN
        } else {
            "main"
        };
        let reachable = CallGraph::build(module).reachable_from(entry);
        let mut regions = 0u32;
        let mut expandable_regions = 0u32;
        for name in &reachable {
            let f = module.function(name).expect("reachable implies present");
            let n = f.attrs.parallel_regions();
            regions += n;
            if n > 0 && f.attrs.has(&Attr::OrderIndependentParallel) {
                expandable_regions += n;
            }
        }
        let info = ExpansionInfo {
            parallel_regions: regions,
            expandable_regions,
            multi_team_eligible: regions > 0 && regions == expandable_regions,
        };
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!(
                "{} parallel regions reachable, {} expandable; multi-team eligible: {}",
                info.parallel_regions, info.expandable_regions, info.multi_team_eligible
            ),
        );
        cx.expansion = Some(info);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::Function;

    #[test]
    fn all_order_independent_is_eligible() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2).with_callees(&["k"]));
        m.add_function(
            Function::defined("k", 0)
                .with_attr(Attr::ParallelRegions(2))
                .with_attr(Attr::OrderIndependentParallel),
        );
        let mut cx = PassContext::default();
        ParallelismExpansion.run(&mut m, &mut cx).unwrap();
        let info = cx.expansion.unwrap();
        assert_eq!(info.parallel_regions, 2);
        assert!(info.multi_team_eligible);
    }

    #[test]
    fn one_dependent_region_blocks_expansion() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2).with_callees(&["a", "b"]));
        m.add_function(
            Function::defined("a", 0)
                .with_attr(Attr::ParallelRegions(1))
                .with_attr(Attr::OrderIndependentParallel),
        );
        m.add_function(Function::defined("b", 0).with_attr(Attr::ParallelRegions(1)));
        let mut cx = PassContext::default();
        ParallelismExpansion.run(&mut m, &mut cx).unwrap();
        let info = cx.expansion.unwrap();
        assert_eq!(info.parallel_regions, 2);
        assert_eq!(info.expandable_regions, 1);
        assert!(!info.multi_team_eligible);
    }

    #[test]
    fn no_parallel_regions_not_eligible() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2));
        let mut cx = PassContext::default();
        ParallelismExpansion.run(&mut m, &mut cx).unwrap();
        assert!(!cx.expansion.unwrap().multi_team_eligible);
    }

    #[test]
    fn unreachable_regions_ignored() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2));
        m.add_function(Function::defined("dead", 0).with_attr(Attr::ParallelRegions(7)));
        let mut cx = PassContext::default();
        ParallelismExpansion.run(&mut m, &mut cx).unwrap();
        assert_eq!(cx.expansion.unwrap().parallel_regions, 0);
    }
}
