use crate::pass::{Pass, PassContext, PassError, Severity};
use dgc_ir::{Attr, Module};

/// Apply the user-wrapper-header semantics (paper Fig. 3): prepend
/// `#pragma omp begin declare target device_type(nohost)` to all user code.
///
/// Every *defined* function and every global becomes
/// `declare target device_type(nohost)`; external declarations are left for
/// [`crate::passes::HostCallResolver`] to sort out.
pub struct DeclareTargetMarker;

impl Pass for DeclareTargetMarker {
    fn name(&self) -> &'static str {
        "declare-target-marker"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        let mut marked = 0usize;
        for f in &mut module.functions {
            if !f.defined || f.attrs.has(&Attr::MainWrapper) {
                continue;
            }
            f.attrs.add(Attr::DeclareTarget);
            f.attrs.add(Attr::NoHost);
            marked += 1;
        }
        for g in &mut module.globals {
            g.attrs.add(Attr::DeclareTarget);
            g.attrs.add(Attr::NoHost);
            marked += 1;
        }
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!("marked {marked} symbols declare target device_type(nohost)"),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::{Function, Global};

    #[test]
    fn marks_defined_functions_and_globals_only() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("main", 2));
        m.add_function(Function::external("printf"));
        m.add_function(Function::defined("wrapper", 0).with_attr(Attr::MainWrapper));
        m.add_global(Global::new("g", 8));
        let mut cx = PassContext::default();
        DeclareTargetMarker.run(&mut m, &mut cx).unwrap();

        assert!(m.function("main").unwrap().attrs.is_nohost_device());
        assert!(m.global("g").unwrap().attrs.is_nohost_device());
        assert!(!m.function("printf").unwrap().attrs.is_nohost_device());
        assert!(!m.function("wrapper").unwrap().attrs.is_nohost_device());
        assert_eq!(cx.diags.len(), 1);
    }

    #[test]
    fn idempotent() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("f", 0));
        let mut cx = PassContext::default();
        DeclareTargetMarker.run(&mut m, &mut cx).unwrap();
        let once = m.clone();
        DeclareTargetMarker.run(&mut m, &mut cx).unwrap();
        assert_eq!(m, once);
    }
}
