//! The individual compiler passes. See the crate docs for the pipeline
//! order; [`crate::compile`] wires them together.

mod dce;
mod declare_target;
mod globals_to_shared;
mod host_resolve;
mod main_canon;
mod parallelism;

pub use dce::DeadSymbolElim;
pub use declare_target::DeclareTargetMarker;
pub use globals_to_shared::GlobalsToShared;
pub use host_resolve::HostCallResolver;
pub use main_canon::{MainCanonicalizer, USER_MAIN};
pub use parallelism::ParallelismExpansion;
