use crate::pass::{Pass, PassContext, PassError, Severity};
use dgc_ir::{Attr, CallGraph, Module};

/// Remove functions unreachable from the entry point.
///
/// Globals are conservatively kept: the module IR records no use edges for
/// them, matching how the real framework leaves data layout to the linker.
pub struct DeadSymbolElim;

impl Pass for DeadSymbolElim {
    fn name(&self) -> &'static str {
        "dead-symbol-elim"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        let entry = if module.function(super::USER_MAIN).is_some() {
            super::USER_MAIN
        } else {
            "main"
        };
        let graph = CallGraph::build(module);
        let mut keep = graph.reachable_from(entry);
        // The loader's main wrapper (and whatever it calls) survives too.
        for f in &module.functions {
            if f.attrs.has(&Attr::MainWrapper) {
                keep.extend(graph.reachable_from(&f.name));
            }
        }
        let before = module.functions.len();
        let removed: Vec<String> = module
            .functions
            .iter()
            .filter(|f| !keep.contains(&f.name))
            .map(|f| f.name.clone())
            .collect();
        module.functions.retain(|f| keep.contains(&f.name));
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!("removed {} of {} functions", removed.len(), before),
        );
        cx.removed_symbols.extend(removed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::Function;

    #[test]
    fn removes_unreachable_functions() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2).with_callees(&["live"]));
        m.add_function(Function::defined("live", 0));
        m.add_function(Function::defined("dead", 0).with_callees(&["deader"]));
        m.add_function(Function::defined("deader", 0));
        m.add_function(Function::external("unused_extern"));
        let mut cx = PassContext::default();
        DeadSymbolElim.run(&mut m, &mut cx).unwrap();
        assert!(m.function("live").is_some());
        assert!(m.function("dead").is_none());
        assert!(m.function("unused_extern").is_none());
        assert_eq!(cx.removed_symbols.len(), 3);
        assert!(m.verify().is_empty());
    }

    #[test]
    fn keeps_main_wrapper_subtree() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2));
        m.add_function(
            Function::defined("main", 2)
                .with_attr(Attr::MainWrapper)
                .with_callees(&["map_args", "__user_main"]),
        );
        m.add_function(Function::defined("map_args", 0));
        let mut cx = PassContext::default();
        DeadSymbolElim.run(&mut m, &mut cx).unwrap();
        assert!(m.function("main").is_some());
        assert!(m.function("map_args").is_some());
    }

    #[test]
    fn reachable_externs_survive() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("__user_main", 2).with_callees(&["printf"]));
        m.add_function(Function::external("printf"));
        DeadSymbolElim
            .run(&mut m, &mut PassContext::default())
            .unwrap();
        assert!(m.function("printf").is_some());
    }
}
