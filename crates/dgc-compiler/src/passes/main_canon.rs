use crate::pass::{Pass, PassContext, PassError, Severity};
use dgc_ir::Module;

/// The symbol the user's `main` becomes (paper Fig. 3:
/// `int main(int, char *[]) asm("__user_main");`).
pub const USER_MAIN: &str = "__user_main";

/// Canonicalize the user `main` to `int main(int argc, char **argv)` and
/// rename it to [`USER_MAIN`], freeing the name `main` for the loader's
/// main wrapper.
pub struct MainCanonicalizer;

impl Pass for MainCanonicalizer {
    fn name(&self) -> &'static str {
        "main-canonicalizer"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        if module.function(USER_MAIN).is_some() {
            cx.diags.push(
                Severity::Note,
                self.name(),
                "main already canonicalized; nothing to do",
            );
            return Ok(());
        }
        let Some(main) = module.function("main") else {
            return Err(PassError {
                pass: self.name().into(),
                message: "module has no 'main' function".into(),
            });
        };
        if !main.defined {
            return Err(PassError {
                pass: self.name().into(),
                message: "'main' is declared but not defined in this module".into(),
            });
        }
        let arity = main.arity;
        match arity {
            2 => {}
            0 => cx.diags.push(
                Severity::Note,
                self.name(),
                "canonicalized 'int main(void)' to 'int main(int, char**)'",
            ),
            3 => cx.diags.push(
                Severity::Warning,
                self.name(),
                "'main(argc, argv, envp)': envp is not available on the device and was dropped",
            ),
            n => {
                return Err(PassError {
                    pass: self.name().into(),
                    message: format!("'main' has unsupported arity {n}"),
                })
            }
        }
        module.function_mut("main").expect("checked above").arity = 2;
        assert!(module.rename_function("main", USER_MAIN));
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!("renamed 'main' to '{USER_MAIN}'"),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::{Attr, Function};

    #[test]
    fn renames_and_canonicalizes() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("main", 0));
        m.add_function(Function::defined("caller", 0).with_callees(&["main"]));
        let mut cx = PassContext::default();
        MainCanonicalizer.run(&mut m, &mut cx).unwrap();
        let um = m.function(USER_MAIN).unwrap();
        assert_eq!(um.arity, 2);
        assert!(um.attrs.has(&Attr::RenamedFrom("main".into())));
        assert_eq!(m.function("caller").unwrap().callees, vec![USER_MAIN]);
        assert!(m.function("main").is_none());
    }

    #[test]
    fn envp_variant_warns() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("main", 3));
        let mut cx = PassContext::default();
        MainCanonicalizer.run(&mut m, &mut cx).unwrap();
        assert!(cx.diags.warnings().any(|d| d.message.contains("envp")));
        assert_eq!(m.function(USER_MAIN).unwrap().arity, 2);
    }

    #[test]
    fn missing_main_is_fatal() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("not_main", 0));
        let err = MainCanonicalizer
            .run(&mut m, &mut PassContext::default())
            .unwrap_err();
        assert!(err.message.contains("no 'main'"));
    }

    #[test]
    fn extern_main_is_fatal() {
        let mut m = Module::new("t");
        m.add_function(Function::external("main"));
        assert!(MainCanonicalizer
            .run(&mut m, &mut PassContext::default())
            .is_err());
    }

    #[test]
    fn weird_arity_is_fatal() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("main", 5));
        assert!(MainCanonicalizer
            .run(&mut m, &mut PassContext::default())
            .is_err());
    }

    #[test]
    fn idempotent_after_rename() {
        let mut m = Module::new("t");
        m.add_function(Function::defined("main", 2));
        let mut cx = PassContext::default();
        MainCanonicalizer.run(&mut m, &mut cx).unwrap();
        let once = m.clone();
        MainCanonicalizer.run(&mut m, &mut cx).unwrap();
        assert_eq!(m, once);
    }
}
