use crate::pass::{Pass, PassContext, PassError, Severity};
use dgc_ir::{GlobalPlacement, Module};

/// Relocate global variables for safe ensemble execution — the compiler
/// transform §3.3 of the ensemble paper proposes as the fix for the
/// isolation hazard of shared globals.
///
/// Placement policy:
/// * `const` globals → [`GlobalPlacement::Constant`] (read-only, safe to
///   share between instances);
/// * mutable globals that fit the remaining shared-memory budget →
///   [`GlobalPlacement::TeamShared`] (one copy per team = per instance);
/// * everything else stays [`GlobalPlacement::DeviceGlobal`] with a
///   warning: concurrent instances will race on it.
pub struct GlobalsToShared {
    /// Shared-memory budget available for relocated globals, bytes.
    pub shared_budget: u64,
}

impl Default for GlobalsToShared {
    fn default() -> Self {
        // Leave the rest of the 164 KB A100 shared memory to the runtime.
        Self {
            shared_budget: 64 * 1024,
        }
    }
}

impl Pass for GlobalsToShared {
    fn name(&self) -> &'static str {
        "globals-to-shared"
    }

    fn run(&self, module: &mut Module, cx: &mut PassContext) -> Result<(), PassError> {
        let mut budget = self.shared_budget;
        let mut relocated = 0usize;
        // Deterministic order: process globals as declared.
        for g in &mut module.globals {
            if g.is_const {
                g.placement = GlobalPlacement::Constant;
                continue;
            }
            if g.placement == GlobalPlacement::TeamShared {
                // Already relocated on a previous run — it still occupies
                // its share of the budget (idempotence).
                budget = budget.saturating_sub(g.size);
                relocated += 1;
                continue;
            }
            if g.size <= budget {
                g.placement = GlobalPlacement::TeamShared;
                budget -= g.size;
                relocated += 1;
            } else {
                g.placement = GlobalPlacement::DeviceGlobal;
                cx.diags.push(
                    Severity::Warning,
                    self.name(),
                    format!(
                        "mutable global @{} ({} B) exceeds the shared-memory budget; \
                         concurrent ensemble instances may race on it",
                        g.name, g.size
                    ),
                );
            }
        }
        cx.diags.push(
            Severity::Note,
            self.name(),
            format!(
                "relocated {relocated} mutable globals to team-shared memory ({} B budget left)",
                budget
            ),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_ir::Global;

    #[test]
    fn const_globals_become_constant() {
        let mut m = Module::new("t");
        m.add_global(Global::new("table", 1 << 20).constant());
        GlobalsToShared::default()
            .run(&mut m, &mut PassContext::default())
            .unwrap();
        assert_eq!(
            m.global("table").unwrap().placement,
            GlobalPlacement::Constant
        );
    }

    #[test]
    fn small_mutables_relocate_until_budget() {
        let mut m = Module::new("t");
        m.add_global(Global::new("a", 100));
        m.add_global(Global::new("b", 100));
        m.add_global(Global::new("c", 100));
        let mut cx = PassContext::default();
        GlobalsToShared { shared_budget: 250 }
            .run(&mut m, &mut cx)
            .unwrap();
        assert_eq!(
            m.global("a").unwrap().placement,
            GlobalPlacement::TeamShared
        );
        assert_eq!(
            m.global("b").unwrap().placement,
            GlobalPlacement::TeamShared
        );
        assert_eq!(
            m.global("c").unwrap().placement,
            GlobalPlacement::DeviceGlobal
        );
        assert!(cx.diags.warnings().any(|d| d.message.contains("@c")));
    }

    #[test]
    fn huge_mutable_warns_about_races() {
        let mut m = Module::new("t");
        m.add_global(Global::new("big", 10 << 20));
        let mut cx = PassContext::default();
        GlobalsToShared::default().run(&mut m, &mut cx).unwrap();
        assert_eq!(
            m.global("big").unwrap().placement,
            GlobalPlacement::DeviceGlobal
        );
        assert!(cx.diags.warnings().any(|d| d.message.contains("race")));
    }

    #[test]
    fn idempotent() {
        let mut m = Module::new("t");
        m.add_global(Global::new("a", 128));
        m.add_global(Global::new("big", 1 << 30));
        let mut cx = PassContext::default();
        let p = GlobalsToShared::default();
        p.run(&mut m, &mut cx).unwrap();
        let once = m.clone();
        p.run(&mut m, &mut cx).unwrap();
        assert_eq!(m, once);
    }
}
