//! Property-based tests for the compiler pipeline.

use dgc_compiler::{compile, CompilerOptions};
use dgc_ir::{Attr, Function, Global, Module};
use proptest::prelude::*;

/// Random benchmark-shaped modules: a main, helper functions with random
/// call edges among themselves, random known external references, and a
/// few globals.
fn arb_module() -> impl Strategy<Value = Module> {
    let externs = prop::collection::vec(
        prop::sample::select(vec![
            "printf", "malloc", "free", "sqrt", "atoi", "fopen", "fread", "exit", "time", "strcmp",
            "memcpy", "rand",
        ]),
        0..6,
    );
    let helpers = 1usize..5;
    let edges = prop::collection::vec((0usize..5, 0usize..10), 0..12);
    let globals = prop::collection::vec((1u64..200_000, any::<bool>()), 0..4);
    (externs, helpers, edges, globals).prop_map(|(externs, helpers, edges, globals)| {
        let mut m = Module::new("prop");
        let helper_names: Vec<String> = (0..helpers).map(|i| format!("helper{i}")).collect();
        let mut externs: Vec<&str> = externs;
        externs.sort();
        externs.dedup();
        let all: Vec<String> = helper_names
            .iter()
            .cloned()
            .chain(externs.iter().map(|s| s.to_string()))
            .collect();
        let mut main = Function::defined("main", 2);
        if let Some(first) = helper_names.first() {
            main.callees.push(first.clone());
        }
        m.add_function(main);
        for (i, h) in helper_names.iter().enumerate() {
            let mut f = Function::defined(h, 1);
            if i == 0 {
                f.attrs.add(Attr::ParallelRegions(1));
                f.attrs.add(Attr::OrderIndependentParallel);
            }
            for &(from, to) in &edges {
                if from % helper_names.len() == i && !all.is_empty() {
                    f.callees.push(all[to % all.len()].clone());
                }
            }
            m.add_function(f);
        }
        for e in &externs {
            m.add_function(Function::external(e).with_variadic());
        }
        for (i, (size, is_const)) in globals.iter().enumerate() {
            let mut g = Global::new(&format!("g{i}"), *size);
            if *is_const {
                g = g.constant();
            }
            m.add_global(g);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline always produces a structurally valid module with the
    /// canonical entry point, and every surviving defined function except
    /// the wrapper is device-marked.
    #[test]
    fn pipeline_preserves_validity(m in arb_module()) {
        let image = compile(m, &CompilerOptions::default()).unwrap();
        prop_assert!(image.module.verify().is_empty());
        prop_assert!(image.module.function("__user_main").is_some());
        for f in image.module.defined_functions() {
            if !f.attrs.has(&Attr::MainWrapper) {
                prop_assert!(f.attrs.is_nohost_device(), "{} unmarked", f.name);
            }
        }
    }

    /// Compilation is idempotent at the image level: compiling the output
    /// module again (it already has __user_main) converges.
    #[test]
    fn pipeline_converges(m in arb_module()) {
        let once = compile(m, &CompilerOptions::default()).unwrap();
        let twice = compile(once.module.clone(), &CompilerOptions::default()).unwrap();
        prop_assert_eq!(once.module, twice.module);
        prop_assert_eq!(once.rpc_services, twice.rpc_services);
    }

    /// Every call edge that referenced an RPC-able external is rewritten:
    /// no reachable function calls a bare host symbol after the pipeline.
    #[test]
    fn no_unresolved_host_calls_survive(m in arb_module()) {
        let image = compile(m, &CompilerOptions::default()).unwrap();
        for f in &image.module.functions {
            for callee in &f.callees {
                let target = image.module.function(callee).expect("verified module");
                if !target.defined {
                    // Surviving externals must be device-libc-provided.
                    prop_assert!(
                        target.attrs.is_nohost_device(),
                        "@{} still calls unresolved @{}",
                        f.name,
                        callee
                    );
                }
            }
        }
    }

    /// Every global ends the pipeline with a placement, and placements
    /// respect constness.
    #[test]
    fn globals_always_placed(m in arb_module()) {
        let image = compile(m, &CompilerOptions::default()).unwrap();
        for g in &image.module.globals {
            prop_assert!(image.global_placements.contains_key(&g.name));
            if g.is_const {
                prop_assert_eq!(g.placement, dgc_ir::GlobalPlacement::Constant);
            }
        }
        // Shared-memory budget respected.
        prop_assert!(image.team_shared_globals_bytes() <= CompilerOptions::default().shared_budget);
    }

    /// The compiled module's textual form re-parses to the same module
    /// (the image is serializable as source).
    #[test]
    fn compiled_module_roundtrips(m in arb_module()) {
        let image = compile(m, &CompilerOptions::default()).unwrap();
        let reparsed = Module::parse(&image.module.to_string()).unwrap();
        prop_assert_eq!(image.module, reparsed);
    }
}
