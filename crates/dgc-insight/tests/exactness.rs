//! Acceptance properties: the critical path's span sum reproduces the
//! driver-reported makespan **bit-exactly** across every driver — plain,
//! batched, resilient under injected faults, and multi-device sharded —
//! and every blame table's percentages fold to exactly 100.

use device_libc::dl_printf;
use dgc_core::{
    run_ensemble_batched_traced, run_ensemble_traced, AppContext, EnsembleOptions, HostApp,
};
use dgc_fault::{run_ensemble_resilient, FaultPlan, RecoveryPolicy};
use dgc_insight::{
    blame_devices, blame_instances, blame_stalls, folded_stacks, render_report, validate_folded,
    CriticalPath,
};
use dgc_obs::Recorder;
use dgc_sched::{run_ensemble_sharded, Placement};
use gpu_arch::DeviceRegistry;
use gpu_sim::{DeviceFleet, Gpu, KernelError, TeamCtx};
use host_rpc::HostServices;
use proptest::prelude::*;

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines() -> Vec<Vec<String>> {
    dgc_core::parse_arg_file("-n 60\n-n 120\n-n 40\n").unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        num_instances: n,
        thread_limit: 32,
        cycle_args: true,
        ..Default::default()
    }
}

/// Shared postcondition: bit-exact path sum, exact-100 blame folds, and
/// a flamegraph that validates.
fn assert_insight_invariants(graph: &dgc_obs::SpanGraph, reported_makespan_s: f64) {
    let path = CriticalPath::from_graph(graph);
    assert_eq!(
        path.span_sum_s.to_bits(),
        reported_makespan_s.to_bits(),
        "span sum {} != reported makespan {}",
        path.span_sum_s,
        reported_makespan_s
    );
    for (name, table) in [
        ("stalls", blame_stalls(graph, &path)),
        ("devices", blame_devices(graph, &path)),
        ("instances", blame_instances(graph, &path)),
    ] {
        assert!(!table.is_empty(), "{name} blame table empty");
        assert_eq!(table.pct_sum(), 100.0, "{name} blame fold != 100");
    }
    let stacks = folded_stacks(graph);
    validate_folded(&stacks).expect("flamegraph validates");
    let report = render_report(graph, Some(reported_makespan_s));
    assert!(report.contains("bit-exactly"), "{report}");
}

#[test]
fn plain_run_replays_bit_exactly() {
    let mut gpu = Gpu::a100();
    let res = run_ensemble_traced(
        &mut gpu,
        &app(),
        &lines(),
        &opts(3),
        HostServices::default(),
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(res.all_succeeded());
    assert_insight_invariants(&res.graph, res.total_time_s);
    // The critical chain is populated (collect_detail is always on).
    assert!(res.graph.launches().next().unwrap().chain.last().is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched accumulation: any instance count and batch size replays
    /// the reported total bit-exactly.
    #[test]
    fn batched_runs_replay_bit_exactly(n in 1u32..9, batch in 1u32..5) {
        let mut gpu = Gpu::a100();
        let res = run_ensemble_batched_traced(
            &mut gpu, &app(), &lines(), &opts(n), batch, &mut Recorder::disabled(),
        )
        .unwrap();
        prop_assert!(res.all_succeeded());
        let path = CriticalPath::from_graph(&res.graph);
        prop_assert_eq!(path.span_sum_s.to_bits(), res.total_time_s.to_bits());
        assert_insight_invariants(&res.graph, res.total_time_s);
        // Every instance id appears in the graph exactly once.
        let mut seen: Vec<u32> = res
            .graph
            .launches()
            .flat_map(|l| l.instances.iter().copied())
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<u32>>());
    }

    /// Fault-retry accumulation: scattered traps force retry rounds with
    /// backoff, and the replay (backoff included) stays bit-exact; blame
    /// folds stay exactly 100 (the property the ISSUE names).
    #[test]
    fn fault_retry_runs_replay_bit_exactly(
        n in 2u32..8,
        batch in 0u32..4,
        traps in 1u32..4,
        seed in 0u64..200,
    ) {
        let plan = FaultPlan::scatter_traps(seed, n, traps.min(n));
        let policy = RecoveryPolicy {
            max_attempts: 4,
            ..Default::default()
        };
        let mut gpu = Gpu::a100();
        let res = run_ensemble_resilient(
            &mut gpu, &app(), &lines(), &opts(n), batch, &plan, &policy,
            &mut Recorder::disabled(),
        )
        .unwrap();
        assert_insight_invariants(&res.ensemble.graph, res.ensemble.total_time_s);
        // Retries happened and are visible as rounds (or the plan's traps
        // all landed on the same instances — rounds is still >= 1).
        if res.recovery.retried > 0 {
            prop_assert!(res.ensemble.graph.rounds() > 1);
        }
    }

    /// Sharded accumulation: the concurrent-round lane fold reproduces
    /// the multi-device makespan bit-exactly for every placement.
    #[test]
    fn sharded_runs_replay_bit_exactly(
        n in 1u32..9,
        batch in 0u32..3,
        devices in 1usize..4,
        policy in 0usize..3,
    ) {
        let spec = vec!["a100"; devices].join(",");
        let mut fleet = DeviceFleet::from_registry(&DeviceRegistry::parse(&spec).unwrap());
        let placement = Placement::all()[policy];
        let res = run_ensemble_sharded(
            &mut fleet, &app(), &lines(), &opts(n), batch, placement,
            &mut Recorder::disabled(),
        )
        .unwrap();
        prop_assert!(res.all_succeeded());
        let path = CriticalPath::from_graph(&res.ensemble.graph);
        prop_assert_eq!(path.span_sum_s.to_bits(), res.makespan_s().to_bits());
        assert_insight_invariants(&res.ensemble.graph, res.ensemble.total_time_s);
        // Each device lane that got instances appears in the graph.
        let lanes = res.ensemble.graph.devices() as usize;
        let busy = res.assignment.iter().filter(|a| !a.is_empty()).count();
        prop_assert!(lanes >= busy, "lanes {} < busy devices {}", lanes, busy);
    }
}

/// A two-device run on a heterogeneous fleet: the insight report blames
/// the slow device for the larger share of the makespan.
#[test]
fn device_blame_follows_the_slow_lane() {
    let reg = DeviceRegistry::parse("a100,a100*0.25").unwrap();
    let mut fleet = DeviceFleet::from_registry(&reg);
    let res = run_ensemble_sharded(
        &mut fleet,
        &app(),
        &lines(),
        &opts(4),
        0,
        Placement::RoundRobin,
        &mut Recorder::disabled(),
    )
    .unwrap();
    assert!(res.all_succeeded());
    let path = CriticalPath::from_graph(&res.ensemble.graph);
    assert_eq!(
        path.span_sum_s.to_bits(),
        res.makespan_s().to_bits(),
        "heterogeneous lane fold must stay bit-exact"
    );
    let table = blame_devices(&res.ensemble.graph, &path);
    // Round-robin sends half the instances to the quarter-speed device:
    // its lane is the critical one and owns 100% of the blame.
    assert_eq!(table.rows[0].label, "dev1");
    assert_eq!(table.pct_sum(), 100.0);
}
