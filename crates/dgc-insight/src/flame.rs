//! Folded-stack flamegraph export.
//!
//! [`folded_stacks`] renders a [`SpanGraph`] in the folded format the
//! `inferno` / `flamegraph.pl` toolchain consumes: one stack per line,
//! semicolon-separated frames, a positive integer sample count (here:
//! microseconds of simulated wall time). The frame hierarchy is
//!
//! ```text
//! dev{d};round {r};{kernel};{h2d argv | launch overhead | d2h results}
//! dev{d};round {r};{kernel};instance {i};{stall bucket | kernel}
//! host;backoff;round {r}
//! ```
//!
//! so a flamegraph groups time by device lane, then retry round, then
//! kernel, then instance, with the leaf frame naming what the time was
//! spent on. [`validate_folded`] is the format's smoke check, used by
//! `dgc-insight flame-check` in CI.

use dgc_obs::{SpanGraph, SpanNode};
use std::collections::BTreeMap;

/// Round a span to integer microseconds (the folded sample count). Spans
/// under half a microsecond vanish — the format has no fractions.
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

/// Render the graph as folded stacks, aggregated (equal stacks merge)
/// and sorted for deterministic output.
pub fn folded_stacks(g: &SpanGraph) -> String {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut add = |stack: String, n: u64| {
        if n > 0 {
            *counts.entry(stack).or_insert(0) += n;
        }
    };
    for node in &g.nodes {
        match node {
            SpanNode::Backoff { round, wait_s } => {
                add(format!("host;backoff;round {round}"), us(*wait_s));
            }
            SpanNode::Launch(l) => {
                let base = format!("dev{};round {};{}", l.device, l.round, l.kernel);
                add(format!("{base};h2d argv"), us(l.h2d_s));
                add(format!("{base};launch overhead"), us(l.overhead_s));
                add(format!("{base};d2h results"), us(l.d2h_s));
                let body_s = (l.kernel_s - l.overhead_s).max(0.0);
                if l.block_stalls.is_empty() {
                    // No per-block stall decomposition: split the kernel
                    // body evenly across the launch's instances.
                    if l.instances.is_empty() {
                        add(format!("{base};kernel"), us(body_s));
                    } else {
                        let per = body_s / l.instances.len() as f64;
                        for &i in &l.instances {
                            add(format!("{base};instance {i};kernel"), us(per));
                        }
                    }
                    continue;
                }
                for (b, stalls) in l.block_stalls.iter().enumerate() {
                    let members = l.block_instances(b as u32);
                    for (name, cycles) in stalls.named() {
                        let bucket_s = cycles * l.cycle_s;
                        if members.is_empty() {
                            add(format!("{base};block {b};{name}"), us(bucket_s));
                        } else {
                            let per = bucket_s / members.len() as f64;
                            for &i in members {
                                add(format!("{base};instance {i};{name}"), us(per));
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for (stack, n) in counts {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Validate a folded-stack document: every non-empty line must be
/// `frame(;frame)* <positive integer>` with no empty frames. Returns the
/// number of stacks on success.
pub fn validate_folded(text: &str) -> Result<usize, String> {
    let mut stacks = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: no sample count"));
        };
        let n: u64 = count
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample count '{count}'"))?;
        if n == 0 {
            return Err(format!("line {lineno}: zero sample count"));
        }
        if stack.split(';').any(|frame| frame.trim().is_empty()) {
            return Err(format!("line {lineno}: empty frame in '{stack}'"));
        }
        stacks += 1;
    }
    if stacks == 0 {
        return Err("no stacks".into());
    }
    Ok(stacks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_obs::LaunchNode;
    use gpu_sim::StallBuckets;

    fn graph() -> SpanGraph {
        let mut g = SpanGraph::default();
        g.push_backoff(1, 10e-6);
        g.push_launch(LaunchNode {
            kernel: "app-x2".into(),
            device: 1,
            round: 0,
            concurrent: false,
            start_s: 0.0,
            h2d_s: 5e-6,
            kernel_s: 100e-6,
            d2h_s: 3e-6,
            total_s: 108e-6,
            overhead_s: 2e-6,
            cycle_s: 1e-6,
            waves: 1,
            teams_per_block: 1,
            instances: vec![7, 8],
            block_stalls: vec![
                StallBuckets {
                    compute: 50.0,
                    ..StallBuckets::default()
                },
                StallBuckets {
                    compute: 30.0,
                    mlp: 68.0,
                    ..StallBuckets::default()
                },
            ],
            wave_spans: vec![(0.0, 98.0, 2)],
            chain: Vec::new(),
        });
        g
    }

    #[test]
    fn folded_stacks_group_by_device_round_kernel_instance() {
        let text = folded_stacks(&graph());
        assert!(text.contains("host;backoff;round 1 10\n"), "{text}");
        assert!(text.contains("dev1;round 0;app-x2;h2d argv 5\n"), "{text}");
        assert!(
            text.contains("dev1;round 0;app-x2;launch overhead 2\n"),
            "{text}"
        );
        assert!(
            text.contains("dev1;round 0;app-x2;instance 7;compute 50\n"),
            "{text}"
        );
        assert!(
            text.contains("dev1;round 0;app-x2;instance 8;mlp 68\n"),
            "{text}"
        );
        // Zero buckets are dropped entirely.
        assert!(!text.contains("dram_bw"), "{text}");
        assert_eq!(validate_folded(&text).unwrap(), text.lines().count());
    }

    #[test]
    fn stall_free_launches_split_kernel_body_across_instances() {
        let mut g = graph();
        if let SpanNode::Launch(l) = &mut g.nodes[1] {
            l.block_stalls.clear();
        }
        let text = folded_stacks(&g);
        // Body 98 µs over two instances: 49 each.
        assert!(
            text.contains("dev1;round 0;app-x2;instance 7;kernel 49\n"),
            "{text}"
        );
        assert!(validate_folded(&text).is_ok());
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_folded("").is_err());
        assert!(validate_folded("\n\n").is_err());
        assert!(validate_folded("a;b").is_err());
        assert!(validate_folded("a;b zero").is_err());
        assert!(validate_folded("a;b 0").is_err());
        assert!(validate_folded("a;;b 5").is_err());
        assert_eq!(validate_folded("a;b 5\n\nc 1\n").unwrap(), 2);
    }
}
