//! Critical-path extraction and blame attribution.
//!
//! [`CriticalPath::from_graph`] walks a [`SpanGraph`] with the same
//! accumulation structure the drivers used, so [`CriticalPath::span_sum_s`]
//! equals [`SpanGraph::replay_makespan_s`] — and therefore the reported
//! makespan — **bit-exactly** for in-process graphs. The path is the
//! makespan's causal decomposition: backoff waits, serial launches, and
//! for each concurrent round the slowest device lane.
//!
//! [`BlameTable`] then answers "where did the time go": path seconds are
//! attributed to transfer, launch overhead, scheduling gaps and the
//! critical chain's stall buckets, or regrouped per device lane or per
//! instance. Every table's percentages fold to **exactly** `100.0` (the
//! last row absorbs the rounding residue — `x + (100 − x) == 100` holds
//! in IEEE double for any `x` in range), which makes "shares sum to 100"
//! a testable invariant instead of a rendering convention.

use dgc_obs::{LaunchNode, SpanGraph, SpanNode};

/// One segment of the critical path, in driver accumulation order.
#[derive(Debug, Clone, PartialEq)]
pub enum PathSegment {
    /// Simulated backoff wait before retry round `round`.
    Backoff { round: u32, wait_s: f64 },
    /// A serial (non-concurrent) launch; `node` indexes
    /// [`SpanGraph::nodes`]. `span_s` is the launch's exact addend.
    Launch { node: usize, span_s: f64 },
    /// A concurrent round's slowest device lane: `nodes` index that
    /// lane's launches; `span_s` is the lane's fold (the round's cost).
    Lane {
        round: u32,
        device: u32,
        nodes: Vec<usize>,
        span_s: f64,
    },
}

impl PathSegment {
    /// The segment's exact contribution to the makespan accumulator.
    pub fn span_s(&self) -> f64 {
        match self {
            PathSegment::Backoff { wait_s, .. } => *wait_s,
            PathSegment::Launch { span_s, .. } | PathSegment::Lane { span_s, .. } => *span_s,
        }
    }
}

/// The critical path of one ensemble run: the segments whose spans sum
/// (in accumulation order) to the reported makespan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    pub segments: Vec<PathSegment>,
    /// Fold of the segment spans in order — bit-exact against
    /// [`SpanGraph::replay_makespan_s`] for in-process graphs.
    pub span_sum_s: f64,
}

impl CriticalPath {
    /// Extract the critical path, mirroring the drivers' accumulation:
    /// backoffs and serial launches contribute directly; a run of
    /// concurrent launches of one round contributes its slowest device
    /// lane (the other lanes were hidden behind it).
    pub fn from_graph(g: &SpanGraph) -> CriticalPath {
        let mut segments = Vec::new();
        let mut i = 0usize;
        while i < g.nodes.len() {
            match &g.nodes[i] {
                SpanNode::Backoff { round, wait_s } => {
                    segments.push(PathSegment::Backoff {
                        round: *round,
                        wait_s: *wait_s,
                    });
                    i += 1;
                }
                SpanNode::Launch(n) if !n.concurrent => {
                    segments.push(PathSegment::Launch {
                        node: i,
                        span_s: n.total_s,
                    });
                    i += 1;
                }
                SpanNode::Launch(first) => {
                    let round = first.round;
                    // Per-device lanes in first-seen order, each folding
                    // its launches' addends from zero — exactly the
                    // sharded drivers' per-round accumulation.
                    let mut lanes: Vec<(u32, f64, Vec<usize>)> = Vec::new();
                    while let Some(SpanNode::Launch(m)) = g.nodes.get(i) {
                        if !m.concurrent || m.round != round {
                            break;
                        }
                        match lanes.iter_mut().find(|(d, _, _)| *d == m.device) {
                            Some(l) => {
                                l.1 += m.total_s;
                                l.2.push(i);
                            }
                            None => lanes.push((m.device, m.total_s, vec![i])),
                        }
                        i += 1;
                    }
                    let max = lanes.iter().fold(0.0f64, |m, &(_, t, _)| m.max(t));
                    // First lane whose fold equals the max: identical
                    // f64s, so `==` picks the same value the replay adds.
                    let (device, span_s, nodes) = lanes
                        .into_iter()
                        .find(|&(_, t, _)| t == max)
                        .unwrap_or((0, max, Vec::new()));
                    segments.push(PathSegment::Lane {
                        round,
                        device,
                        nodes,
                        span_s,
                    });
                }
            }
        }
        let span_sum_s = segments.iter().fold(0.0f64, |acc, s| acc + s.span_s());
        CriticalPath {
            segments,
            span_sum_s,
        }
    }

    /// The launches on the critical path, resolved against the graph.
    pub fn launches<'g>(&self, g: &'g SpanGraph) -> Vec<(usize, &'g LaunchNode)> {
        let resolve = |idx: usize| match &g.nodes[idx] {
            SpanNode::Launch(l) => Some((idx, l)),
            SpanNode::Backoff { .. } => None,
        };
        self.segments
            .iter()
            .flat_map(|s| match s {
                PathSegment::Backoff { .. } => Vec::new(),
                PathSegment::Launch { node, .. } => resolve(*node).into_iter().collect(),
                PathSegment::Lane { nodes, .. } => {
                    nodes.iter().filter_map(|&n| resolve(n)).collect()
                }
            })
            .collect()
    }

    /// Render the path as a markdown list, one segment per line.
    pub fn render(&self, g: &SpanGraph) -> String {
        let mut out = String::new();
        for s in &self.segments {
            match s {
                PathSegment::Backoff { round, wait_s } => {
                    out.push_str(&format!(
                        "- backoff before round {round}: {:.3} ms\n",
                        wait_s * 1e3
                    ));
                }
                PathSegment::Launch { node, span_s } => {
                    if let SpanNode::Launch(l) = &g.nodes[*node] {
                        out.push_str(&format!(
                            "- {} on dev{} (round {}): {:.3} ms ({} waves, {} instances)\n",
                            l.kernel,
                            l.device,
                            l.round,
                            span_s * 1e3,
                            l.waves,
                            l.instances.len()
                        ));
                    }
                }
                PathSegment::Lane {
                    round,
                    device,
                    nodes,
                    span_s,
                } => {
                    out.push_str(&format!(
                        "- round {round} critical lane dev{device}: {:.3} ms over {} launch(es)\n",
                        span_s * 1e3,
                        nodes.len()
                    ));
                }
            }
        }
        out
    }
}

/// One blame row: a labelled share of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameRow {
    pub label: String,
    pub seconds: f64,
    /// Share of the attributed total. Row percentages fold to exactly
    /// `100.0` (last row absorbs the residue).
    pub pct: f64,
}

/// A blame table over the critical path, rows sorted largest-first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlameTable {
    pub rows: Vec<BlameRow>,
    /// Sum of the attributed seconds (the denominator of `pct`).
    pub total_s: f64,
}

impl BlameTable {
    /// Build a table from `(label, seconds)` shares: same-label shares
    /// merge, non-positive shares drop, rows sort descending, and the
    /// last row's percentage is fixed up so the fold is exactly 100.
    pub fn from_shares(shares: Vec<(String, f64)>) -> BlameTable {
        let mut merged: Vec<(String, f64)> = Vec::new();
        for (label, secs) in shares {
            if secs <= 0.0 {
                continue;
            }
            match merged.iter_mut().find(|(l, _)| *l == label) {
                Some(m) => m.1 += secs,
                None => merged.push((label, secs)),
            }
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let total_s: f64 = merged.iter().map(|&(_, s)| s).sum();
        if merged.is_empty() || total_s <= 0.0 {
            return BlameTable::default();
        }
        let n = merged.len();
        let mut rows = Vec::with_capacity(n);
        // Fold the first n-1 percentages exactly as `pct_sum` will, then
        // let the last row be `100 - acc`: the re-fold telescopes to
        // `acc + (100 - acc) == 100.0` bit-exactly.
        let mut acc = 0.0f64;
        for (i, (label, seconds)) in merged.into_iter().enumerate() {
            let pct = if i + 1 == n {
                100.0 - acc
            } else {
                let p = seconds / total_s * 100.0;
                acc += p;
                p
            };
            rows.push(BlameRow {
                label,
                seconds,
                pct,
            });
        }
        BlameTable { rows, total_s }
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fold of the row percentages, in row order. Exactly `100.0` for
    /// any non-empty table.
    pub fn pct_sum(&self) -> f64 {
        self.rows.iter().fold(0.0f64, |a, r| a + r.pct)
    }

    /// Render as a markdown table.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("### {title}\n\n");
        if self.rows.is_empty() {
            out.push_str("(no attributed time)\n");
            return out;
        }
        out.push_str("| where | ms | % |\n|---|---:|---:|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {:.4} | {:.2} |\n",
                r.label,
                r.seconds * 1e3,
                r.pct
            ));
        }
        out
    }
}

/// Attribute each critical-path launch's time to transfer, launch
/// overhead, scheduling gaps and the critical chain's stall buckets.
/// Chains recorded without stall collection blame their residence as
/// plain `kernel` time.
pub fn blame_stalls(g: &SpanGraph, path: &CriticalPath) -> BlameTable {
    let mut shares: Vec<(String, f64)> = Vec::new();
    for s in &path.segments {
        if let PathSegment::Backoff { wait_s, .. } = s {
            shares.push(("backoff".into(), *wait_s));
        }
    }
    for (_, l) in path.launches(g) {
        shares.push(("transfer".into(), l.h2d_s + l.d2h_s));
        shares.push(("launch overhead".into(), l.overhead_s));
        if l.chain.is_empty() {
            shares.push(("kernel".into(), (l.kernel_s - l.overhead_s).max(0.0)));
            continue;
        }
        for hop in &l.chain {
            shares.push(("sched gap".into(), hop.gap_cycles * l.cycle_s));
            if hop.stall.total() > 0.0 {
                for (name, cycles) in hop.stall.named() {
                    shares.push((format!("stall: {name}"), cycles * l.cycle_s));
                }
            } else {
                let residence = (hop.end_cycle - hop.start_cycle) * l.cycle_s;
                shares.push(("kernel".into(), residence));
            }
        }
    }
    BlameTable::from_shares(shares)
}

/// Regroup the critical path per device lane (plus host backoff).
pub fn blame_devices(g: &SpanGraph, path: &CriticalPath) -> BlameTable {
    let mut shares: Vec<(String, f64)> = Vec::new();
    for s in &path.segments {
        match s {
            PathSegment::Backoff { wait_s, .. } => shares.push(("host backoff".into(), *wait_s)),
            PathSegment::Launch { node, span_s } => {
                if let SpanNode::Launch(l) = &g.nodes[*node] {
                    shares.push((format!("dev{}", l.device), *span_s));
                }
            }
            PathSegment::Lane { device, span_s, .. } => {
                shares.push((format!("dev{device}"), *span_s))
            }
        }
    }
    BlameTable::from_shares(shares)
}

/// Attribute critical-chain residence to the instances resident in each
/// chain block (split equally within a packed block). Launches without
/// a recorded chain split their whole span across their instances.
pub fn blame_instances(g: &SpanGraph, path: &CriticalPath) -> BlameTable {
    let mut shares: Vec<(String, f64)> = Vec::new();
    for s in &path.segments {
        if let PathSegment::Backoff { wait_s, .. } = s {
            shares.push(("host backoff".into(), *wait_s));
        }
    }
    for (_, l) in path.launches(g) {
        if l.chain.is_empty() {
            let per = l.total_s / l.instances.len().max(1) as f64;
            for &i in &l.instances {
                shares.push((format!("instance {i}"), per));
            }
            continue;
        }
        for hop in &l.chain {
            let residence = (hop.end_cycle - hop.start_cycle) * l.cycle_s;
            let members = l.block_instances(hop.block);
            if members.is_empty() {
                shares.push((format!("block {}", hop.block), residence));
            } else {
                let per = residence / members.len() as f64;
                for &i in members {
                    shares.push((format!("instance {i}"), per));
                }
            }
        }
    }
    BlameTable::from_shares(shares)
}

/// Wave-level Gantt summary: per launch, one row per scheduling wave
/// with an ASCII bar over the kernel's cycle span.
pub fn gantt(g: &SpanGraph) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    for l in g.launches() {
        out.push_str(&format!(
            "{} dev{} round {} @ {:.3} ms ({} waves, {} instances)\n",
            l.kernel,
            l.device,
            l.round,
            l.start_s * 1e3,
            l.waves,
            l.instances.len()
        ));
        let span_end = l
            .wave_spans
            .iter()
            .map(|&(_, end, _)| end)
            .fold(0.0f64, f64::max);
        for (w, &(start, end, blocks)) in l.wave_spans.iter().enumerate() {
            let col = |c: f64| {
                if span_end > 0.0 {
                    ((c / span_end) * WIDTH as f64).round() as usize
                } else {
                    0
                }
            };
            let (a, b) = (col(start).min(WIDTH), col(end).min(WIDTH));
            let bar: String = (0..WIDTH)
                .map(|i| if i >= a && i < b.max(a + 1) { '#' } else { '.' })
                .collect();
            out.push_str(&format!(
                "  wave {w:>2} |{bar}| {:>10.0}..{:<10.0} cyc, {blocks} block(s)\n",
                start, end
            ));
        }
    }
    out
}

/// The full post-hoc report: summary, critical path, the three blame
/// views and the wave Gantt, as one markdown document. When the
/// driver-reported makespan is supplied the summary states whether the
/// replayed span sum reproduced it bit-exactly.
pub fn render_report(g: &SpanGraph, reported_makespan_s: Option<f64>) -> String {
    let path = CriticalPath::from_graph(g);
    let mut out = String::from("# dgc-insight run analysis\n\n## Summary\n\n");
    out.push_str(&format!(
        "- launches: {} | devices: {} | rounds: {}\n",
        g.launches().count(),
        g.devices(),
        g.rounds()
    ));
    out.push_str(&format!(
        "- critical-path span sum: {:.6} ms over {} segment(s)\n",
        path.span_sum_s * 1e3,
        path.segments.len()
    ));
    if let Some(reported) = reported_makespan_s {
        let exact = path.span_sum_s == reported;
        out.push_str(&format!(
            "- reported makespan: {:.6} ms — span sum {}\n",
            reported * 1e3,
            if exact {
                "reproduces it bit-exactly"
            } else {
                "differs (post-hoc trace reconstruction is approximate)"
            }
        ));
    }
    out.push_str("\n## Critical path\n\n");
    out.push_str(&path.render(g));
    out.push_str("\n## Blame\n\n");
    out.push_str(&blame_stalls(g, &path).render("By stall bucket"));
    out.push('\n');
    out.push_str(&blame_devices(g, &path).render("By device"));
    out.push('\n');
    out.push_str(&blame_instances(g, &path).render("By instance"));
    out.push_str("\n## Wave Gantt\n\n```text\n");
    out.push_str(&gantt(g));
    out.push_str("```\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_obs::LaunchNode;

    fn launch(device: u32, round: u32, concurrent: bool, total_s: f64) -> LaunchNode {
        LaunchNode {
            kernel: "app-x1".into(),
            device,
            round,
            concurrent,
            start_s: 0.0,
            h2d_s: total_s * 0.25,
            kernel_s: total_s * 0.5,
            d2h_s: total_s * 0.25,
            total_s,
            overhead_s: 0.0,
            cycle_s: 1e-9,
            waves: 1,
            teams_per_block: 1,
            instances: vec![0],
            block_stalls: Vec::new(),
            wave_spans: vec![(0.0, 100.0, 1)],
            chain: Vec::new(),
        }
    }

    #[test]
    fn path_span_sum_matches_replay_bit_exactly() {
        // Association-sensitive values, a backoff, and a concurrent round.
        let mut g = SpanGraph::default();
        g.push_launch(launch(0, 0, false, 0.1));
        g.push_launch(launch(0, 0, false, 0.2));
        g.push_backoff(1, 0.3);
        g.push_launch(launch(0, 1, true, 0.05));
        g.push_launch(launch(1, 1, true, 0.07));
        g.push_launch(launch(0, 1, true, 0.04));
        let path = CriticalPath::from_graph(&g);
        assert_eq!(path.span_sum_s, g.replay_makespan_s());
        // The concurrent round picked dev0's lane (0.05 + 0.04 > 0.07).
        let lane = path
            .segments
            .iter()
            .find_map(|s| match s {
                PathSegment::Lane { device, nodes, .. } => Some((*device, nodes.len())),
                _ => None,
            })
            .unwrap();
        assert_eq!(lane, (0, 2));
    }

    #[test]
    fn blame_tables_fold_to_exactly_one_hundred() {
        let mut g = SpanGraph::default();
        g.push_launch(launch(0, 0, false, 0.123));
        g.push_backoff(1, 0.017);
        g.push_launch(launch(0, 1, false, 0.456));
        let path = CriticalPath::from_graph(&g);
        for table in [
            blame_stalls(&g, &path),
            blame_devices(&g, &path),
            blame_instances(&g, &path),
        ] {
            assert!(!table.is_empty());
            assert_eq!(table.pct_sum(), 100.0);
        }
    }

    #[test]
    fn empty_and_zero_share_tables_are_empty() {
        assert!(BlameTable::from_shares(Vec::new()).is_empty());
        assert!(BlameTable::from_shares(vec![("x".into(), 0.0), ("y".into(), -1.0)]).is_empty());
        let single = BlameTable::from_shares(vec![("only".into(), 0.5)]);
        assert_eq!(single.rows.len(), 1);
        assert_eq!(single.rows[0].pct, 100.0);
        assert_eq!(single.pct_sum(), 100.0);
    }

    #[test]
    fn same_label_shares_merge_and_sort_descending() {
        let t = BlameTable::from_shares(vec![
            ("a".into(), 0.1),
            ("b".into(), 0.5),
            ("a".into(), 0.2),
        ]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].label, "b");
        assert!((t.rows[1].seconds - 0.3).abs() < 1e-15);
        assert_eq!(t.pct_sum(), 100.0);
    }

    #[test]
    fn report_renders_all_sections_and_flags_exactness() {
        let mut g = SpanGraph::default();
        g.push_launch(launch(0, 0, false, 0.2));
        let reported = g.replay_makespan_s();
        let text = render_report(&g, Some(reported));
        for needle in [
            "## Summary",
            "## Critical path",
            "## Blame",
            "By stall bucket",
            "By device",
            "By instance",
            "## Wave Gantt",
            "bit-exactly",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        let off = render_report(&g, Some(reported * 1.5));
        assert!(off.contains("differs"));
    }
}
