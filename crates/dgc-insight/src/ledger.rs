//! The cross-run perf ledger.
//!
//! An append-only JSONL file (one [`LedgerEntry`] per line, conventionally
//! `results/ledger.jsonl`) accumulating every benchmark run's provenance
//! and headline rates: git revision, workload config fingerprint, the
//! `bench_harness` section throughputs, and optional utilization/makespan
//! rollups. On top of it:
//!
//! * [`Ledger::report`] — a markdown trend report over the runs sharing
//!   the latest entry's config fingerprint;
//! * [`Ledger::check`] — the trend gate: the latest run's section rates
//!   must not fall more than a tolerance below the trailing median of
//!   the preceding comparable runs. The `dgc-insight check` binary maps
//!   this onto `prof-diff`'s exit contract (0 pass, 1 regression,
//!   2 usage/parse error).
//!
//! Entries with different config fingerprints are never trended against
//! each other — a changed workload is a new baseline, not a regression.

use dgc_prof::BenchReport;
use serde::{Serialize, Value};

/// Ledger line schema. History: 1 — initial (provenance + section rates
/// + optional utilization/makespan rollups).
pub const LEDGER_SCHEMA_VERSION: u32 = 1;

/// One benchmark section's rates, as stored on a ledger line.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerSection {
    pub name: String,
    /// Host wall-clock of the section, seconds.
    pub wall_s: f64,
    /// Completed instances per host second.
    pub instances_per_s: f64,
    /// Simulated device cycles per host second.
    pub sim_cycles_per_s: f64,
}

/// One run of the benchmark harness, as appended to the ledger.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LedgerEntry {
    pub schema: u32,
    /// UTC timestamp of the append, ISO-8601 (`2026-08-09T12:00:00Z`).
    pub timestamp: String,
    /// Abbreviated git revision the run was built from (`+` = dirty).
    pub git_rev: String,
    /// Workload fingerprint ([`dgc_prof::config_fingerprint`]); trend
    /// comparisons only happen between equal fingerprints.
    pub config_hash: String,
    pub total_wall_s: f64,
    /// Launch-level issue-utilization rollups, when the run sampled a
    /// timeline (`null` otherwise).
    pub utilization_mean: Option<f64>,
    pub utilization_p95: Option<f64>,
    /// Reported ensemble makespan, when the run produced one.
    pub makespan_s: Option<f64>,
    pub sections: Vec<LedgerSection>,
}

impl LedgerEntry {
    /// Build a ledger line from a `BENCH_ensemble.json` report. Schema-1
    /// reports carry `"unknown"` provenance and still append cleanly.
    pub fn from_bench(report: &BenchReport, timestamp: &str) -> LedgerEntry {
        LedgerEntry {
            schema: LEDGER_SCHEMA_VERSION,
            timestamp: timestamp.to_string(),
            git_rev: report.git_rev.clone(),
            config_hash: report.config_hash.clone(),
            total_wall_s: report.total_wall_s,
            utilization_mean: None,
            utilization_p95: None,
            makespan_s: None,
            sections: report
                .sections
                .iter()
                .map(|s| LedgerSection {
                    name: s.name.clone(),
                    wall_s: s.wall_s,
                    instances_per_s: s.instances_per_s,
                    sim_cycles_per_s: s.sim_cycles_per_s,
                })
                .collect(),
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("ledger entry serializes")
    }

    /// Parse one JSONL line.
    pub fn parse(line: &str) -> Result<LedgerEntry, String> {
        let doc: Value = serde_json::from_str(line).map_err(|e| format!("ledger JSON: {e}"))?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(|s| s.to_string())
                .ok_or_else(|| format!("ledger line without {key}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("ledger line without {key}"))
        };
        let opt = |key: &str| doc.get(key).and_then(|v| v.as_f64());
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_u64())
            .ok_or("ledger line without schema")? as u32;
        let raw_sections = doc
            .get("sections")
            .and_then(|v| v.as_array())
            .ok_or("ledger line without sections")?;
        let mut sections = Vec::with_capacity(raw_sections.len());
        for s in raw_sections {
            let sf = |key: &str| -> Result<f64, String> {
                s.get(key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("ledger section without {key}"))
            };
            sections.push(LedgerSection {
                name: s
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or("ledger section without name")?
                    .to_string(),
                wall_s: sf("wall_s")?,
                instances_per_s: sf("instances_per_s")?,
                sim_cycles_per_s: sf("sim_cycles_per_s")?,
            });
        }
        Ok(LedgerEntry {
            schema,
            timestamp: str_field("timestamp")?,
            git_rev: str_field("git_rev")?,
            config_hash: str_field("config_hash")?,
            total_wall_s: f64_field("total_wall_s")?,
            utilization_mean: opt("utilization_mean"),
            utilization_p95: opt("utilization_p95"),
            makespan_s: opt("makespan_s"),
            sections,
        })
    }
}

/// One metric's verdict from the trend gate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CheckDelta {
    pub section: String,
    pub metric: String,
    pub current: f64,
    /// Trailing median over the comparable window.
    pub median: f64,
    /// `current / median` (∞-safe: 1.0 when the median is 0).
    pub ratio: f64,
    pub regressed: bool,
}

/// The trend gate's result over the latest entry.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LedgerCheck {
    /// Comparable prior runs the medians were taken over (0 = no
    /// baseline yet; the gate passes vacuously).
    pub baseline_runs: usize,
    pub deltas: Vec<CheckDelta>,
}

impl LedgerCheck {
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    pub fn render(&self) -> String {
        if self.baseline_runs == 0 {
            return "ledger check: no comparable prior runs — pass (new baseline)\n".into();
        }
        let mut out = format!(
            "ledger check against trailing median of {} run(s):\n",
            self.baseline_runs
        );
        for d in &self.deltas {
            out.push_str(&format!(
                "  {} {} {}: {:.3} vs median {:.3} ({:+.1}%)\n",
                if d.regressed { "REGRESSED" } else { "ok" },
                d.section,
                d.metric,
                d.current,
                d.median,
                (d.ratio - 1.0) * 100.0
            ));
        }
        out
    }
}

/// A loaded ledger: entries in append (chronological) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    pub entries: Vec<LedgerEntry>,
}

fn median(sorted_input: &[f64]) -> f64 {
    let mut v = sorted_input.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

impl Ledger {
    /// Parse a JSONL document; blank lines are tolerated, a malformed
    /// line is an error naming its line number.
    pub fn load(text: &str) -> Result<Ledger, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(LedgerEntry::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(Ledger { entries })
    }

    /// [`Ledger::load`] for read paths over a ledger another process may
    /// still be appending to (or that was truncated by a crash):
    /// malformed lines — typically a half-written trailing record — are
    /// skipped instead of failing the whole load, and returned as
    /// warnings naming the line number. Valid rows all survive.
    pub fn load_lossy(text: &str) -> (Ledger, Vec<String>) {
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match LedgerEntry::parse(line) {
                Ok(e) => entries.push(e),
                Err(e) => warnings.push(format!("skipping corrupt line {}: {e}", i + 1)),
            }
        }
        (Ledger { entries }, warnings)
    }

    /// Prior entries comparable to the latest (same config fingerprint),
    /// newest-last, capped at `window`.
    fn baseline_of_latest(&self, window: usize) -> (Option<&LedgerEntry>, Vec<&LedgerEntry>) {
        let Some(latest) = self.entries.last() else {
            return (None, Vec::new());
        };
        let n = self.entries.len();
        let mut prior: Vec<&LedgerEntry> = self.entries[..n - 1]
            .iter()
            .filter(|e| e.config_hash == latest.config_hash)
            .collect();
        if prior.len() > window {
            prior.drain(..prior.len() - window);
        }
        (Some(latest), prior)
    }

    /// Gate the latest entry's section rates against the trailing median
    /// of the preceding comparable runs: a rate below
    /// `median * (1 - tolerance)` is a regression. Errors when the
    /// ledger is empty.
    pub fn check(&self, tolerance: f64, window: usize) -> Result<LedgerCheck, String> {
        let (latest, prior) = self.baseline_of_latest(window);
        let latest = latest.ok_or("ledger is empty")?;
        let mut check = LedgerCheck {
            baseline_runs: prior.len(),
            deltas: Vec::new(),
        };
        if prior.is_empty() {
            return Ok(check);
        }
        for section in &latest.sections {
            let series = |pick: fn(&LedgerSection) -> f64| -> Vec<f64> {
                prior
                    .iter()
                    .flat_map(|e| e.sections.iter())
                    .filter(|s| s.name == section.name)
                    .map(pick)
                    .collect()
            };
            for (metric, current, history) in [
                (
                    "instances/s",
                    section.instances_per_s,
                    series(|s| s.instances_per_s),
                ),
                (
                    "sim cycles/s",
                    section.sim_cycles_per_s,
                    series(|s| s.sim_cycles_per_s),
                ),
            ] {
                if history.is_empty() {
                    continue;
                }
                let med = median(&history);
                check.deltas.push(CheckDelta {
                    section: section.name.clone(),
                    metric: metric.to_string(),
                    current,
                    median: med,
                    ratio: if med > 0.0 { current / med } else { 1.0 },
                    regressed: med > 0.0 && current < med * (1.0 - tolerance),
                });
            }
        }
        Ok(check)
    }

    /// Render the markdown trend report: provenance of every run, then
    /// per-section rate tables over the runs comparable to the latest.
    pub fn report(&self) -> String {
        let mut out = String::from("# Perf ledger trend report\n\n");
        if self.entries.is_empty() {
            out.push_str("The ledger is empty.\n");
            return out;
        }
        let latest = self.entries.last().expect("non-empty");
        out.push_str(&format!(
            "{} run(s) on record; latest {} @ `{}` (config `{}`).\n\n",
            self.entries.len(),
            latest.timestamp,
            latest.git_rev,
            latest.config_hash
        ));
        let comparable: Vec<&LedgerEntry> = self
            .entries
            .iter()
            .filter(|e| e.config_hash == latest.config_hash)
            .collect();
        let foreign = self.entries.len() - comparable.len();
        if foreign > 0 {
            out.push_str(&format!(
                "{foreign} run(s) with other config fingerprints are excluded from the trend.\n\n"
            ));
        }
        let mut section_names: Vec<&str> = Vec::new();
        for e in &comparable {
            for s in &e.sections {
                if !section_names.contains(&s.name.as_str()) {
                    section_names.push(&s.name);
                }
            }
        }
        for name in section_names {
            out.push_str(&format!("## `{name}`\n\n"));
            out.push_str("| timestamp | git rev | wall s | instances/s | sim cycles/s |\n");
            out.push_str("|---|---|---:|---:|---:|\n");
            let mut rates = Vec::new();
            for e in &comparable {
                if let Some(s) = e.sections.iter().find(|s| s.name == name) {
                    out.push_str(&format!(
                        "| {} | `{}` | {:.3} | {:.1} | {:.3e} |\n",
                        e.timestamp, e.git_rev, s.wall_s, s.instances_per_s, s.sim_cycles_per_s
                    ));
                    rates.push(s.instances_per_s);
                }
            }
            if rates.len() > 1 {
                let hist = &rates[..rates.len() - 1];
                let med = median(hist);
                let cur = *rates.last().expect("non-empty");
                let delta = if med > 0.0 {
                    (cur / med - 1.0) * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "\ntrailing median {med:.1} instances/s, latest {cur:.1} ({delta:+.1}%)\n"
                ));
            }
            out.push('\n');
        }
        out
    }
}

/// Format a unix timestamp (seconds) as ISO-8601 UTC
/// (`2026-08-09T12:34:56Z`). Days-to-civil conversion per the standard
/// proleptic-Gregorian algorithm.
pub fn iso8601_utc(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs = unix_secs % 86_400;
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    // civil_from_days (Howard Hinnant's algorithm), era-based.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_prof::{BenchSection, BENCH_SCHEMA_VERSION};

    fn bench(rate: f64) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            git_rev: "abc123def456".into(),
            config_hash: "00ff00ff00ff00ff".into(),
            total_wall_s: 1.0,
            sections: vec![BenchSection {
                name: "figure6_smoke_tl32".into(),
                wall_s: 1.0,
                instances: 100,
                sim_cycles: 1e9,
                instances_per_s: rate,
                sim_cycles_per_s: rate * 1e7,
            }],
        }
    }

    fn ledger_of(rates: &[f64]) -> Ledger {
        let text: String = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let mut e =
                    LedgerEntry::from_bench(&bench(r), &iso8601_utc(1_700_000_000 + i as u64));
                e.makespan_s = Some(0.5);
                e.to_json_line() + "\n"
            })
            .collect();
        Ledger::load(&text).unwrap()
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let mut e = LedgerEntry::from_bench(&bench(100.0), "2026-08-09T00:00:00Z");
        e.utilization_mean = Some(0.4);
        e.utilization_p95 = Some(0.9);
        let back = LedgerEntry::parse(&e.to_json_line()).unwrap();
        assert_eq!(e, back);
        assert!(LedgerEntry::parse("{}").is_err());
        assert!(LedgerEntry::parse("not json").is_err());
        // Missing optional rollups parse as None.
        let plain = LedgerEntry::from_bench(&bench(1.0), "t");
        let back = LedgerEntry::parse(&plain.to_json_line()).unwrap();
        assert_eq!(back.utilization_mean, None);
        assert_eq!(back.makespan_s, None);
    }

    #[test]
    fn load_tolerates_blank_lines_and_reports_bad_ones() {
        let good = LedgerEntry::from_bench(&bench(10.0), "t").to_json_line();
        let l = Ledger::load(&format!("\n{good}\n\n{good}\n")).unwrap();
        assert_eq!(l.entries.len(), 2);
        let err = Ledger::load(&format!("{good}\nbroken\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn load_lossy_skips_a_half_written_trailing_line_keeping_valid_rows() {
        let good = LedgerEntry::from_bench(&bench(10.0), "t").to_json_line();
        // A crash mid-append leaves a truncated final record.
        let truncated = &good[..good.len() / 2];
        let (l, warnings) = Ledger::load_lossy(&format!("{good}\n{good}\n{truncated}"));
        assert_eq!(l.entries.len(), 2);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("line 3"), "{warnings:?}");
        // Corruption in the middle also skips only the bad row.
        let (l, warnings) = Ledger::load_lossy(&format!("{good}\nnot json\n{good}\n"));
        assert_eq!(l.entries.len(), 2);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("line 2"), "{warnings:?}");
        // A clean file loads warning-free and matches strict load.
        let (l, warnings) = Ledger::load_lossy(&format!("{good}\n"));
        assert!(warnings.is_empty());
        assert_eq!(l, Ledger::load(&format!("{good}\n")).unwrap());
    }

    #[test]
    fn check_passes_steady_rates_and_flags_collapses() {
        let steady = ledger_of(&[100.0, 102.0, 98.0, 101.0]);
        let check = steady.check(0.2, 5).unwrap();
        assert_eq!(check.baseline_runs, 3);
        assert!(!check.has_regressions(), "{}", check.render());

        let collapsed = ledger_of(&[100.0, 102.0, 98.0, 40.0]);
        let check = collapsed.check(0.2, 5).unwrap();
        assert!(check.has_regressions());
        assert!(check.render().contains("REGRESSED"));

        // A single entry has no baseline: vacuous pass.
        let first = ledger_of(&[100.0]);
        let check = first.check(0.2, 5).unwrap();
        assert_eq!(check.baseline_runs, 0);
        assert!(!check.has_regressions());
        assert!(Ledger::default().check(0.2, 5).is_err());
    }

    #[test]
    fn check_ignores_entries_with_other_fingerprints() {
        let mut l = ledger_of(&[100.0, 100.0]);
        // A slow run under a *different* workload fingerprint must not
        // drag the median, and a fast history under a different
        // fingerprint must not flag the latest as regressed.
        let mut foreign = LedgerEntry::from_bench(&bench(1000.0), "t");
        foreign.config_hash = "1111111111111111".into();
        l.entries.insert(0, foreign);
        let check = l.check(0.2, 5).unwrap();
        assert_eq!(check.baseline_runs, 1);
        assert!(!check.has_regressions());
    }

    #[test]
    fn window_caps_the_baseline() {
        let l = ledger_of(&[1.0, 1.0, 100.0, 100.0, 100.0, 100.0]);
        // Window 3 sees only the fast recent runs; the early slow ones
        // age out of the median.
        let check = l.check(0.2, 3).unwrap();
        assert_eq!(check.baseline_runs, 3);
        assert!(!check.has_regressions());
    }

    #[test]
    fn report_renders_trend_table() {
        let l = ledger_of(&[100.0, 110.0, 105.0]);
        let text = l.report();
        assert!(text.contains("# Perf ledger trend report"));
        assert!(text.contains("3 run(s) on record"));
        assert!(text.contains("## `figure6_smoke_tl32`"));
        assert!(text.contains("trailing median 105.0 instances/s"));
        assert!(Ledger::default().report().contains("empty"));
    }

    #[test]
    fn iso8601_matches_known_timestamps() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(86_400), "1970-01-02T00:00:00Z");
        // 2026-08-09 00:00:00 UTC.
        assert_eq!(iso8601_utc(1_786_233_600), "2026-08-09T00:00:00Z");
        assert_eq!(iso8601_utc(951_825_599), "2000-02-29T11:59:59Z");
    }
}
