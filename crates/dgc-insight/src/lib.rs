//! Post-hoc run analysis for ensemble execution (`dgc-insight`).
//!
//! The layers below this one *record* (dgc-obs spans, metrics,
//! timelines, the causal [`dgc_obs::SpanGraph`]); this crate *explains*:
//!
//! * [`CriticalPath`] — the makespan's causal decomposition. Built from
//!   the in-process span graph its span sum reproduces the
//!   driver-reported makespan **bit-exactly** (same addends, same
//!   association); built from a merged Chrome trace
//!   ([`dgc_obs::SpanGraph::from_chrome_trace`]) it is an approximate
//!   reconstruction.
//! * [`BlameTable`] — "where did the time go", per stall bucket
//!   ([`blame_stalls`]), device lane ([`blame_devices`]) or instance
//!   ([`blame_instances`]); row percentages fold to exactly 100.
//! * [`folded_stacks`] — inferno-compatible flamegraph export;
//!   [`validate_folded`] is its CI smoke check.
//! * [`Ledger`] — the append-only cross-run perf ledger
//!   (`results/ledger.jsonl`): provenance-stamped benchmark rates with
//!   a trend report and a trailing-median regression gate sharing
//!   `prof-diff`'s exit contract.
//!
//! The `dgc-insight` binary fronts all of it: `analyze`, `append`,
//! `report`, `check`, `flame-check`.

mod critical;
mod flame;
mod ledger;

pub use critical::{
    blame_devices, blame_instances, blame_stalls, gantt, render_report, BlameRow, BlameTable,
    CriticalPath, PathSegment,
};
pub use flame::{folded_stacks, validate_folded};
pub use ledger::{
    iso8601_utc, CheckDelta, Ledger, LedgerCheck, LedgerEntry, LedgerSection, LEDGER_SCHEMA_VERSION,
};
