//! The run-analysis command line.
//!
//! ```text
//! dgc-insight analyze --trace <trace.json> [--out <report.md>] [--flame-out <stacks.folded>]
//! dgc-insight append  --bench <BENCH_ensemble.json> --ledger <ledger.jsonl>
//!                     [--timestamp <iso8601>] [--util-mean <f>] [--util-p95 <f>] [--makespan-s <f>]
//! dgc-insight report  --ledger <ledger.jsonl> [--out <report.md>]
//! dgc-insight check   --ledger <ledger.jsonl> [--tolerance 0.5] [--window 5]
//! dgc-insight flame-check <stacks.folded>
//! ```
//!
//! Exit codes follow `prof-diff`'s contract: `0` pass, `1` regression
//! (or invalid flamegraph), `2` usage or parse error.
//!
//! `analyze` reconstructs a span graph from a merged Chrome trace — an
//! approximate path (durations round-trip through µs). For the
//! bit-exact report, use `ensemble-cli --insight-out`, which renders
//! from the in-process graph.

use dgc_insight::{
    folded_stacks, iso8601_utc, render_report, validate_folded, Ledger, LedgerEntry,
};
use dgc_obs::SpanGraph;
use dgc_prof::BenchReport;

fn fail_usage(msg: &str) -> ! {
    eprintln!("dgc-insight: {msg}");
    eprintln!(
        "usage: dgc-insight analyze --trace <trace.json> [--out <md>] [--flame-out <folded>]"
    );
    eprintln!("       dgc-insight append --bench <BENCH.json> --ledger <ledger.jsonl> [--timestamp <iso>]");
    eprintln!("                          [--util-mean <f>] [--util-p95 <f>] [--makespan-s <f>]");
    eprintln!("       dgc-insight report --ledger <ledger.jsonl> [--out <md>]");
    eprintln!("       dgc-insight check --ledger <ledger.jsonl> [--tolerance 0.5] [--window 5]");
    eprintln!("       dgc-insight flame-check <stacks.folded>");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("dgc-insight: {msg}");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")))
}

fn write(path: &str, text: &str) {
    dgc_obs::write_atomic(path, text)
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
}

/// Flag parser over `(name, value)` pairs; positional args rejected.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String], allowed: &[&str]) -> Flags {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if !allowed.contains(&a.as_str()) {
                fail_usage(&format!("unknown flag {a}"));
            }
            let v = it
                .next()
                .unwrap_or_else(|| fail_usage(&format!("{a} needs a value")));
            pairs.push((a.clone(), v.clone()));
        }
        Flags(pairs)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> &str {
        self.get(name)
            .unwrap_or_else(|| fail_usage(&format!("{name} is required")))
    }

    fn get_f64(&self, name: &str) -> Option<f64> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage(&format!("bad value for {name}: '{v}'")))
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        fail_usage("missing subcommand");
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "analyze" => {
            let f = Flags::parse(rest, &["--trace", "--out", "--flame-out"]);
            let trace = read(f.require("--trace"));
            let graph = SpanGraph::from_chrome_trace(&trace)
                .unwrap_or_else(|e| fail(&format!("trace: {e}")));
            let report = render_report(&graph, None);
            match f.get("--out") {
                Some(path) => {
                    write(path, &report);
                    eprintln!("wrote report {path}");
                }
                None => print!("{report}"),
            }
            if let Some(path) = f.get("--flame-out") {
                let stacks = folded_stacks(&graph);
                validate_folded(&stacks)
                    .unwrap_or_else(|e| fail(&format!("generated flamegraph invalid: {e}")));
                write(path, &stacks);
                eprintln!("wrote flamegraph {path}");
            }
        }
        "append" => {
            let f = Flags::parse(
                rest,
                &[
                    "--bench",
                    "--ledger",
                    "--timestamp",
                    "--util-mean",
                    "--util-p95",
                    "--makespan-s",
                ],
            );
            let bench = BenchReport::parse(&read(f.require("--bench")))
                .unwrap_or_else(|e| fail(&format!("bench report: {e}")));
            let ledger_path = f.require("--ledger");
            let timestamp = f
                .get("--timestamp")
                .map(|t| t.to_string())
                .unwrap_or_else(|| {
                    let now = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs())
                        .unwrap_or(0);
                    iso8601_utc(now)
                });
            let mut entry = LedgerEntry::from_bench(&bench, &timestamp);
            entry.utilization_mean = f.get_f64("--util-mean");
            entry.utilization_p95 = f.get_f64("--util-p95");
            entry.makespan_s = f.get_f64("--makespan-s");
            // Validate the existing ledger before appending, so a broken
            // file fails loudly instead of growing.
            let mut text = std::fs::read_to_string(ledger_path).unwrap_or_default();
            Ledger::load(&text).unwrap_or_else(|e| fail(&format!("{ledger_path}: {e}")));
            if !text.is_empty() && !text.ends_with('\n') {
                text.push('\n');
            }
            text.push_str(&entry.to_json_line());
            text.push('\n');
            write(ledger_path, &text);
            eprintln!(
                "appended {} @ {} to {ledger_path}",
                entry.git_rev, entry.timestamp
            );
        }
        "report" => {
            let f = Flags::parse(rest, &["--ledger", "--out"]);
            // Read paths tolerate a corrupt/truncated row (e.g. a
            // half-written trailing line from an interrupted append):
            // it is skipped with a warning, the valid rows still report.
            let (ledger, warnings) = Ledger::load_lossy(&read(f.require("--ledger")));
            for w in &warnings {
                eprintln!("dgc-insight: ledger: {w}");
            }
            let report = ledger.report();
            match f.get("--out") {
                Some(path) => {
                    write(path, &report);
                    eprintln!("wrote report {path}");
                }
                None => print!("{report}"),
            }
        }
        "check" => {
            let f = Flags::parse(rest, &["--ledger", "--tolerance", "--window"]);
            let tolerance = f.get_f64("--tolerance").unwrap_or(0.5);
            if !(0.0..1.0).contains(&tolerance) {
                fail_usage("tolerance must be in [0, 1)");
            }
            let window = f
                .get("--window")
                .map(|v| {
                    v.parse::<usize>()
                        .unwrap_or_else(|_| fail_usage(&format!("bad window '{v}'")))
                })
                .unwrap_or(5)
                .max(1);
            let (ledger, warnings) = Ledger::load_lossy(&read(f.require("--ledger")));
            for w in &warnings {
                eprintln!("dgc-insight: ledger: {w}");
            }
            let check = ledger.check(tolerance, window).unwrap_or_else(|e| fail(&e));
            print!("{}", check.render());
            std::process::exit(if check.has_regressions() { 1 } else { 0 });
        }
        "flame-check" => {
            let [path] = rest else {
                fail_usage("flame-check takes exactly one path");
            };
            match validate_folded(&read(path)) {
                Ok(n) => println!("{path}: {n} stacks ok"),
                Err(e) => {
                    eprintln!("dgc-insight: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        other => fail_usage(&format!("unknown subcommand '{other}'")),
    }
}
