//! Ablation: the DRAM row-locality interference model (the paper's §4.3
//! explanation for sublinear scaling).
//!
//! Runs the streaming AMGmk workload at 32 instances with the interference
//! model enabled (default A100 parameters) and disabled (efficiency pinned
//! at its single-region value), demonstrating how much of the scaling gap
//! the mechanism accounts for.

use criterion::{criterion_group, criterion_main, Criterion};
use dgc_core::{run_ensemble, EnsembleOptions};
use gpu_arch::GpuSpec;
use gpu_sim::Gpu;
use host_rpc::HostServices;

fn run_amg(spec: GpuSpec, instances: u32) -> f64 {
    let mut gpu = Gpu::new(spec);
    let app = dgc_apps::amgmk::app();
    let opts = EnsembleOptions {
        num_instances: instances,
        thread_limit: 1024,
        ..Default::default()
    };
    let args = vec![vec!["-n".to_string(), "6".into(), "-s".into(), "4".into()]];
    run_ensemble(&mut gpu, &app, &args, &opts, HostServices::default())
        .unwrap()
        .kernel_time_s
}

fn no_interference_spec() -> GpuSpec {
    let mut spec = GpuSpec::a100_40gb();
    // Pin efficiency at the single-region value for any region count.
    spec.mem_model.dram_eff_many_regions = spec.mem_model.dram_eff_single_region;
    spec
}

fn bench(c: &mut Criterion) {
    // Print the ablation result once, outside the timed loops.
    let t1 = run_amg(GpuSpec::a100_40gb(), 1);
    let t32_on = run_amg(GpuSpec::a100_40gb(), 32);
    let t32_off = run_amg(no_interference_spec(), 32);
    let s_on = t1 * 32.0 / t32_on;
    let s_off = run_amg(no_interference_spec(), 1) * 32.0 / t32_off;
    eprintln!(
        "ablation_interference: amgmk x32 speedup = {s_on:.1} (interference on) vs {s_off:.1} (off)"
    );
    assert!(s_on < s_off, "interference must cost scaling");

    let mut group = c.benchmark_group("ablation_interference");
    group.sample_size(10);
    group.bench_function("amgmk_x32_interference_on", |b| {
        b.iter(|| run_amg(GpuSpec::a100_40gb(), 32))
    });
    group.bench_function("amgmk_x32_interference_off", |b| {
        b.iter(|| run_amg(no_interference_spec(), 32))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
