//! Criterion bench regenerating Figure 6(a): ensemble speedup at thread
//! limit 32. Each benchmark × instance-count cell measures one ensemble
//! launch end-to-end (functional execution + timing simulation); the
//! figure itself is printed by the `figure6` binary — this bench tracks
//! the harness's own cost and keeps the sweep exercised under `cargo
//! bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgc_bench::{measure_config, smoke_workloads};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_tl32");
    group.sample_size(10);
    for workload in smoke_workloads() {
        for &n in &[1u32, 8, 64] {
            if workload.name == "pagerank" && n > 4 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(workload.name, n), &n, |b, &n| {
                b.iter(|| {
                    let t = measure_config(&workload, n, 32);
                    assert!(t.is_some());
                    t
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
