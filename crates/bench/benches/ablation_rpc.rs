//! Ablation: host-RPC overhead (the Fig. 2 substrate).
//!
//! A printf-heavy microbenchmark quantifies the round-trip cost the RPC
//! framework adds to device execution, at 1 and 16 instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device_libc::dl_printf;
use dgc_core::{run_ensemble, EnsembleOptions, HostApp};
use gpu_sim::Gpu;
use host_rpc::HostServices;

const MODULE: &str = r#"
module "chatty" {
  func @main arity=2 calls(@printf)
  extern func @printf variadic
}
"#;

fn chatty_main(
    team: &mut gpu_sim::TeamCtx<'_>,
    cx: &dgc_core::AppContext,
) -> Result<i32, gpu_sim::KernelError> {
    let lines: u64 = cx.argv.get(1).and_then(|v| v.parse().ok()).unwrap_or(10);
    let instance = cx.instance;
    team.serial("chatter", |lane| {
        for k in 0..lines {
            dl_printf(lane, "instance %d line %d\n", &[instance.into(), k.into()])?;
        }
        Ok(())
    })?;
    Ok(0)
}

fn run_chatty(instances: u32, lines: u32) -> f64 {
    let mut gpu = Gpu::a100();
    let app = HostApp::new("chatty", MODULE, chatty_main);
    let opts = EnsembleOptions {
        num_instances: instances,
        thread_limit: 32,
        ..Default::default()
    };
    let res = run_ensemble(
        &mut gpu,
        &app,
        &[vec![lines.to_string()]],
        &opts,
        HostServices::default(),
    )
    .unwrap();
    assert!(res.all_succeeded());
    assert_eq!(res.rpc_stats.stdio_calls, instances as u64 * lines as u64);
    res.kernel_time_s
}

fn bench(c: &mut Criterion) {
    let quiet = run_chatty(1, 1);
    let chatty = run_chatty(1, 100);
    eprintln!(
        "ablation_rpc: 1 printf = {:.1} us, 100 printfs = {:.1} us (~{:.1} us per RPC round trip)",
        quiet * 1e6,
        chatty * 1e6,
        (chatty - quiet) * 1e6 / 99.0
    );
    let mut group = c.benchmark_group("ablation_rpc");
    group.sample_size(10);
    for (instances, lines) in [(1u32, 100u32), (16, 100)] {
        group.bench_with_input(
            BenchmarkId::new("printf_storm", format!("{instances}x{lines}")),
            &(instances, lines),
            |b, &(i, l)| b.iter(|| run_chatty(i, l)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
