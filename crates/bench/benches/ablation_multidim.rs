//! Ablation: the §3.1 packed `(N/M, M, 1)` intra-block instance mapping
//! (described as future work in the paper; implemented here).
//!
//! Sweeps M ∈ {1, 2, 4, 8} instances per thread block for a
//! low-parallelism RSBench workload at a fixed thread limit, showing the
//! concurrency-vs-per-instance-parallelism trade the paper describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgc_core::{run_ensemble, EnsembleOptions, MappingStrategy};
use gpu_sim::Gpu;
use host_rpc::HostServices;

fn run_packed(per_block: u32) -> f64 {
    let mut gpu = Gpu::a100();
    let app = dgc_apps::rsbench::app();
    let opts = EnsembleOptions {
        num_instances: 16,
        thread_limit: 256,
        mapping: if per_block == 1 {
            MappingStrategy::OnePerTeam
        } else {
            MappingStrategy::Packed { per_block }
        },
        ..Default::default()
    };
    let args = vec![vec![
        "-l".to_string(),
        "40".into(),
        "-w".into(),
        "8".into(),
        "-p".into(),
        "2".into(),
    ]];
    let res = run_ensemble(&mut gpu, &app, &args, &opts, HostServices::default()).unwrap();
    assert!(res.all_succeeded());
    res.kernel_time_s
}

fn bench(c: &mut Criterion) {
    for m in [1u32, 2, 4, 8] {
        let t = run_packed(m);
        eprintln!(
            "ablation_multidim: 16 instances, pack={m}: {:.3} ms",
            t * 1e3
        );
    }
    let mut group = c.benchmark_group("ablation_multidim");
    group.sample_size(10);
    for m in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pack", m), &m, |b, &m| {
            b.iter(|| run_packed(m))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
