//! Ablation: ensemble execution (this paper) vs. the \[27\] multi-team
//! expansion baseline, on the same total work.
//!
//! Processing N independent XSBench inputs can be done two ways:
//!   (a) one ensemble kernel with N teams (this paper), or
//!   (b) N sequential runs, each expanded across N teams (\[27\]).
//! This bench measures both and prints the ratio — the quantitative form
//! of the paper's §3 motivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgc_core::{run_ensemble, run_multi_team, EnsembleOptions};
use gpu_sim::Gpu;
use host_rpc::HostServices;

const ARGS: [&str; 4] = ["-l", "120", "-g", "16"];

fn ensemble_time(n: u32) -> f64 {
    let mut gpu = Gpu::a100();
    let app = dgc_apps::xsbench::app();
    let opts = EnsembleOptions {
        num_instances: n,
        thread_limit: 128,
        ..Default::default()
    };
    let lines = vec![ARGS.iter().map(|s| s.to_string()).collect()];
    let res = run_ensemble(&mut gpu, &app, &lines, &opts, HostServices::default()).unwrap();
    assert!(res.all_succeeded());
    res.kernel_time_s
}

fn multiteam_total_time(n: u32) -> f64 {
    let mut gpu = Gpu::a100();
    let app = dgc_apps::xsbench::app();
    (0..n)
        .map(|_| {
            run_multi_team(&mut gpu, &app, &ARGS, n, 128, HostServices::default())
                .unwrap()
                .kernel_time_s
        })
        .sum()
}

fn bench(c: &mut Criterion) {
    for n in [4u32, 16] {
        let ens = ensemble_time(n);
        let mt = multiteam_total_time(n);
        eprintln!(
            "ablation_vs_multiteam: {n} inputs — ensemble {:.3} ms vs {n} multi-team runs {:.3} ms ({:.1}x)",
            ens * 1e3,
            mt * 1e3,
            mt / ens
        );
        assert!(ens < mt, "ensemble must win on independent inputs");
    }
    let mut group = c.benchmark_group("ablation_vs_multiteam");
    group.sample_size(10);
    for n in [4u32, 16] {
        group.bench_with_input(BenchmarkId::new("ensemble", n), &n, |b, &n| {
            b.iter(|| ensemble_time(n))
        });
        group.bench_with_input(BenchmarkId::new("multiteam_seq", n), &n, |b, &n| {
            b.iter(|| multiteam_total_time(n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
