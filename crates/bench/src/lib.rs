//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! The paper's evaluation (§4) consists of Figure 6 — relative speedup
//! `T1·N/TN` for XSBench, RSBench, AMGmk and Page-Rank at thread limits 32
//! and 1024, N ∈ {1, 2, 4, 8, 16, 32, 64} — plus the §4.2 configuration
//! table. [`run_figure6_panel`] produces one panel; the `figure6` binary
//! prints both and writes machine-readable JSON next to `EXPERIMENTS.md`.

use dgc_apps::app_by_name;
use dgc_core::{run_ensemble_traced, EnsembleOptions, HostApp, SpeedupSeries};
use dgc_obs::{InstanceMetrics, MonitorSink, Recorder};
use gpu_arch::GpuSpec;
use gpu_sim::Gpu;
use host_rpc::HostServices;
use serde::Serialize;
use std::sync::Arc;

/// Instance counts of the paper's sweep.
pub const INSTANCE_COUNTS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Our extension past the paper's 64-instance cap (§4.2 stopped there for
/// memory reasons; XSBench/RSBench/AMGmk still fit at 128 on 40 GB).
pub const EXTENDED_INSTANCE_COUNTS: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Look up a simulated device by short name. Delegates to the
/// `gpu-arch` registry, so one table serves every harness: plain names
/// (`a100`, `v100`, `mi210`) and derated variants (`a100*0.5`) both
/// resolve.
pub fn device_by_name(name: &str) -> Option<GpuSpec> {
    let reg = gpu_arch::DeviceRegistry::parse(name).ok()?;
    if reg.len() != 1 {
        return None;
    }
    reg.devices.into_iter().next()
}

/// The two thread limits of Figure 6.
pub const THREAD_LIMITS: [u32; 2] = [32, 1024];

/// A benchmark plus the workload arguments the harness sweeps with.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub args: Vec<String>,
}

impl Workload {
    fn new(name: &'static str, args: &[&str]) -> Self {
        Self {
            name,
            args: args.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn app(&self) -> HostApp {
        app_by_name(self.name).expect("workload names match the registry")
    }
}

/// The four workloads at the harness's default (scaled) sizes. The paper
/// runs each benchmark's default problem; these are the scaled stand-ins
/// (see `dgc_apps::calibration`).
pub fn default_workloads() -> Vec<Workload> {
    vec![
        Workload::new("xsbench", &["-l", "500", "-g", "32"]),
        Workload::new("rsbench", &["-l", "400", "-w", "20", "-p", "2"]),
        Workload::new("amgmk", &["-n", "10", "-s", "10"]),
        Workload::new("pagerank", &["-v", "3000", "-d", "10", "-i", "5"]),
    ]
}

/// Smaller workloads for quick runs and CI.
pub fn smoke_workloads() -> Vec<Workload> {
    vec![
        Workload::new("xsbench", &["-l", "60", "-g", "16"]),
        Workload::new("rsbench", &["-l", "60", "-w", "8", "-p", "2"]),
        Workload::new("amgmk", &["-n", "6", "-s", "4"]),
        Workload::new("pagerank", &["-v", "500", "-d", "6", "-i", "3"]),
    ]
}

/// Run one ensemble configuration and return the kernel time (`TN`), or
/// `None` if any instance hit device OOM — the paper's "not runnable".
pub fn measure_config(workload: &Workload, instances: u32, thread_limit: u32) -> Option<f64> {
    measure_config_on(&GpuSpec::a100_40gb(), workload, instances, thread_limit)
}

/// [`measure_config`] on an arbitrary simulated device.
pub fn measure_config_on(
    spec: &GpuSpec,
    workload: &Workload,
    instances: u32,
    thread_limit: u32,
) -> Option<f64> {
    measure_config_detailed_on(spec, workload, instances, thread_limit).time_s
}

/// One measured configuration with its per-instance metrics, as exported
/// by the `figure6` binary's `--metrics-out` JSONL stream.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredConfig {
    pub benchmark: String,
    pub device: String,
    pub thread_limit: u32,
    pub instances: u32,
    /// Kernel time `TN`, or `None` when the configuration hit device OOM
    /// (the paper's "not runnable").
    pub time_s: Option<f64>,
    pub metrics: Vec<InstanceMetrics>,
}

/// [`measure_config_on`], keeping the per-instance metrics instead of
/// discarding everything but the kernel time.
pub fn measure_config_detailed_on(
    spec: &GpuSpec,
    workload: &Workload,
    instances: u32,
    thread_limit: u32,
) -> MeasuredConfig {
    measure_config_monitored_on(spec, workload, instances, thread_limit, None)
}

/// [`measure_config_detailed_on`] with an optional live monitor sink
/// attached for the duration of the run (the `figure6` binary's
/// `--monitor-out`). The sink is pure observation: measured times and
/// metrics are bit-identical with and without it.
pub fn measure_config_monitored_on(
    spec: &GpuSpec,
    workload: &Workload,
    instances: u32,
    thread_limit: u32,
    monitor: Option<&Arc<dyn MonitorSink>>,
) -> MeasuredConfig {
    let mut gpu = Gpu::new(spec.clone());
    let opts = EnsembleOptions {
        num_instances: instances,
        thread_limit,
        // The harness replicates one argument line across all instances
        // (the paper's homogeneous sweep), so cycling is intentional.
        cycle_args: true,
        ..Default::default()
    };
    let app = workload.app();
    let services = HostServices::default();
    let mut obs = Recorder::disabled();
    if let Some(m) = monitor {
        obs.set_monitor(m.clone());
    }
    let res = run_ensemble_traced(
        &mut gpu,
        &app,
        std::slice::from_ref(&workload.args),
        &opts,
        services,
        &mut obs,
    )
    .expect("harness configurations are launchable");
    let time_s = if res.any_oom() {
        None
    } else {
        for (i, inst) in res.instances.iter().enumerate() {
            assert!(
                inst.succeeded(),
                "{} instance {i} failed: {:?}",
                workload.name,
                inst.error
            );
        }
        Some(res.kernel_time_s)
    };
    MeasuredConfig {
        benchmark: workload.name.to_string(),
        device: spec.name.clone(),
        thread_limit,
        instances,
        time_s,
        metrics: res.metrics,
    }
}

/// Sweep one benchmark across the paper's instance counts at one thread
/// limit.
pub fn run_series(workload: &Workload, thread_limit: u32, counts: &[u32]) -> SpeedupSeries {
    run_series_on(&GpuSpec::a100_40gb(), workload, thread_limit, counts)
}

/// [`run_series`] on an arbitrary simulated device.
pub fn run_series_on(
    spec: &GpuSpec,
    workload: &Workload,
    thread_limit: u32,
    counts: &[u32],
) -> SpeedupSeries {
    run_series_detailed_on(spec, workload, thread_limit, counts).0
}

/// [`run_series_on`], also returning every measured configuration with its
/// per-instance metrics.
pub fn run_series_detailed_on(
    spec: &GpuSpec,
    workload: &Workload,
    thread_limit: u32,
    counts: &[u32],
) -> (SpeedupSeries, Vec<MeasuredConfig>) {
    run_series_monitored_on(spec, workload, thread_limit, counts, None)
}

/// [`run_series_detailed_on`] with an optional live monitor sink.
pub fn run_series_monitored_on(
    spec: &GpuSpec,
    workload: &Workload,
    thread_limit: u32,
    counts: &[u32],
    monitor: Option<&Arc<dyn MonitorSink>>,
) -> (SpeedupSeries, Vec<MeasuredConfig>) {
    let measured: Vec<MeasuredConfig> = counts
        .iter()
        .map(|&n| measure_config_monitored_on(spec, workload, n, thread_limit, monitor))
        .collect();
    let times: Vec<(u32, Option<f64>)> = measured.iter().map(|m| (m.instances, m.time_s)).collect();
    let series = SpeedupSeries::from_times(workload.name, thread_limit, &times)
        .expect("sweeps include a runnable single-instance baseline");
    (series, measured)
}

/// One panel of Figure 6 (all four benchmarks at one thread limit).
pub fn run_figure6_panel(thread_limit: u32, workloads: &[Workload]) -> Figure6Panel {
    run_figure6_panel_on(&GpuSpec::a100_40gb(), thread_limit, workloads, false)
}

/// [`run_figure6_panel`] on an arbitrary device, optionally extending the
/// sweep past the paper's 64-instance cap.
pub fn run_figure6_panel_on(
    spec: &GpuSpec,
    thread_limit: u32,
    workloads: &[Workload],
    extended: bool,
) -> Figure6Panel {
    run_figure6_panel_detailed_on(spec, thread_limit, workloads, extended).0
}

/// [`run_figure6_panel_on`], also returning the measured configurations
/// behind every panel cell (for the `--metrics-out` JSONL export).
pub fn run_figure6_panel_detailed_on(
    spec: &GpuSpec,
    thread_limit: u32,
    workloads: &[Workload],
    extended: bool,
) -> (Figure6Panel, Vec<MeasuredConfig>) {
    run_figure6_panel_monitored_on(spec, thread_limit, workloads, extended, None)
}

/// [`run_figure6_panel_detailed_on`] with an optional live monitor sink
/// streaming operational metrics while the sweep runs.
pub fn run_figure6_panel_monitored_on(
    spec: &GpuSpec,
    thread_limit: u32,
    workloads: &[Workload],
    extended: bool,
    monitor: Option<&Arc<dyn MonitorSink>>,
) -> (Figure6Panel, Vec<MeasuredConfig>) {
    let counts: &[u32] = if extended {
        &EXTENDED_INSTANCE_COUNTS
    } else {
        &INSTANCE_COUNTS
    };
    let mut series = Vec::new();
    let mut measured = Vec::new();
    for w in workloads {
        let (s, m) = run_series_monitored_on(spec, w, thread_limit, counts, monitor);
        series.push(s);
        measured.extend(m);
    }
    let panel = Figure6Panel {
        thread_limit,
        instance_counts: counts.to_vec(),
        series,
    };
    (panel, measured)
}

/// Machine-readable panel, serialized by the `figure6` binary.
#[derive(Debug, Clone, Serialize)]
pub struct Figure6Panel {
    pub thread_limit: u32,
    pub instance_counts: Vec<u32>,
    pub series: Vec<SpeedupSeries>,
}

impl Figure6Panel {
    /// Render the panel as the table the paper's figure plots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 6 panel — thread limit {}\n{:>10}",
            self.thread_limit, "N"
        ));
        out.push_str(&format!("{:>10}", "Linear"));
        for s in &self.series {
            out.push_str(&format!("{:>10}", s.benchmark));
        }
        out.push('\n');
        for (row, &n) in self.instance_counts.iter().enumerate() {
            out.push_str(&format!("{n:>10}{n:>10}"));
            for s in &self.series {
                match s.points[row].speedup {
                    Some(sp) => out.push_str(&format!("{sp:>10.1}")),
                    None => out.push_str(&format!("{:>10}", "OOM")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Peak speedup across all benchmarks in this panel (the paper's
    /// headline "up to 51× for 64 instances").
    pub fn peak(&self) -> (String, f64) {
        self.series
            .iter()
            .map(|s| (s.benchmark.clone(), s.peak_speedup()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("panel has series")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_workloads_measure() {
        let w = &smoke_workloads()[1]; // rsbench, cheap
        let t1 = measure_config(w, 1, 32).unwrap();
        let t4 = measure_config(w, 4, 32).unwrap();
        assert!(t1 > 0.0 && t4 > 0.0);
        assert!(t4 < 4.0 * t1);
    }

    #[test]
    fn pagerank_smoke_ooms_at_8() {
        let w = &smoke_workloads()[3];
        assert!(measure_config(w, 4, 32).is_some());
        assert!(measure_config(w, 8, 32).is_none());
    }

    #[test]
    fn detailed_measurement_keeps_per_instance_metrics() {
        let w = &smoke_workloads()[1]; // rsbench, cheap
        let m = measure_config_detailed_on(&GpuSpec::a100_40gb(), w, 4, 32);
        assert_eq!(m.benchmark, "rsbench");
        assert_eq!(m.instances, 4);
        assert!(m.time_s.is_some());
        assert_eq!(m.metrics.len(), 4);
        for im in &m.metrics {
            assert!(!im.oom && !im.trapped);
            assert!(im.warp_insts > 0.0);
            assert!(im.heap_peak_bytes > 0);
        }
        // OOM configurations still report which instances ran out.
        let pr = &smoke_workloads()[3];
        let oom = measure_config_detailed_on(&GpuSpec::a100_40gb(), pr, 8, 32);
        assert!(oom.time_s.is_none());
        assert!(oom.metrics.iter().any(|im| im.oom));
    }

    #[test]
    fn monitored_measurement_is_bit_identical_and_feeds_the_registry() {
        let w = &smoke_workloads()[1]; // rsbench, cheap
        let plain = measure_config_detailed_on(&GpuSpec::a100_40gb(), w, 4, 32);
        let reg = std::sync::Arc::new(dgc_monitor::MonitorRegistry::new());
        let sink: Arc<dyn MonitorSink> = reg.clone();
        let mon = measure_config_monitored_on(&GpuSpec::a100_40gb(), w, 4, 32, Some(&sink));
        // Pure observation: the measured configuration serializes to the
        // same bytes with and without the sink attached.
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&mon).unwrap()
        );
        let snap = reg.snapshot();
        assert_eq!(snap.sum("dgc_instances_total", &[]), Some(4.0));
        assert_eq!(snap.sum("dgc_kernel_launches_total", &[]), Some(1.0));
    }

    #[test]
    fn panel_renders_rows() {
        let times: Vec<(u32, Option<f64>)> = INSTANCE_COUNTS
            .iter()
            .map(|&n| (n, Some(1.1 / n as f64)))
            .collect();
        let panel = Figure6Panel {
            thread_limit: 32,
            instance_counts: INSTANCE_COUNTS.to_vec(),
            series: vec![SpeedupSeries::from_times("xsbench", 32, &times).unwrap()],
        };
        let text = panel.render();
        assert!(text.contains("thread limit 32"));
        assert!(text.contains("xsbench"));
        assert_eq!(text.lines().count(), 2 + INSTANCE_COUNTS.len());
    }
}
