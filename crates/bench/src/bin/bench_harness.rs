//! Self-benchmarking harness: how fast is the simulator itself?
//!
//! Wall-clocks two pinned workloads — the figure-6 smoke sweep at
//! thread limit 32 and a sharded two-device xsbench run — and writes a
//! `BENCH_ensemble.json` snapshot (schema
//! [`dgc_prof::BENCH_SCHEMA_VERSION`]) with per-section wall time,
//! completed instances, simulated cycles, and the derived throughput
//! rates. With `--golden` the run doubles as the perf-trajectory gate:
//! the snapshot is compared against the checked-in golden via
//! [`dgc_prof::BenchDiff`], sharing `prof-diff`'s exit-code contract
//! (0 pass, 1 regression, 2 usage/parse error).
//!
//! ```text
//! cargo run --release -p dgc-bench --bin bench_harness
//! cargo run --release -p dgc-bench --bin bench_harness -- \
//!     --out BENCH_ensemble.json --golden results/bench_golden.json \
//!     --tolerance 0.05 --wall-factor 10
//! ```

use dgc_bench::{measure_config_detailed_on, smoke_workloads};
use dgc_core::EnsembleOptions;
use dgc_obs::Recorder;
use dgc_prof::{
    config_fingerprint, git_rev, BenchDiff, BenchReport, BenchSection, BENCH_SCHEMA_VERSION,
};
use dgc_sched::{run_ensemble_sharded, Placement};
use gpu_arch::GpuSpec;
use gpu_sim::DeviceFleet;
use std::time::Instant;

/// Pinned instance counts for the sweep section — a smoke-sized prefix
/// of the paper's sweep, kept small so the gate stays fast in CI.
const SWEEP_COUNTS: [u32; 4] = [1, 2, 4, 8];
const SWEEP_THREAD_LIMIT: u32 = 32;
const SHARD_INSTANCES: u32 = 8;
const SHARD_DEVICES: u32 = 2;
/// Alloc-churn section: alloc/free pairs driven through the free-list
/// allocator, cycled over this many distinct team tags.
const ALLOC_OPS: u64 = 100_000;
const ALLOC_TEAMS: u64 = 32;

fn usage() -> ! {
    eprintln!(
        "usage: bench_harness [--out <path>] [--golden <path>] \
         [--tolerance <rel>] [--wall-factor <f>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_ensemble.json".to_string();
    let mut golden_path: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut wall_factor = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().unwrap_or_else(|| usage()).clone(),
            "--golden" => golden_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(0.0..1.0).contains(&tolerance) {
                    eprintln!("--tolerance must be in [0, 1)");
                    std::process::exit(2);
                }
            }
            "--wall-factor" => {
                wall_factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if !wall_factor.is_finite() || wall_factor < 1.0 {
                    eprintln!("--wall-factor must be a finite factor >= 1");
                    std::process::exit(2);
                }
            }
            _ => usage(),
        }
    }

    let spec = GpuSpec::a100_40gb();
    let cycle_s = spec.cycles_to_seconds(1.0);
    let mut sections = Vec::new();

    // ---- Section 1: the pinned figure-6 smoke sweep. ----
    eprintln!("bench: figure6 smoke sweep, tl {SWEEP_THREAD_LIMIT}, counts {SWEEP_COUNTS:?} ...");
    let started = Instant::now();
    let mut instances = 0u64;
    let mut sim_s = 0.0f64;
    for w in &smoke_workloads() {
        for &n in &SWEEP_COUNTS {
            let m = measure_config_detailed_on(&spec, w, n, SWEEP_THREAD_LIMIT);
            // OOM configurations (pagerank at 8) attempt but complete
            // nothing; only completed instances count toward throughput.
            if let Some(t) = m.time_s {
                instances += n as u64;
                sim_s += t;
            }
        }
    }
    sections.push(section(
        "figure6_smoke_tl32",
        started.elapsed().as_secs_f64(),
        instances,
        sim_s / cycle_s,
    ));

    // ---- Section 2: a sharded two-device run. ----
    eprintln!("bench: sharded xsbench x{SHARD_INSTANCES} over {SHARD_DEVICES} devices ...");
    let started = Instant::now();
    let mut fleet = DeviceFleet::homogeneous(spec.clone(), SHARD_DEVICES);
    let workload = &smoke_workloads()[0]; // xsbench
    let opts = EnsembleOptions {
        num_instances: SHARD_INSTANCES,
        thread_limit: SWEEP_THREAD_LIMIT,
        cycle_args: true,
        ..Default::default()
    };
    let sharded = run_ensemble_sharded(
        &mut fleet,
        &workload.app(),
        std::slice::from_ref(&workload.args),
        &opts,
        0,
        Placement::Lpt,
        &mut Recorder::disabled(),
    )
    .expect("sharded bench run is launchable");
    assert!(
        sharded.all_succeeded(),
        "sharded bench run must complete every instance"
    );
    // Devices run concurrently; total simulated work is the sum of the
    // per-device kernel sequences, not the makespan.
    let sharded_sim_s: f64 = sharded.per_device_time_s.iter().sum();
    sections.push(section(
        "sharded_xsbench_x8_dev2",
        started.elapsed().as_secs_f64(),
        SHARD_INSTANCES as u64,
        sharded_sim_s / cycle_s,
    ));

    // ---- Section 3: allocator churn throughput. ----
    eprintln!("bench: alloc churn, {ALLOC_OPS} alloc/free pairs over {ALLOC_TEAMS} teams ...");
    let started = Instant::now();
    let mut mem = gpu_mem::DeviceMemory::new(1 << 30);
    mem.set_free_lists(true);
    let mut live: std::collections::VecDeque<gpu_mem::DevicePtr> =
        std::collections::VecDeque::new();
    for i in 0..ALLOC_OPS {
        let tag = (i % ALLOC_TEAMS) as u32;
        // Deterministic size mix spanning several size classes.
        let len = 256 + (i % 7) * 1024;
        let ptr = mem
            .alloc_tagged(len, gpu_mem::Backing::Materialized, tag)
            .expect("churn allocation fits in 1 GiB");
        live.push_back(ptr);
        if live.len() >= 64 {
            let victim = live.pop_front().expect("queue is non-empty");
            mem.free(victim).expect("churn free succeeds");
        }
    }
    while let Some(p) = live.pop_front() {
        mem.free(p).expect("drain free succeeds");
    }
    let churn_stats = mem.stats();
    eprintln!(
        "bench: alloc churn recycled {} of {} allocations ({} fallbacks)",
        churn_stats.recycled_allocations,
        churn_stats.total_allocations,
        churn_stats.alloc_fallbacks
    );
    // A host-side microbenchmark: no simulated cycles, instances count
    // the alloc/free pairs so instances_per_s is allocator ops/s.
    sections.push(section(
        "alloc_churn_x100k",
        started.elapsed().as_secs_f64(),
        ALLOC_OPS,
        0.0,
    ));

    // Self-identifying snapshot (schema 2): the rev names the code, the
    // fingerprint names the pinned workload — ledger trend analysis
    // refuses to compare rates across different fingerprints.
    let config_hash = config_fingerprint([
        "device=a100_40gb".to_string(),
        format!("sweep_counts={SWEEP_COUNTS:?}"),
        format!("sweep_tl={SWEEP_THREAD_LIMIT}"),
        format!("shard_instances={SHARD_INSTANCES}"),
        format!("shard_devices={SHARD_DEVICES}"),
        format!("alloc_ops={ALLOC_OPS}"),
        format!("alloc_teams={ALLOC_TEAMS}"),
    ]);
    let report = BenchReport {
        schema: BENCH_SCHEMA_VERSION,
        git_rev: git_rev(),
        config_hash,
        total_wall_s: sections.iter().map(|s| s.wall_s).sum(),
        sections,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    dgc_obs::write_atomic(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    for s in &report.sections {
        println!(
            "{}: {:.3} s wall | {} instances ({:.1}/s) | {:.3e} sim cycles ({:.3e}/s)",
            s.name, s.wall_s, s.instances, s.instances_per_s, s.sim_cycles, s.sim_cycles_per_s
        );
    }
    eprintln!("wrote {out_path}");

    // ---- Optional gate against the golden snapshot. ----
    let Some(golden_path) = golden_path else {
        return;
    };
    let golden_text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        eprintln!("cannot read golden {golden_path}: {e}");
        std::process::exit(2);
    });
    let golden = BenchReport::parse(&golden_text).unwrap_or_else(|e| {
        eprintln!("golden {golden_path}: {e}");
        std::process::exit(2);
    });
    let diff = BenchDiff::compare(&golden, &report, tolerance, wall_factor);
    print!("{}", diff.render());
    if diff.has_regressions() {
        eprintln!("bench gate FAILED against {golden_path}");
        std::process::exit(1);
    }
    println!("bench gate passed against {golden_path}");
}

fn section(name: &str, wall_s: f64, instances: u64, sim_cycles: f64) -> BenchSection {
    BenchSection {
        name: name.into(),
        wall_s,
        instances,
        sim_cycles,
        instances_per_s: instances as f64 / wall_s.max(1e-12),
        sim_cycles_per_s: sim_cycles / wall_s.max(1e-12),
    }
}
