//! Regenerate the §4.2 configuration table: the device the evaluation
//! models, the compiler pipeline configuration, and the sweep parameters.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin config_report
//! cargo run --release -p dgc-bench --bin config_report -- --metrics-out config.json
//! cargo run --release -p dgc-bench --bin config_report -- --quiet --metrics-out config.json
//! ```

use gpu_arch::{occupancy, GpuSpec, LaunchConfig};
use serde::{Serialize, Value};

/// The sweep corners whose occupancy the table (and JSON export) lists.
const CORNERS: [(u32, u32); 4] = [(1, 32), (64, 32), (1, 1024), (64, 1024)];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quiet = false;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .unwrap_or_else(|| {
                            eprintln!("--metrics-out needs a path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: config_report [--quiet] [--metrics-out <path>]");
                std::process::exit(2);
            }
        }
    }

    let spec = GpuSpec::a100_40gb();
    if let Some(path) = &metrics_out {
        let json = config_json(&spec);
        dgc_obs::write_atomic(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
    if quiet {
        return;
    }

    println!("Evaluation configuration (paper §4.2)");
    println!("=====================================");
    println!("Device:                 {}", spec.name);
    println!("SMs:                    {}", spec.sm_count);
    println!("Warp size:              {}", spec.warp_size);
    println!("Max threads/block:      {}", spec.max_threads_per_block);
    println!("Max threads/SM:         {}", spec.max_threads_per_sm);
    println!(
        "Shared memory/SM:       {} KiB",
        spec.shared_mem_per_sm / 1024
    );
    println!("Core clock:             {} MHz", spec.clock_mhz);
    println!(
        "DRAM bandwidth:         {:.0} GB/s",
        spec.dram_bandwidth_gbps
    );
    println!("L2 cache:               {} MiB", spec.l2_size_bytes >> 20);
    println!(
        "Device memory:          {} GiB",
        spec.global_mem_bytes >> 30
    );
    println!();
    println!("Memory model:");
    println!(
        "  MLP window/warp:      {} sectors ({:.2} B/cycle)",
        spec.mem_model.max_outstanding_sectors_per_warp,
        spec.mem_model.warp_mlp_bytes_per_cycle()
    );
    println!(
        "  DRAM latency:         {} cycles",
        spec.mem_model.dram_latency_cycles
    );
    println!(
        "  Row-locality eff:     {:.2} (1 region) -> {:.2} (64 regions)",
        spec.mem_model.dram_efficiency(1),
        spec.mem_model.dram_efficiency(64)
    );
    println!();
    println!("Sweep: instances = 1,2,4,8,16,32,64; thread limits = 32, 1024");
    println!("(teams = instances; one team per instance, as in §4.2)");
    println!();
    println!("Occupancy at the sweep corners:");
    for (n, t) in CORNERS {
        let occ = occupancy(&spec, &LaunchConfig::linear(n, t)).unwrap();
        println!(
            "  n={n:<3} t={t:<5} -> {:>3} blocks/SM, occupancy {:>5.1}%, waves {}",
            occ.blocks_per_sm,
            occ.occupancy * 100.0,
            occ.waves
        );
    }
    println!();
    println!("Benchmarks: XSBench, RSBench, AMGmk (relax), Page-Rank (HeCBench)");
    println!("Compiler:   declare-target -> main-canonicalize -> host-call-resolve");
    println!("            -> globals-to-shared -> parallelism-expansion -> DCE");
}

/// Machine-readable form of the configuration table.
fn config_json(spec: &GpuSpec) -> String {
    let corners: Vec<Value> = CORNERS
        .iter()
        .map(|&(n, t)| {
            let occ = occupancy(spec, &LaunchConfig::linear(n, t)).unwrap();
            Value::Object(vec![
                ("instances".into(), Value::U64(n as u64)),
                ("thread_limit".into(), Value::U64(t as u64)),
                ("blocks_per_sm".into(), Value::U64(occ.blocks_per_sm as u64)),
                ("occupancy".into(), Value::F64(occ.occupancy)),
                ("waves".into(), Value::U64(occ.waves as u64)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("device".into(), spec.to_value()),
        ("occupancy_corners".into(), Value::Array(corners)),
    ]);
    serde_json::to_string_pretty(&doc).expect("config serializes")
}
