//! Regenerate the §4.2 configuration table: the device the evaluation
//! models, the compiler pipeline configuration, and the sweep parameters.

use gpu_arch::{occupancy, GpuSpec, LaunchConfig};

fn main() {
    let spec = GpuSpec::a100_40gb();
    println!("Evaluation configuration (paper §4.2)");
    println!("=====================================");
    println!("Device:                 {}", spec.name);
    println!("SMs:                    {}", spec.sm_count);
    println!("Warp size:              {}", spec.warp_size);
    println!("Max threads/block:      {}", spec.max_threads_per_block);
    println!("Max threads/SM:         {}", spec.max_threads_per_sm);
    println!(
        "Shared memory/SM:       {} KiB",
        spec.shared_mem_per_sm / 1024
    );
    println!("Core clock:             {} MHz", spec.clock_mhz);
    println!(
        "DRAM bandwidth:         {:.0} GB/s",
        spec.dram_bandwidth_gbps
    );
    println!("L2 cache:               {} MiB", spec.l2_size_bytes >> 20);
    println!(
        "Device memory:          {} GiB",
        spec.global_mem_bytes >> 30
    );
    println!();
    println!("Memory model:");
    println!(
        "  MLP window/warp:      {} sectors ({:.2} B/cycle)",
        spec.mem_model.max_outstanding_sectors_per_warp,
        spec.mem_model.warp_mlp_bytes_per_cycle()
    );
    println!(
        "  DRAM latency:         {} cycles",
        spec.mem_model.dram_latency_cycles
    );
    println!(
        "  Row-locality eff:     {:.2} (1 region) -> {:.2} (64 regions)",
        spec.mem_model.dram_efficiency(1),
        spec.mem_model.dram_efficiency(64)
    );
    println!();
    println!("Sweep: instances = 1,2,4,8,16,32,64; thread limits = 32, 1024");
    println!("(teams = instances; one team per instance, as in §4.2)");
    println!();
    println!("Occupancy at the sweep corners:");
    for (n, t) in [(1u32, 32u32), (64, 32), (1, 1024), (64, 1024)] {
        let occ = occupancy(&spec, &LaunchConfig::linear(n, t)).unwrap();
        println!(
            "  n={n:<3} t={t:<5} -> {:>3} blocks/SM, occupancy {:>5.1}%, waves {}",
            occ.blocks_per_sm,
            occ.occupancy * 100.0,
            occ.waves
        );
    }
    println!();
    println!("Benchmarks: XSBench, RSBench, AMGmk (relax), Page-Rank (HeCBench)");
    println!("Compiler:   declare-target -> main-canonicalize -> host-call-resolve");
    println!("            -> globals-to-shared -> parallelism-expansion -> DCE");
}
