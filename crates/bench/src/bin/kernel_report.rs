//! Per-phase kernel profile of one benchmark run — the observability tool
//! for understanding *why* a kernel takes the time the Figure-6 harness
//! measures: per-phase work, the stall-cycle decomposition, and the
//! kernel's position on the device roofline.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin kernel_report -- xsbench -l 200 -g 24
//! cargo run --release -p dgc-bench --bin kernel_report -- --json amgmk -n 10 -s 10
//! ```

use dgc_core::Loader;
use dgc_prof::RooflinePoint;
use gpu_sim::{Gpu, MixedSeg, StallBuckets};
use serde::{Serialize, Value};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.is_empty() {
        eprintln!("usage: kernel_report [--json] <app> [app args...]");
        eprintln!("  apps: xsbench, rsbench, amgmk, pagerank");
        std::process::exit(2);
    }
    let app_name = args.remove(0);
    let Some(app) = dgc_apps::app_by_name(&app_name) else {
        eprintln!("unknown application '{app_name}'");
        std::process::exit(2);
    };
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    let loader = Loader {
        keep_traces: true,
        collect_stalls: true,
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let res = loader
        .run(&mut gpu, &app, &argv, host_rpc::HostServices::default())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    let roofline = RooflinePoint::from_report(&gpu.spec, &res.report);
    let stalls = res.stalls.as_ref().expect("collect_stalls was set");
    let traces = res.block_traces.as_ref().expect("keep_traces was set");

    if json {
        print_json(&res, &roofline, traces);
        return;
    }

    println!("{}", res.report.summary());
    println!();
    println!(
        "{:<20} {:>12} {:>14} {:>10} {:>8} {:>6}",
        "phase", "warp insts", "moved bytes", "sectors", "coal %", "RPCs"
    );
    for team in traces.iter().flat_map(|b| &b.teams) {
        for phase in &team.phases {
            let mut total = MixedSeg::default();
            for w in &phase.warps {
                total.merge(w);
            }
            println!(
                "{:<20} {:>12.0} {:>14.0} {:>10} {:>8.0} {:>6}",
                phase.label,
                total.insts,
                total.moved_bytes,
                total.sectors,
                total.coalescing_efficiency() * 100.0,
                total.rpc_calls,
            );
        }
    }
    println!();
    println!(
        "stall-cycle attribution (kernel, {:.0} cycles):",
        stalls.kernel.total()
    );
    let cycles = stalls.kernel.total().max(1e-12);
    for (name, value) in stalls.kernel.named() {
        println!(
            "  {name:<10} {value:>14.0} cycles  {:>5.1}%",
            value / cycles * 100.0
        );
    }
    println!("  dominant:  {}", stalls.kernel.dominant());
    println!();
    println!("roofline: {}", roofline.render());
    println!();
    println!("program output:");
    print!("{}", res.stdout);
}

fn print_json(
    res: &dgc_core::AppRunResult,
    roofline: &RooflinePoint,
    traces: &[gpu_sim::BlockTrace],
) {
    let stalls = res.stalls.as_ref().expect("collect_stalls was set");
    let mut phases: Vec<Value> = Vec::new();
    for team in traces.iter().flat_map(|b| &b.teams) {
        for phase in &team.phases {
            let mut total = MixedSeg::default();
            for w in &phase.warps {
                total.merge(w);
            }
            phases.push(Value::Object(vec![
                ("label".into(), Value::Str(phase.label.clone())),
                ("warp_insts".into(), Value::F64(total.insts)),
                ("moved_bytes".into(), Value::F64(total.moved_bytes)),
                ("sectors".into(), Value::U64(total.sectors)),
                (
                    "coalescing".into(),
                    Value::F64(total.coalescing_efficiency()),
                ),
                ("rpc_calls".into(), Value::U64(total.rpc_calls)),
            ]));
        }
    }
    let stall_obj = |b: &StallBuckets| {
        Value::Object(
            b.named()
                .iter()
                .map(|&(name, v)| (name.to_string(), Value::F64(v)))
                .collect(),
        )
    };
    let doc = Value::Object(vec![
        ("report".into(), res.report.to_value()),
        ("stall_kernel".into(), stall_obj(&stalls.kernel)),
        (
            "stall_blocks".into(),
            Value::Array(stalls.blocks.iter().map(stall_obj).collect()),
        ),
        ("roofline".into(), roofline.to_value()),
        ("phases".into(), Value::Array(phases)),
        ("stdout".into(), Value::Str(res.stdout.clone())),
    ]);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serializes")
    );
}
