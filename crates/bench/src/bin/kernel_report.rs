//! Per-phase kernel profile of one benchmark run — the observability tool
//! for understanding *why* a kernel takes the time the Figure-6 harness
//! measures.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin kernel_report -- xsbench -l 200 -g 24
//! ```

use dgc_core::Loader;
use gpu_sim::{Gpu, MixedSeg};
use host_rpc::HostServices;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: kernel_report <app> [app args...]");
        eprintln!("  apps: xsbench, rsbench, amgmk, pagerank");
        std::process::exit(2);
    }
    let app_name = args.remove(0);
    let Some(app) = dgc_apps::app_by_name(&app_name) else {
        eprintln!("unknown application '{app_name}'");
        std::process::exit(2);
    };
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();

    let loader = Loader {
        keep_traces: true,
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let res = loader
        .run(&mut gpu, &app, &argv, HostServices::default())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    println!("{}", res.report.summary());
    println!();
    println!(
        "{:<20} {:>12} {:>14} {:>10} {:>8} {:>6}",
        "phase", "warp insts", "moved bytes", "sectors", "coal %", "RPCs"
    );
    let traces = res.block_traces.expect("keep_traces was set");
    for team in traces.iter().flat_map(|b| &b.teams) {
        for phase in &team.phases {
            let mut total = MixedSeg::default();
            for w in &phase.warps {
                total.merge(w);
            }
            println!(
                "{:<20} {:>12.0} {:>14.0} {:>10} {:>8.0} {:>6}",
                phase.label,
                total.insts,
                total.moved_bytes,
                total.sectors,
                total.coalescing_efficiency() * 100.0,
                total.rpc_calls,
            );
        }
    }
    println!();
    println!("program output:");
    print!("{}", res.stdout);
}
