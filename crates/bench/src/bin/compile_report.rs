//! Show what the direct-GPU-compilation pipeline does to a benchmark's
//! module: the module before and after, every diagnostic, and the image
//! metadata the runtime consumes.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin compile_report -- xsbench
//! ```

use dgc_core::Loader;
use dgc_ir::Module;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("xsbench");
    let Some(app) = dgc_apps::app_by_name(app_name) else {
        eprintln!("unknown application '{app_name}' (xsbench, rsbench, amgmk, pagerank)");
        std::process::exit(2);
    };

    let before = Module::parse(&app.module_text).expect("benchmark modules parse");
    println!("==== input module (what the linker hands the LTO pipeline) ====");
    println!("{before}\n");

    let image = Loader::default()
        .compile_app(&app)
        .expect("benchmarks compile");
    println!("==== compiled module ====");
    println!("{}\n", image.module);

    println!("==== diagnostics ====");
    for d in image.diagnostics.iter() {
        println!("[{:?}] {}: {}", d.severity, d.pass, d.message);
    }
    println!();

    println!("==== image metadata (consumed by the loaders) ====");
    println!("entry:               {}", image.entry);
    println!("RPC services:        {:?}", image.rpc_services);
    println!(
        "parallel regions:    {} ({} expandable; multi-team eligible: {})",
        image.expansion.parallel_regions,
        image.expansion.expandable_regions,
        image.expansion.multi_team_eligible
    );
    println!("global placements:");
    for (name, placement) in &image.global_placements {
        println!("  @{name:<20} {placement}");
    }
    println!("team-shared bytes:   {}", image.team_shared_globals_bytes());
    let hazards = image.isolation_hazards();
    if hazards.is_empty() {
        println!("isolation hazards:   none (ensemble-safe)");
    } else {
        println!("isolation hazards:   {hazards:?} (§3.3: instances may race)");
    }
}
