//! Regenerate the paper's Figure 6: relative speedup of the four
//! benchmarks under ensemble execution, at thread limits 32 and 1024.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin figure6               # both panels
//! cargo run --release -p dgc-bench --bin figure6 -- --thread-limit 32
//! cargo run --release -p dgc-bench --bin figure6 -- --smoke    # quick sizes
//! cargo run --release -p dgc-bench --bin figure6 -- --json out.json
//! cargo run --release -p dgc-bench --bin figure6 -- --metrics-out m.jsonl
//! cargo run --release -p dgc-bench --bin figure6 -- --monitor-out s.om
//! ```
//!
//! `--monitor-out <snapshots.om>` streams OpenMetrics snapshots of the
//! sweep's operational metrics (instances completed, kernel launches,
//! heap high-water, latency percentiles) every `--monitor-interval <ms>`
//! (default 1000) plus a final snapshot at exit — the same format the
//! ensembler CLI emits, lintable and renderable by the `dgc-monitor`
//! binary.

use dgc_bench::{
    default_workloads, device_by_name, run_figure6_panel_monitored_on, smoke_workloads,
    THREAD_LIMITS,
};
use dgc_monitor::{MonitorRegistry, MonitorWriter};
use dgc_obs::MonitorSink;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut thread_limits: Vec<u32> = THREAD_LIMITS.to_vec();
    let mut smoke = false;
    let mut extended = false;
    let mut device = "a100".to_string();
    let mut json_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut monitor_path: Option<String> = None;
    let mut monitor_interval_ms = 1000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--thread-limit" => {
                let v = it.next().expect("--thread-limit needs a value");
                thread_limits = vec![v.parse().expect("thread limit must be a number")];
            }
            "--smoke" => smoke = true,
            "--extended" => extended = true,
            "--device" => device = it.next().expect("--device needs a name").clone(),
            "--json" => json_path = Some(it.next().expect("--json needs a path").clone()),
            "--metrics-out" => {
                metrics_path = Some(it.next().expect("--metrics-out needs a path").clone());
            }
            "--monitor-out" => {
                monitor_path = Some(it.next().expect("--monitor-out needs a path").clone());
            }
            "--monitor-interval" => {
                let v = it.next().expect("--monitor-interval needs a value");
                monitor_interval_ms = v.parse().expect("--monitor-interval must be milliseconds");
                assert!(monitor_interval_ms > 0, "--monitor-interval must be > 0");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let spec = device_by_name(&device).unwrap_or_else(|| {
        eprintln!("unknown device '{device}' (use a100, v100 or mi210)");
        std::process::exit(2);
    });
    let workloads = if smoke {
        smoke_workloads()
    } else {
        default_workloads()
    };

    // --monitor-out: stream sweep metrics from a background thread. The
    // sink is pure observation — panel numbers are unaffected.
    let monitoring = monitor_path.as_ref().map(|path| {
        let registry = Arc::new(MonitorRegistry::new());
        let writer = MonitorWriter::spawn(
            registry.clone(),
            path.into(),
            std::time::Duration::from_millis(monitor_interval_ms),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        let sink: Arc<dyn MonitorSink> = registry;
        (sink, writer)
    });
    let monitor = monitoring.as_ref().map(|(sink, _)| sink);

    let mut panels = Vec::new();
    let mut measured = Vec::new();
    for tl in thread_limits {
        eprintln!("running panel: {} thread limit {tl} ...", spec.name);
        let (panel, configs) =
            run_figure6_panel_monitored_on(&spec, tl, &workloads, extended, monitor);
        println!("{}", panel.render());
        let (bench, peak) = panel.peak();
        println!("peak speedup @ TL {tl}: {peak:.1}x ({bench})\n");
        panels.push(panel);
        measured.extend(configs);
    }

    if let Some((_, writer)) = monitoring {
        let path = monitor_path.as_deref().unwrap_or_default();
        writer.stop().unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote monitor snapshots {path}");
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&panels).expect("panels serialize");
        dgc_obs::write_atomic(&path, json).expect("write JSON output");
        eprintln!("wrote {path}");
    }
    if let Some(path) = metrics_path {
        let mut out = String::new();
        for cfg in &measured {
            out.push_str(&serde_json::to_string(cfg).expect("config serializes"));
            out.push('\n');
        }
        dgc_obs::write_atomic(&path, out).expect("write metrics output");
        eprintln!("wrote {path} ({} configurations)", measured.len());
    }
}
