//! Multi-device ensemble sweep: makespan per placement policy across a
//! (possibly heterogeneous) simulated fleet — the multi-GPU counterpart
//! of the `figure6` sweep.
//!
//! ```text
//! cargo run --release -p dgc-bench --bin sched_sweep
//! cargo run --release -p dgc-bench --bin sched_sweep -- --smoke
//! cargo run --release -p dgc-bench --bin sched_sweep -- --devices "a100,a100*0.5"
//! cargo run --release -p dgc-bench --bin sched_sweep -- --metrics-out sched.jsonl
//! ```
//!
//! For every workload × instance count × placement policy the sweep runs
//! one sharded launch and reports the makespan (slowest device). The
//! `--metrics-out` JSONL stream reuses the `figure6` configuration record
//! with the benchmark key extended to `name/d<M>/<placement>`, so the
//! `prof-diff` gate consumes it unmodified.

use dgc_bench::{default_workloads, smoke_workloads, MeasuredConfig, Workload};
use dgc_core::EnsembleOptions;
use dgc_obs::Recorder;
use dgc_sched::{run_ensemble_sharded, Placement};
use gpu_arch::DeviceRegistry;
use gpu_sim::DeviceFleet;

fn sweep_one(
    workload: &Workload,
    registry: &DeviceRegistry,
    fleet_name: &str,
    instances: u32,
    thread_limit: u32,
    placement: Placement,
) -> MeasuredConfig {
    let mut fleet = DeviceFleet::from_registry(registry);
    let opts = EnsembleOptions {
        num_instances: instances,
        thread_limit,
        // One argument line replicated across instances (the paper's
        // homogeneous sweep), so cycling is intentional.
        cycle_args: true,
        ..Default::default()
    };
    let res = run_ensemble_sharded(
        &mut fleet,
        &workload.app(),
        std::slice::from_ref(&workload.args),
        &opts,
        0,
        placement,
        &mut Recorder::disabled(),
    )
    .expect("sweep configurations are launchable");
    let oom = res.ensemble.instances.iter().any(|o| o.oom);
    MeasuredConfig {
        benchmark: format!("{}/d{}/{}", workload.name, registry.len(), placement.name()),
        device: fleet_name.to_string(),
        thread_limit,
        instances,
        time_s: if oom { None } else { Some(res.makespan_s()) },
        metrics: res.ensemble.metrics,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut devices = "a100,a100*0.5".to_string();
    let mut thread_limit = 32u32;
    let mut metrics_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--devices" => devices = it.next().expect("--devices needs a spec").clone(),
            "--thread-limit" => {
                let v = it.next().expect("--thread-limit needs a value");
                thread_limit = v.parse().expect("thread limit must be a number");
            }
            "--metrics-out" => {
                metrics_path = Some(it.next().expect("--metrics-out needs a path").clone());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let registry = DeviceRegistry::parse(&devices).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let workloads = if smoke {
        smoke_workloads()
    } else {
        default_workloads()
    };
    let counts: &[u32] = if smoke {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    println!(
        "sched sweep: fleet [{devices}] ({} devices), thread limit {thread_limit}",
        registry.len()
    );
    let mut measured: Vec<MeasuredConfig> = Vec::new();
    for w in &workloads {
        println!("\n{}  (makespan ms per placement)", w.name);
        println!(
            "{:>6}  {:>12}  {:>12}  {:>12}  {:>8}",
            "N", "round-robin", "greedy", "lpt", "lpt gain"
        );
        for &n in counts {
            let mut row = Vec::new();
            for placement in Placement::all() {
                let cfg = sweep_one(w, &registry, &devices, n, thread_limit, placement);
                row.push(cfg.time_s);
                measured.push(cfg);
            }
            let fmt = |t: Option<f64>| match t {
                Some(s) => format!("{:.3}", s * 1e3),
                None => "OOM".to_string(),
            };
            let gain = match (row[0], row[2]) {
                (Some(rr), Some(lpt)) if lpt > 0.0 => format!("{:.2}x", rr / lpt),
                _ => "-".to_string(),
            };
            println!(
                "{:>6}  {:>12}  {:>12}  {:>12}  {:>8}",
                n,
                fmt(row[0]),
                fmt(row[1]),
                fmt(row[2]),
                gain
            );
        }
    }

    if let Some(path) = metrics_path {
        let mut out = String::new();
        for cfg in &measured {
            out.push_str(&serde_json::to_string(cfg).expect("config serializes"));
            out.push('\n');
        }
        dgc_obs::write_atomic(&path, out).expect("write metrics output");
        eprintln!("wrote {path} ({} configurations)", measured.len());
    }
}
