//! AMGmk: the `relax` kernel of the CORAL AMGmk proxy application —
//! weighted Jacobi sweeps over the 7-point Laplacian of a 3-D grid.
//!
//! The kernel streams the matrix (values and column indices) and gathers
//! `x[col]`: almost no arithmetic per byte, which is why the paper sees
//! AMGmk lose the most ensemble scaling — its working set is L2-resident
//! for one instance and L2-thrashing for 64.
//!
//! The matrix is stored 7-wide ELL (a regular-stencil-friendly layout;
//! absent neighbours carry a zero coefficient against the diagonal
//! column), which keeps generation parallel and the access pattern
//! faithful to the relax loop.

use crate::calibration as cal;
use crate::common::parse_flag_or;
use device_libc::rand::Lcg64;
use device_libc::stdio::dl_printf;
use dgc_core::{AppContext, HostApp};
use gpu_sim::{KernelError, TeamCtx};

/// Parsed AMGmk arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmgParams {
    /// Grid dimension (`-n`): the matrix has `n³` rows.
    pub dim: u64,
    /// Relax sweeps (`-s`).
    pub sweeps: u64,
}

impl AmgParams {
    pub fn parse(argv: &[String]) -> AmgParams {
        AmgParams {
            dim: parse_flag_or(argv, "-n", cal::AMG_SCALED_DIM).max(2),
            sweeps: parse_flag_or(argv, "-s", cal::AMG_SCALED_SWEEPS).max(1),
        }
    }

    pub fn rows(&self) -> u64 {
        self.dim * self.dim * self.dim
    }
}

/// Jacobi damping factor.
const OMEGA: f64 = 0.8;

/// The 7-point stencil neighbour offsets in (x, y, z).
const STENCIL: [(i64, i64, i64); 6] = [
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
];

/// Column index of slot `s` (0 = diagonal, 1..=6 neighbours) for row `r`;
/// out-of-grid neighbours fold onto the diagonal with coefficient 0.
fn ell_col(r: u64, s: usize, dim: u64) -> u64 {
    if s == 0 {
        return r;
    }
    let (dx, dy, dz) = STENCIL[s - 1];
    let x = (r % dim) as i64 + dx;
    let y = ((r / dim) % dim) as i64 + dy;
    let z = (r / (dim * dim)) as i64 + dz;
    if x < 0 || y < 0 || z < 0 || x >= dim as i64 || y >= dim as i64 || z >= dim as i64 {
        r
    } else {
        (x as u64) + dim * (y as u64) + dim * dim * (z as u64)
    }
}

/// Coefficient of slot `s` for row `r`.
fn ell_val(r: u64, s: usize, dim: u64) -> f64 {
    if s == 0 {
        // Strictly diagonally dominant Laplacian diagonal.
        6.5
    } else if ell_col(r, s, dim) == r {
        0.0 // folded boundary slot
    } else {
        -1.0
    }
}

/// Right-hand side for row `r`.
fn rhs_value(r: u64) -> f64 {
    Lcg64::new(0xA3_6B + r).next_f64()
}

/// Initial guess.
fn x0_value(r: u64) -> f64 {
    Lcg64::new(0x1217 + r).next_f64() * 0.1
}

/// Host reference: run the sweeps in plain Rust and return `Σ x`.
pub fn reference_checksum(p: &AmgParams) -> f64 {
    let rows = p.rows();
    let dim = p.dim;
    let mut x: Vec<f64> = (0..rows).map(x0_value).collect();
    let mut xn = vec![0.0f64; rows as usize];
    for _ in 0..p.sweeps {
        for r in 0..rows {
            let mut acc = rhs_value(r);
            let mut diag = 0.0;
            for s in 0..7 {
                let col = ell_col(r, s, dim);
                let val = ell_val(r, s, dim);
                if s == 0 {
                    diag = val;
                } else {
                    acc -= val * x[col as usize];
                }
            }
            let xr = x[r as usize];
            xn[r as usize] = xr + OMEGA * (acc / diag - xr);
        }
        std::mem::swap(&mut x, &mut xn);
    }
    x.iter().sum()
}

fn amg_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let p = AmgParams::parse(&cx.argv);
    let rows = p.rows();
    let dim = p.dim;

    let (cols, vals, rhs, mut x, mut xn) = team.serial("setup", |lane| {
        lane.dev_reserve(cal::amg_paper_bytes())?;
        let cols = lane.dev_alloc(rows * 7 * 4)?;
        let vals = lane.dev_alloc(rows * 7 * 8)?;
        let rhs = lane.dev_alloc(rows * 8)?;
        let x = lane.dev_alloc(rows * 8)?;
        let xn = lane.dev_alloc(rows * 8)?;
        lane.work(200.0);
        Ok((cols, vals, rhs, x, xn))
    })?;

    // Matrix/vector generation (AMGmk's laplacian setup).
    // ELL is stored slot-major (`slot * rows + row`) so that adjacent
    // lanes read adjacent elements — the standard coalescing-friendly
    // layout GPU SpMV ports use.
    team.parallel_for("generate", rows, |r, lane| {
        for s in 0..7usize {
            lane.st_idx::<u32>(cols, s as u64 * rows + r, ell_col(r, s, dim) as u32)?;
            lane.st_idx::<f64>(vals, s as u64 * rows + r, ell_val(r, s, dim))?;
        }
        lane.st_idx::<f64>(rhs, r, rhs_value(r))?;
        lane.st_idx::<f64>(x, r, x0_value(r))?;
        lane.work(14.0);
        Ok(())
    })?;

    // The measured kernel: `sweeps` damped-Jacobi relax passes.
    for _ in 0..p.sweeps {
        team.parallel_for("relax", rows, |r, lane| {
            let mut acc = lane.ld_idx::<f64>(rhs, r)?;
            let mut diag = 1.0;
            for s in 0..7u64 {
                let col = lane.ld_idx::<u32>(cols, s * rows + r)? as u64;
                let val = lane.ld_idx::<f64>(vals, s * rows + r)?;
                if s == 0 {
                    diag = val;
                } else {
                    acc -= val * lane.ld_idx::<f64>(x, col)?;
                }
                lane.work(cal::AMG_NNZ_WORK);
            }
            let xr = lane.ld_idx::<f64>(x, r)?;
            lane.st_idx::<f64>(xn, r, xr + OMEGA * (acc / diag - xr))?;
            lane.work(4.0);
            Ok(())
        })?;
        std::mem::swap(&mut x, &mut xn);
    }

    let checksum =
        team.parallel_for_reduce_f64("checksum", rows, |r, lane| lane.ld_idx::<f64>(x, r))?;

    let sweeps = p.sweeps;
    team.serial("report", |lane| {
        dl_printf(
            lane,
            "Relax complete.\nRows: %d\nSweeps: %d\nVerification checksum: %.10e\n",
            &[rows.into(), sweeps.into(), checksum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

const MODULE: &str = r#"
module "amgmk" {
  global @relax_weight size=8 align=8
  func @main arity=2 calls(@parse_args, @laplacian_setup, @relax, @printf)
  func @parse_args arity=2 calls(@atoi)
  func @laplacian_setup arity=1 calls(@malloc, @rand) !parallel(1) !order_independent
  func @relax arity=1 !parallel(1) !order_independent
  extern func @printf variadic
  extern func @atoi
  extern func @malloc
  extern func @rand
}
"#;

fn footprint_scale(argv: &[String]) -> f64 {
    let p = AmgParams::parse(argv);
    cal::amg_paper_bytes() as f64 / cal::amg_scaled_bytes(p.dim).max(1) as f64
}

/// The packaged AMGmk application.
pub fn app() -> HostApp {
    let mut a = HostApp::new("amgmk", MODULE, amg_main);
    a.footprint_scale = Some(footprint_scale);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::Loader;
    use gpu_sim::Gpu;
    use host_rpc::HostServices;

    #[test]
    fn params_parse() {
        let argv: Vec<String> = ["amgmk", "-n", "6", "-s", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(AmgParams::parse(&argv), AmgParams { dim: 6, sweeps: 3 });
        assert_eq!(AmgParams::parse(&argv).rows(), 216);
    }

    #[test]
    fn stencil_columns_stay_in_grid() {
        let dim = 4u64;
        for r in 0..dim * dim * dim {
            for s in 0..7usize {
                assert!(ell_col(r, s, dim) < dim * dim * dim);
            }
        }
    }

    #[test]
    fn jacobi_converges_toward_solution() {
        // With a diagonally dominant matrix, more sweeps → residual sum
        // approaches A⁻¹ rhs; checksum should stabilize.
        let few = reference_checksum(&AmgParams { dim: 5, sweeps: 5 });
        let many = reference_checksum(&AmgParams { dim: 5, sweeps: 60 });
        let more = reference_checksum(&AmgParams { dim: 5, sweeps: 80 });
        assert!((many - more).abs() < (few - more).abs());
    }

    #[test]
    fn device_checksum_matches_reference() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(
                &mut gpu,
                &app(),
                &["-n", "5", "-s", "4"],
                HostServices::default(),
            )
            .unwrap();
        assert_eq!(res.exit_code, Some(0), "trap: {:?}", res.trap);
        let expected = reference_checksum(&AmgParams { dim: 5, sweeps: 4 });
        let line = res
            .stdout
            .lines()
            .find(|l| l.starts_with("Verification"))
            .unwrap();
        let printed: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(
            (printed - expected).abs() <= expected.abs() * 1e-9,
            "printed {printed} vs expected {expected}"
        );
    }

    #[test]
    fn kernel_is_streaming_memory_bound() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(
                &mut gpu,
                &app(),
                &["-n", "8", "-s", "4"],
                HostServices::default(),
            )
            .unwrap();
        let bpi = res.report.useful_bytes / res.report.total_insts;
        assert!(bpi > 1.5, "bytes/inst = {bpi}");
    }
}
