//! Per-benchmark calibration constants.
//!
//! Two kinds of numbers live here, kept separate on purpose:
//!
//! * **Paper-scale constants** (`*_PAPER_*`): the problem sizes of the
//!   benchmarks' default/"small" configurations as the paper ran them.
//!   They determine the *reserved* device footprint (out-of-memory
//!   behaviour) and the L2 footprint multiplier — i.e. how the memory
//!   system behaves — but are never materialized.
//! * **Scaled defaults** (`*_SCALED_*`): the sizes the harness actually
//!   materializes and executes functionally. Results are checksummed
//!   against host references at these sizes; the *scaling curves* of the
//!   evaluation are emergent from the architecture model, not from these
//!   numbers.
//!
//! Arithmetic-intensity constants (instruction charges per kernel
//! operation) are set once per benchmark to match each code's class —
//! memory-bound lookup (XSBench), compute-bound pole evaluation
//! (RSBench), streaming relax (AMGmk), irregular gather (Page-Rank) —
//! and are not tuned per experiment point.

// ---------------------------------------------------------------- XSBench
/// Nuclides in the "small" XSBench problem (also used scaled).
pub const XS_NUCLIDES: u64 = 68;
/// Nuclides in the "large" XSBench problem (355, as upstream).
pub const XS_LARGE_NUCLIDES: u64 = 355;
/// Gridpoints per nuclide, paper configuration.
pub const XS_PAPER_GRIDPOINTS: u64 = 11_303;
/// Lookups, paper configuration.
pub const XS_PAPER_LOOKUPS: u64 = 15_000_000;
/// Gridpoints per nuclide materialized by default.
pub const XS_SCALED_GRIDPOINTS: u64 = 32;
/// Lookups executed by default.
pub const XS_SCALED_LOOKUPS: u64 = 500;
/// Interpolation work per nuclide per lookup (FLOPs and ALU).
pub const XS_INTERP_WORK: f64 = 14.0;

// ---------------------------------------------------------------- RSBench
/// Nuclides in the RSBench small problem.
pub const RS_NUCLIDES: u64 = 68;
/// Windows per nuclide (paper small: 100).
pub const RS_PAPER_WINDOWS: u64 = 100;
/// Average poles per window, paper configuration.
pub const RS_PAPER_POLES_PER_WINDOW: u64 = 10;
/// Lookups, paper configuration.
pub const RS_PAPER_LOOKUPS: u64 = 10_000_000;
/// Windows materialized by default.
pub const RS_SCALED_WINDOWS: u64 = 20;
/// Poles per window by default.
pub const RS_SCALED_POLES_PER_WINDOW: u64 = 2;
/// Lookups executed by default.
pub const RS_SCALED_LOOKUPS: u64 = 400;
/// Complex multipole evaluation per pole: the Faddeeva-style kernel runs
/// on the order of 150 double-precision FLOPs (complex division,
/// rational approximation) per pole on real hardware.
pub const RS_POLE_WORK: f64 = 150.0;

// ----------------------------------------------------------------- AMGmk
/// Grid dimension of the paper's relax problem (n³ rows).
pub const AMG_PAPER_DIM: u64 = 96;
/// Relax sweeps, paper configuration.
pub const AMG_PAPER_SWEEPS: u64 = 1000;
/// Grid dimension materialized by default.
pub const AMG_SCALED_DIM: u64 = 10;
/// Sweeps executed by default.
pub const AMG_SCALED_SWEEPS: u64 = 10;
/// FLOPs per nonzero in the relax update.
pub const AMG_NNZ_WORK: f64 = 2.0;

// --------------------------------------------------------------- PageRank
/// Vertices in the paper-scale graph. Chosen so one instance's CSR +
/// rank arrays occupy ≈ 9.3 GB: four instances fit the A100's 40 GB,
/// eight do not — reproducing §4.3's "only two and four instances".
pub const PR_PAPER_VERTICES: u64 = 60_000_000;
/// Average in-degree of the paper-scale graph.
pub const PR_PAPER_DEGREE: u64 = 16;
/// Propagation iterations, paper configuration.
pub const PR_PAPER_ITERATIONS: u64 = 100;
/// Vertices materialized by default.
pub const PR_SCALED_VERTICES: u64 = 3_000;
/// Average in-degree by default.
pub const PR_SCALED_DEGREE: u64 = 10;
/// Iterations executed by default.
pub const PR_SCALED_ITERATIONS: u64 = 5;
/// FLOPs per edge in the propagation step.
pub const PR_EDGE_WORK: f64 = 2.0;

/// XSBench footprint for `n` nuclides of `g` gridpoints (unionized energy
/// grid + index grid + per-nuclide xs tables).
pub fn xs_bytes(n: u64, g: u64) -> u64 {
    let u = n * g;
    u * 8 + u * n * 4 + n * g * 6 * 8
}

/// Paper-scale XSBench footprint of the small problem.
pub fn xs_paper_bytes() -> u64 {
    xs_bytes(XS_NUCLIDES, XS_PAPER_GRIDPOINTS)
}

/// Paper-scale XSBench footprint of the large problem (≈ 5.9 GB: only a
/// handful of instances fit a 40 GB device).
pub fn xs_large_paper_bytes() -> u64 {
    xs_bytes(XS_LARGE_NUCLIDES, XS_PAPER_GRIDPOINTS)
}

/// Scaled XSBench footprint for the given nuclide and gridpoint counts.
pub fn xs_scaled_bytes_n(n: u64, gridpoints: u64) -> u64 {
    xs_bytes(n, gridpoints)
}

/// Scaled XSBench footprint at the default (small) nuclide count.
pub fn xs_scaled_bytes(gridpoints: u64) -> u64 {
    xs_bytes(XS_NUCLIDES, gridpoints)
}

/// Paper-scale RSBench footprint (pole and window tables).
pub fn rs_paper_bytes() -> u64 {
    let poles = RS_NUCLIDES * RS_PAPER_WINDOWS * RS_PAPER_POLES_PER_WINDOW;
    poles * 4 * 8 + RS_NUCLIDES * RS_PAPER_WINDOWS * 2 * 8
}

/// Scaled RSBench footprint.
pub fn rs_scaled_bytes(windows: u64, poles_per_window: u64) -> u64 {
    let poles = RS_NUCLIDES * windows * poles_per_window;
    poles * 4 * 8 + RS_NUCLIDES * windows * 2 * 8
}

/// Paper-scale AMGmk footprint (CSR 7-point matrix + vectors).
pub fn amg_paper_bytes() -> u64 {
    amg_scaled_bytes(AMG_PAPER_DIM)
}

/// AMGmk footprint at grid dimension `dim`.
pub fn amg_scaled_bytes(dim: u64) -> u64 {
    let rows = dim * dim * dim;
    let nnz = rows * 7;
    nnz * (8 + 4) + (rows + 1) * 4 + rows * 8 * 3
}

/// Paper-scale Page-Rank footprint (CSR graph + rank/out-degree arrays).
pub fn pr_paper_bytes() -> u64 {
    pr_scaled_bytes(PR_PAPER_VERTICES, PR_PAPER_DEGREE)
}

/// Page-Rank footprint for `v` vertices of average degree `d`.
pub fn pr_scaled_bytes(v: u64, d: u64) -> u64 {
    let e = v * d;
    (v + 1) * 8 + e * 8 + v * 8 * 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsbench_paper_footprint_fits_64_instances() {
        // 64 concurrent instances must fit the 40 GB device (the paper ran
        // XSBench at 64 instances).
        assert!(64 * xs_paper_bytes() < 40 << 30);
        // ...but the footprint must dwarf the 40 MB L2.
        assert!(xs_paper_bytes() > 200 << 20);
    }

    #[test]
    fn pagerank_footprint_reproduces_the_oom_boundary() {
        let b = pr_paper_bytes();
        assert!(4 * b < 40 << 30, "4 instances must fit ({b} B each)");
        assert!(8 * b > 40 << 30, "8 instances must not fit ({b} B each)");
    }

    #[test]
    fn rsbench_is_small() {
        assert!(rs_paper_bytes() < 8 << 20);
    }

    #[test]
    fn amgmk_exceeds_l2_but_fits_memory() {
        // The relax problem streams a working set larger than the 40 MB L2
        // (so it is DRAM-bandwidth-bound) yet 64 instances fit the device.
        let b = amg_paper_bytes();
        assert!(b > 40 << 20, "working set ({b} B) must exceed L2");
        assert!(64 * b < 40 << 30, "64 instances must fit device memory");
    }

    #[test]
    fn scaled_sizes_are_small() {
        assert!(xs_scaled_bytes(XS_SCALED_GRIDPOINTS) < 4 << 20);
        assert!(rs_scaled_bytes(RS_SCALED_WINDOWS, RS_SCALED_POLES_PER_WINDOW) < 1 << 20);
        assert!(amg_scaled_bytes(AMG_SCALED_DIM) < 1 << 20);
        assert!(pr_scaled_bytes(PR_SCALED_VERTICES, PR_SCALED_DEGREE) < 1 << 20);
    }
}
