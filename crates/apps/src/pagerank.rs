//! Page-Rank (HeCBench): the propagation step of the power-iteration
//! PageRank over a CSR in-edge graph.
//!
//! Each iteration computes, for every vertex `v`,
//! `rank'[v] = (1-d)/V + d · Σ_{u→v} rank[u] / outdeg[u]` — an irregular
//! gather over the in-neighbour list. The paper-scale graph is the largest
//! data set of the four benchmarks: one instance occupies ≈ 9 GB, so four
//! instances fill the A100's 40 GB and eight cannot launch — the §4.3
//! "memory limitations" that restrict the paper's Figure 6 to 2 and 4
//! instances for Page-Rank.
//!
//! The synthetic graph is `degree`-regular in in-edges with hashed source
//! vertices (deterministic), and out-degrees equal the in-degree, keeping
//! device and reference arithmetic identical.

use crate::calibration as cal;
use crate::common::parse_flag_or;
use device_libc::rand::XorShift64;
use device_libc::stdio::dl_printf;
use dgc_core::{AppContext, HostApp};
use gpu_sim::{KernelError, TeamCtx};

/// Damping factor.
const DAMPING: f64 = 0.85;

/// Parsed Page-Rank arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrParams {
    /// Vertices (`-v`).
    pub vertices: u64,
    /// In-degree per vertex (`-d`).
    pub degree: u64,
    /// Propagation iterations (`-i`).
    pub iterations: u64,
}

impl PrParams {
    pub fn parse(argv: &[String]) -> PrParams {
        PrParams {
            vertices: parse_flag_or(argv, "-v", cal::PR_SCALED_VERTICES).max(2),
            degree: parse_flag_or(argv, "-d", cal::PR_SCALED_DEGREE).max(1),
            iterations: parse_flag_or(argv, "-i", cal::PR_SCALED_ITERATIONS).max(1),
        }
    }

    pub fn edges(&self) -> u64 {
        self.vertices * self.degree
    }
}

/// Source vertex of in-edge `k` of vertex `v` (hashed, deterministic).
fn edge_src(v: u64, k: u64, vertices: u64) -> u64 {
    XorShift64::new(v * 0x9E37_79B9 + k + 1).next_range(vertices)
}

/// Host reference: run the iterations in plain Rust; returns `Σ rank`.
pub fn reference_checksum(p: &PrParams) -> f64 {
    let v_count = p.vertices;
    let mut rank = vec![1.0 / v_count as f64; v_count as usize];
    let mut next = vec![0.0f64; v_count as usize];
    let base = (1.0 - DAMPING) / v_count as f64;
    for _ in 0..p.iterations {
        for v in 0..v_count {
            let mut acc = 0.0;
            for k in 0..p.degree {
                let u = edge_src(v, k, v_count);
                acc += rank[u as usize] / p.degree as f64;
            }
            next[v as usize] = base + DAMPING * acc;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank.iter().sum()
}

fn pr_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let p = PrParams::parse(&cx.argv);
    let v_count = p.vertices;
    let deg = p.degree;

    let (srcs, outdeg, mut rank, mut next) = team.serial("setup", |lane| {
        // The paper-scale graph is reserved first: this is the allocation
        // that fails for instances 5..N on a 40 GB device.
        lane.dev_reserve(cal::pr_paper_bytes())?;
        let srcs = lane.dev_alloc(v_count * deg * 8)?;
        let outdeg = lane.dev_alloc(v_count * 4)?;
        let rank = lane.dev_alloc(v_count * 8)?;
        let next = lane.dev_alloc(v_count * 8)?;
        lane.work(200.0);
        Ok((srcs, outdeg, rank, next))
    })?;

    // Graph generation + rank initialization.
    team.parallel_for("generate", v_count, |v, lane| {
        for k in 0..deg {
            lane.st_idx::<u64>(srcs, v * deg + k, edge_src(v, k, v_count))?;
        }
        lane.st_idx::<u32>(outdeg, v, deg as u32)?;
        lane.st_idx::<f64>(rank, v, 1.0 / v_count as f64)?;
        lane.work(6.0 * deg as f64);
        Ok(())
    })?;

    // The measured kernel: the propagation step, iterated.
    let base = (1.0 - DAMPING) / v_count as f64;
    for _ in 0..p.iterations {
        team.parallel_for("propagate", v_count, |v, lane| {
            let mut acc = 0.0;
            for k in 0..deg {
                let u = lane.ld_idx::<u64>(srcs, v * deg + k)?;
                let d = lane.ld_idx::<u32>(outdeg, u)? as f64;
                acc += lane.ld_idx::<f64>(rank, u)? / d;
                lane.work(cal::PR_EDGE_WORK);
            }
            lane.st_idx::<f64>(next, v, base + DAMPING * acc)?;
            lane.work(3.0);
            Ok(())
        })?;
        std::mem::swap(&mut rank, &mut next);
    }

    let checksum =
        team.parallel_for_reduce_f64("checksum", v_count, |v, lane| lane.ld_idx::<f64>(rank, v))?;

    let iters = p.iterations;
    team.serial("report", |lane| {
        dl_printf(
            lane,
            "PageRank complete.\nVertices: %d\nIterations: %d\nVerification checksum: %.10e\n",
            &[v_count.into(), iters.into(), checksum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

const MODULE: &str = r#"
module "pagerank" {
  func @main arity=2 calls(@parse_args, @build_graph, @propagate, @printf)
  func @parse_args arity=2 calls(@atoi)
  func @build_graph arity=1 calls(@malloc, @rand) !parallel(1) !order_independent
  func @propagate arity=1 !parallel(1) !order_independent
  extern func @printf variadic
  extern func @atoi
  extern func @malloc
  extern func @rand
}
"#;

fn footprint_scale(argv: &[String]) -> f64 {
    let p = PrParams::parse(argv);
    cal::pr_paper_bytes() as f64 / cal::pr_scaled_bytes(p.vertices, p.degree).max(1) as f64
}

/// The packaged Page-Rank application.
pub fn app() -> HostApp {
    let mut a = HostApp::new("pagerank", MODULE, pr_main);
    a.footprint_scale = Some(footprint_scale);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::{run_ensemble, EnsembleOptions, Loader};
    use gpu_sim::Gpu;
    use host_rpc::HostServices;

    #[test]
    fn params_parse() {
        let argv: Vec<String> = ["pagerank", "-v", "100", "-d", "4", "-i", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            PrParams::parse(&argv),
            PrParams {
                vertices: 100,
                degree: 4,
                iterations: 2
            }
        );
    }

    #[test]
    fn rank_mass_is_conserved() {
        // With uniform out-degrees the total rank stays 1 each iteration.
        let p = PrParams {
            vertices: 200,
            degree: 5,
            iterations: 10,
        };
        let total = reference_checksum(&p);
        assert!((total - 1.0).abs() < 1e-6, "total rank = {total}");
    }

    #[test]
    fn device_checksum_matches_reference() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(
                &mut gpu,
                &app(),
                &["-v", "150", "-d", "4", "-i", "3"],
                HostServices::default(),
            )
            .unwrap();
        assert_eq!(res.exit_code, Some(0), "trap: {:?}", res.trap);
        let expected = reference_checksum(&PrParams {
            vertices: 150,
            degree: 4,
            iterations: 3,
        });
        let line = res
            .stdout
            .lines()
            .find(|l| l.starts_with("Verification"))
            .unwrap();
        let printed: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(
            (printed - expected).abs() <= expected.abs() * 1e-9,
            "printed {printed} vs expected {expected}"
        );
    }

    #[test]
    fn paper_scale_oom_at_eight_instances() {
        // The §4.3 behaviour: 4 instances run, 8 hit device OOM.
        let run_n = |n: u32| {
            let mut gpu = Gpu::a100();
            let opts = EnsembleOptions {
                cycle_args: true,
                num_instances: n,
                thread_limit: 32,
                ..Default::default()
            };
            run_ensemble(
                &mut gpu,
                &app(),
                &[vec!["-v".into(), "200".into(), "-i".into(), "1".into()]],
                &opts,
                HostServices::default(),
            )
            .unwrap()
        };
        assert!(!run_n(4).any_oom());
        assert!(run_n(8).any_oom());
    }
}
