//! Shared helpers for the benchmark ports.

/// Value following a flag, C-getopt style: `flag_value(&argv, "-l")`.
pub fn flag_value<'a>(argv: &'a [String], flag: &str) -> Option<&'a str> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|p| argv.get(p + 1))
        .map(String::as_str)
}

/// Parse the value of `flag` as `u64`, with a default.
pub fn parse_flag_or(argv: &[String], flag: &str, default: u64) -> u64 {
    flag_value(argv, flag)
        .map(|v| device_libc::string::parse_c_int(v).max(0) as u64)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_extraction() {
        let a = argv(&["prog", "-l", "500", "-g"]);
        assert_eq!(flag_value(&a, "-l"), Some("500"));
        assert_eq!(flag_value(&a, "-g"), None); // trailing flag, no value
        assert_eq!(flag_value(&a, "-x"), None);
    }

    #[test]
    fn parse_with_defaults() {
        let a = argv(&["prog", "-l", "500", "-b", "junk"]);
        assert_eq!(parse_flag_or(&a, "-l", 9), 500);
        assert_eq!(parse_flag_or(&a, "-b", 9), 0); // junk parses to 0, C-style
        assert_eq!(parse_flag_or(&a, "-z", 9), 9);
    }
}
