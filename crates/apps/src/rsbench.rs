//! RSBench: the multipole cross-section lookup proxy (Tramm et al.),
//! compute-bound.
//!
//! Where XSBench tabulates cross sections, RSBench reconstructs them at
//! lookup time from resonance poles: each lookup picks the energy window
//! of every nuclide and evaluates the poles in that window with a
//! Faddeeva-flavoured complex kernel — little memory, lots of arithmetic.
//! The pole tables are small enough to be cache-resident, which is exactly
//! why RSBench scales closest to linear in the paper's Figure 6.

use crate::calibration as cal;
use crate::common::parse_flag_or;
use device_libc::rand::Lcg64;
use device_libc::stdio::dl_printf;
use dgc_core::{AppContext, HostApp};
use gpu_mem::DevicePtr;
use gpu_sim::{KernelError, LaneCtx, TeamCtx};

/// Parsed RSBench arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsParams {
    /// Energy windows per nuclide (`-w`).
    pub windows: u64,
    /// Poles per window (`-p`).
    pub poles_per_window: u64,
    /// Lookups (`-l`).
    pub lookups: u64,
}

impl RsParams {
    pub fn parse(argv: &[String]) -> RsParams {
        RsParams {
            windows: parse_flag_or(argv, "-w", cal::RS_SCALED_WINDOWS).max(1),
            poles_per_window: parse_flag_or(argv, "-p", cal::RS_SCALED_POLES_PER_WINDOW).max(1),
            lookups: parse_flag_or(argv, "-l", cal::RS_SCALED_LOOKUPS).max(1),
        }
    }

    pub fn nuclides(&self) -> u64 {
        cal::RS_NUCLIDES
    }
}

// ---- analytic table contents ----------------------------------------

/// Pole parameter `c` (0..4: ea, rt, ra, rf) of pole `p` in window `w` of
/// nuclide `j`.
fn pole_value(j: u64, w: u64, p: u64, c: u64, windows: u64, ppw: u64) -> f64 {
    Lcg64::new(((j * windows + w) * ppw + p) * 4 + c + 1).next_f64()
}

/// Window curve-fit parameter `c` (0..2).
fn window_value(j: u64, w: u64, c: u64, windows: u64) -> f64 {
    Lcg64::new(0xA11CE + (j * windows + w) * 2 + c).next_f64()
}

/// Particle energy for lookup `i` (shared stream shape with XSBench).
fn particle_energy(i: u64) -> f64 {
    Lcg64::new(0x55_EED + i).next_f64()
}

/// The multipole evaluation: given pole parameters and the lookup energy,
/// produce this pole's contribution to the total cross section. A
/// rational-function stand-in for the Faddeeva evaluation with the same
/// FLOP class.
fn pole_kernel(e: f64, ea: f64, rt: f64, ra: f64, rf: f64) -> f64 {
    let psi = (e - ea) * (1.0 + rt);
    let denom = psi * psi + ra * ra + 1e-6;
    let sig_t = (rf * psi + ra) / denom;
    let sig_a = (rf * ra - psi * 0.5) / denom;
    sig_t + 0.1 * sig_a
}

/// Data access for one lookup; device and reference implementations.
trait RsAccess {
    fn window(&mut self, j: u64, w: u64, c: u64) -> Result<f64, KernelError>;
    fn pole(&mut self, j: u64, w: u64, p: u64, c: u64) -> Result<f64, KernelError>;
}

fn lookup_contribution<A: RsAccess>(
    acc: &mut A,
    e: f64,
    params: &RsParams,
) -> Result<f64, KernelError> {
    let n = params.nuclides();
    let (windows, ppw) = (params.windows, params.poles_per_window);
    let mut total = 0.0;
    for j in 0..n {
        let w = ((e * windows as f64) as u64).min(windows - 1);
        // Window curve fit: low-order background polynomial.
        let a0 = acc.window(j, w, 0)?;
        let a1 = acc.window(j, w, 1)?;
        let mut sig = a0 + a1 * e;
        for p in 0..ppw {
            let ea = acc.pole(j, w, p, 0)?;
            let rt = acc.pole(j, w, p, 1)?;
            let ra = acc.pole(j, w, p, 2)?;
            let rf = acc.pole(j, w, p, 3)?;
            sig += pole_kernel(e, ea, rt, ra, rf);
        }
        total += sig;
    }
    Ok(total)
}

struct FormulaAccess {
    windows: u64,
    ppw: u64,
}

impl RsAccess for FormulaAccess {
    fn window(&mut self, j: u64, w: u64, c: u64) -> Result<f64, KernelError> {
        Ok(window_value(j, w, c, self.windows))
    }

    fn pole(&mut self, j: u64, w: u64, p: u64, c: u64) -> Result<f64, KernelError> {
        Ok(pole_value(j, w, p, c, self.windows, self.ppw))
    }
}

struct DeviceAccess<'l, 't, 'g> {
    lane: &'l mut LaneCtx<'t, 'g>,
    windows_buf: DevicePtr,
    poles_buf: DevicePtr,
    windows: u64,
    ppw: u64,
}

impl RsAccess for DeviceAccess<'_, '_, '_> {
    fn window(&mut self, j: u64, w: u64, c: u64) -> Result<f64, KernelError> {
        self.lane
            .ld_idx::<f64>(self.windows_buf, (j * self.windows + w) * 2 + c)
    }

    fn pole(&mut self, j: u64, w: u64, p: u64, c: u64) -> Result<f64, KernelError> {
        self.lane.ld_idx::<f64>(
            self.poles_buf,
            ((j * self.windows + w) * self.ppw + p) * 4 + c,
        )
    }
}

/// Host reference checksum.
pub fn reference_checksum(p: &RsParams) -> f64 {
    let mut acc = FormulaAccess {
        windows: p.windows,
        ppw: p.poles_per_window,
    };
    (0..p.lookups)
        .map(|i| {
            lookup_contribution(&mut acc, particle_energy(i), p)
                .expect("reference loads cannot fail")
        })
        .sum()
}

fn rs_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let p = RsParams::parse(&cx.argv);
    let n = p.nuclides();
    let (windows, ppw) = (p.windows, p.poles_per_window);

    let (windows_buf, poles_buf) = team.serial("setup", |lane| {
        lane.dev_reserve(cal::rs_paper_bytes())?;
        let wb = lane.dev_alloc(n * windows * 2 * 8)?;
        let pb = lane.dev_alloc(n * windows * ppw * 4 * 8)?;
        lane.work(200.0);
        Ok((wb, pb))
    })?;

    team.parallel_for("generate_windows", n * windows, |i, lane| {
        let (j, w) = (i / windows, i % windows);
        for c in 0..2u64 {
            lane.st_idx::<f64>(windows_buf, i * 2 + c, window_value(j, w, c, windows))?;
        }
        for pp in 0..ppw {
            for c in 0..4u64 {
                lane.st_idx::<f64>(
                    poles_buf,
                    (i * ppw + pp) * 4 + c,
                    pole_value(j, w, pp, c, windows, ppw),
                )?;
            }
        }
        lane.work(12.0 * ppw as f64);
        Ok(())
    })?;

    let checksum = team.parallel_for_reduce_f64("lookups", p.lookups, |i, lane| {
        let e = particle_energy(i);
        lane.work(cal::RS_POLE_WORK * n as f64 * ppw as f64);
        let mut acc = DeviceAccess {
            lane,
            windows_buf,
            poles_buf,
            windows,
            ppw,
        };
        lookup_contribution(&mut acc, e, &p)
    })?;

    let lookups = p.lookups;
    team.serial("report", |lane| {
        dl_printf(
            lane,
            "Simulation complete.\nLookups: %d\nVerification checksum: %.10e\n",
            &[lookups.into(), checksum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

const MODULE: &str = r#"
module "rsbench" {
  func @main arity=2 calls(@parse_args, @generate_windows, @run_lookups, @printf)
  func @parse_args arity=2 calls(@atoi, @strcmp)
  func @generate_windows arity=1 calls(@malloc, @rand) !parallel(1) !order_independent
  func @run_lookups arity=1 calls(@sqrt, @fabs) !parallel(1) !order_independent
  extern func @printf variadic
  extern func @atoi
  extern func @strcmp
  extern func @malloc
  extern func @rand
  extern func @sqrt
  extern func @fabs
}
"#;

fn footprint_scale(argv: &[String]) -> f64 {
    let p = RsParams::parse(argv);
    cal::rs_paper_bytes() as f64 / cal::rs_scaled_bytes(p.windows, p.poles_per_window).max(1) as f64
}

/// The packaged RSBench application.
pub fn app() -> HostApp {
    let mut a = HostApp::new("rsbench", MODULE, rs_main);
    a.footprint_scale = Some(footprint_scale);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::Loader;
    use gpu_sim::Gpu;
    use host_rpc::HostServices;

    #[test]
    fn params_parse() {
        let argv: Vec<String> = ["rsbench", "-l", "50", "-w", "8", "-p", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            RsParams::parse(&argv),
            RsParams {
                windows: 8,
                poles_per_window: 3,
                lookups: 50
            }
        );
    }

    #[test]
    fn device_checksum_matches_reference() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(
                &mut gpu,
                &app(),
                &["-l", "30", "-w", "6", "-p", "2"],
                HostServices::default(),
            )
            .unwrap();
        assert_eq!(res.exit_code, Some(0), "trap: {:?}", res.trap);
        let p = RsParams {
            windows: 6,
            poles_per_window: 2,
            lookups: 30,
        };
        let expected = reference_checksum(&p);
        let line = res
            .stdout
            .lines()
            .find(|l| l.starts_with("Verification"))
            .unwrap();
        let printed: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(
            (printed - expected).abs() <= expected.abs() * 1e-9,
            "printed {printed} vs expected {expected}"
        );
    }

    #[test]
    fn kernel_is_compute_heavy() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &app(), &["-l", "60"], HostServices::default())
            .unwrap();
        // Note on units: instruction counts are warp-level (lockstep max
        // across lanes) while bytes are summed across lanes, so "bytes per
        // warp-instruction" runs ~32× the per-thread ratio. Compute-bound
        // RSBench sits far below memory-bound XSBench on this metric
        // (see `lib.rs::intensity_ordering_matches_benchmark_classes`).
        let bpi = res.report.useful_bytes / res.report.total_insts;
        assert!(bpi < 10.0, "bytes/warp-inst = {bpi}");
    }

    #[test]
    fn pole_kernel_is_finite_everywhere() {
        for i in 0..1000 {
            let mut r = Lcg64::new(i);
            let v = pole_kernel(
                r.next_f64(),
                r.next_f64(),
                r.next_f64(),
                r.next_f64(),
                r.next_f64(),
            );
            assert!(v.is_finite());
        }
    }
}
