//! The paper's four evaluation benchmarks, ported to the direct-GPU device
//! API (paper §4.1):
//!
//! * [`xsbench`] — the OpenMC macroscopic-cross-section lookup proxy
//!   (memory-bound: random lookups across a unionized energy grid);
//! * [`rsbench`] — the multipole cross-section proxy (compute-bound:
//!   complex pole evaluations per lookup);
//! * [`amgmk`] — the AMGmk `relax` kernel (streaming Jacobi sweeps over a
//!   7-point-stencil CSR matrix);
//! * [`pagerank`] — the HeCBench Page-Rank propagation step (irregular
//!   gather over a CSR graph; paper-scale footprint exhausts a 40 GB
//!   device beyond 4 instances).
//!
//! Every benchmark follows the legacy-CPU-application shape the direct GPU
//! compilation scheme expects: a `main(argc, argv)` that parses flags,
//! allocates through the device libc, generates its input deterministically
//! (seeded LCG), runs its measured kernel in OpenMP-style parallel
//! regions, and prints a verification checksum via `printf`. A pure-Rust
//! host reference (`reference_checksum`) reproduces the exact arithmetic,
//! so device results are validated bit-for-bit in tests.
//!
//! **Scaling.** Functional execution materializes scaled-down arrays
//! (parameters below the paper's defaults) while two mechanisms keep
//! paper-scale *behaviour*: a reserved device allocation of the paper-size
//! footprint (drives out-of-memory exactly where the paper hit it) and the
//! footprint multiplier handed to the simulator's L2 model (drives cache
//! behaviour as if the data were full size). The per-benchmark constants
//! live in [`calibration`].

pub mod amgmk;
pub mod calibration;
mod common;
pub mod pagerank;
pub mod rsbench;
pub mod xsbench;

pub use common::{flag_value, parse_flag_or};
use dgc_core::HostApp;

/// All four benchmarks, in the order the paper lists them.
pub fn all_apps() -> Vec<HostApp> {
    vec![
        xsbench::app(),
        rsbench::app(),
        amgmk::app(),
        pagerank::app(),
    ]
}

/// Look a benchmark up by name (CLI entry points use this).
pub fn app_by_name(name: &str) -> Option<HostApp> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_papers_four() {
        let names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["xsbench", "rsbench", "amgmk", "pagerank"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("xsbench").is_some());
        assert!(app_by_name("nope").is_none());
    }

    #[test]
    fn intensity_ordering_matches_benchmark_classes() {
        // Memory-bound XSBench must sit far above compute-bound RSBench in
        // bytes per warp-instruction; AMGmk (streaming) lands high too.
        let bpi = |app: &HostApp, args: &[&str]| {
            let mut gpu = gpu_sim::Gpu::a100();
            let res = dgc_core::Loader::default()
                .run(&mut gpu, app, args, host_rpc::HostServices::default())
                .unwrap();
            assert_eq!(
                res.exit_code,
                Some(0),
                "{} trapped: {:?}",
                app.name,
                res.trap
            );
            res.report.useful_bytes / res.report.total_insts
        };
        let xs = bpi(&xsbench::app(), &["-l", "50"]);
        let rs = bpi(&rsbench::app(), &["-l", "50"]);
        let amg = bpi(&amgmk::app(), &["-n", "6", "-s", "4"]);
        assert!(xs > 3.0 * rs, "xs = {xs}, rs = {rs}");
        assert!(amg > 2.0 * rs, "amg = {amg}, rs = {rs}");
        assert!(rs < 8.0, "rs = {rs}");
    }

    #[test]
    fn all_modules_compile_through_the_pipeline() {
        let loader = dgc_core::Loader::default();
        for app in all_apps() {
            let image = loader.compile_app(&app).unwrap_or_else(|e| {
                panic!("{} failed to compile: {e}", app.name);
            });
            assert_eq!(image.entry, "__user_main");
            assert!(
                image.rpc_services.contains(&host_rpc::SERVICE_STDIO),
                "{} must print through the stdio service",
                app.name
            );
        }
    }
}
