//! XSBench: the OpenMC continuous-energy macroscopic-cross-section lookup
//! proxy (Tramm et al.), memory-bound.
//!
//! Each lookup draws a pseudo-random particle energy, binary-searches the
//! *unionized* energy grid, then for every nuclide reads its grid index
//! from the index grid and interpolates five cross sections between two
//! bounding gridpoints. The accesses are data-dependent and scattered —
//! the memory-bound behaviour the paper's §4.3 discusses.
//!
//! The port keeps XSBench's structure: `main` parses flags, builds the
//! grids in parallel, runs the lookup kernel under an OpenMP-style
//! parallel-for reduction, and prints a verification checksum. Grid
//! contents are analytic functions of the indices (seeded LCG for cross
//! sections), so the host reference reproduces device results exactly.

use crate::calibration as cal;
use crate::common::parse_flag_or;
use device_libc::rand::Lcg64;
use device_libc::stdio::{dl_clock_ns, dl_printf};
use dgc_core::{AppContext, HostApp};
use gpu_sim::{KernelError, TeamCtx};

/// XSBench problem size (`-s small|large`), matching upstream's presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProblemSize {
    #[default]
    Small,
    /// 355 nuclides; the paper-scale footprint is ≈ 5.5 GB per instance,
    /// so only seven instances fit a 40 GB device.
    Large,
}

/// Parsed XSBench arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsParams {
    /// Gridpoints per nuclide (`-g`).
    pub gridpoints: u64,
    /// Number of lookups (`-l`).
    pub lookups: u64,
    /// Problem-size preset (`-s`).
    pub size: ProblemSize,
    /// Nuclides materialized functionally (`-n`; defaults per preset).
    pub nuclides: u64,
}

impl XsParams {
    pub fn parse(argv: &[String]) -> XsParams {
        let size = match crate::common::flag_value(argv, "-s") {
            Some("large") => ProblemSize::Large,
            _ => ProblemSize::Small,
        };
        // Both presets default to the small functional nuclide count: the
        // preset scales the *modeled* footprint (the full 355-nuclide data
        // is reserved, not materialized); `-n` overrides for functional
        // fidelity at the cost of runtime.
        let default_nuclides = cal::XS_NUCLIDES;
        XsParams {
            gridpoints: parse_flag_or(argv, "-g", cal::XS_SCALED_GRIDPOINTS).max(2),
            lookups: parse_flag_or(argv, "-l", cal::XS_SCALED_LOOKUPS).max(1),
            size,
            nuclides: parse_flag_or(argv, "-n", default_nuclides).max(2),
        }
    }

    pub fn nuclides(&self) -> u64 {
        self.nuclides
    }

    /// Paper-scale footprint of this preset, reserved per instance.
    pub fn paper_bytes(&self) -> u64 {
        match self.size {
            ProblemSize::Small => cal::xs_paper_bytes(),
            ProblemSize::Large => cal::xs_large_paper_bytes(),
        }
    }

    pub fn unionized_points(&self) -> u64 {
        self.nuclides() * self.gridpoints
    }
}

// ---- analytic grid contents (shared by device fill and host reference) --

/// Energy of gridpoint `k` of nuclide `j`: per-nuclide grids are uniform
/// with a nuclide-specific phase so the unionized grid is a strict
/// interleaving.
fn nuclide_energy(j: u64, k: u64, n: u64, g: u64) -> f64 {
    (k as f64 + (j as f64 + 1.0) / (n as f64 + 1.0)) / g as f64
}

/// Cross section `c` (0..5) at gridpoint `k` of nuclide `j`.
fn nuclide_xs(j: u64, k: u64, c: u64, g: u64) -> f64 {
    Lcg64::new((j * g + k) * 6 + c).next_f64()
}

/// Energy of unionized gridpoint `u` (sorted union of all nuclide grids).
fn unionized_energy(u: u64, n: u64, g: u64) -> f64 {
    nuclide_energy(u % n, u / n, n, g)
}

/// Index into nuclide `j`'s grid for unionized point `u`: the largest `k`
/// with `energy(j, k) <= unionized(u)`, clamped to a valid interpolation
/// interval.
fn index_of(u: u64, j: u64, n: u64, g: u64) -> u32 {
    let k = u / n;
    let r = u % n;
    let idx = if j <= r { k as i64 } else { k as i64 - 1 };
    idx.clamp(0, g as i64 - 2) as u32
}

/// Nuclide concentration in the material (fixed single-material problem).
fn concentration(j: u64) -> f64 {
    0.1 + (j % 7) as f64 * 0.05
}

/// Particle energy for lookup `i` (independent seeded stream per lookup,
/// as XSBench does with its LCG skip).
fn particle_energy(i: u64) -> f64 {
    Lcg64::new(0xC5_00_15 + i).next_f64()
}

/// Data access used by one lookup — implemented over device memory (real
/// loads, traced) and over the analytic formulas (host reference), so both
/// run the identical arithmetic.
trait XsAccess {
    fn index(&mut self, u: u64, j: u64) -> Result<u32, KernelError>;
    /// `c == 0` is the gridpoint energy; `1..=5` the cross sections.
    fn grid(&mut self, j: u64, k: u64, c: u64) -> Result<f64, KernelError>;
}

/// The macroscopic-XS contribution of one lookup. Shared shape for device
/// and reference.
fn lookup_contribution<A: XsAccess>(
    acc: &mut A,
    p_energy: f64,
    u: u64,
    n: u64,
) -> Result<f64, KernelError> {
    let mut macro_xs = [0.0f64; 5];
    for j in 0..n {
        let k = acc.index(u, j)? as u64;
        let e_lo = acc.grid(j, k, 0)?;
        let e_hi = acc.grid(j, k + 1, 0)?;
        let f = if e_hi > e_lo {
            ((e_hi - p_energy) / (e_hi - e_lo)).clamp(0.0, 1.0)
        } else {
            0.5
        };
        let conc = concentration(j);
        for (c, m) in macro_xs.iter_mut().enumerate() {
            let lo = acc.grid(j, k, 1 + c as u64)?;
            let hi = acc.grid(j, k + 1, 1 + c as u64)?;
            *m += conc * (lo * f + hi * (1.0 - f));
        }
    }
    Ok(macro_xs.iter().sum())
}

/// Analytic (host-reference) accessor.
struct FormulaAccess {
    n: u64,
    g: u64,
}

impl XsAccess for FormulaAccess {
    fn index(&mut self, u: u64, j: u64) -> Result<u32, KernelError> {
        Ok(index_of(u, j, self.n, self.g))
    }

    fn grid(&mut self, j: u64, k: u64, c: u64) -> Result<f64, KernelError> {
        Ok(if c == 0 {
            nuclide_energy(j, k, self.n, self.g)
        } else {
            nuclide_xs(j, k, c - 1, self.g)
        })
    }
}

/// Device-memory accessor (the measured kernel's loads).
struct DeviceAccess<'l, 't, 'g> {
    lane: &'l mut gpu_sim::LaneCtx<'t, 'g>,
    idx_grid: gpu_mem::DevicePtr,
    grids: gpu_mem::DevicePtr,
    g: u64,
    u_count: u64,
}

impl XsAccess for DeviceAccess<'_, '_, '_> {
    fn index(&mut self, u: u64, j: u64) -> Result<u32, KernelError> {
        self.lane.ld_idx::<u32>(self.idx_grid, j * self.u_count + u)
    }

    fn grid(&mut self, j: u64, k: u64, c: u64) -> Result<f64, KernelError> {
        self.lane
            .ld_idx::<f64>(self.grids, (j * self.g + k) * 6 + c)
    }
}

/// Host reference: the exact checksum the device run must print.
pub fn reference_checksum(p: &XsParams) -> f64 {
    let n = p.nuclides();
    let g = p.gridpoints;
    let u_count = p.unionized_points();
    let egrid: Vec<f64> = (0..u_count).map(|u| unionized_energy(u, n, g)).collect();
    let mut total = 0.0;
    let mut acc = FormulaAccess { n, g };
    for i in 0..p.lookups {
        let pe = particle_energy(i);
        let ins = egrid.partition_point(|&e| e < pe) as u64;
        let u = ins.saturating_sub(1).min(u_count - 2);
        total += lookup_contribution(&mut acc, pe, u, n).expect("reference loads cannot fail");
    }
    total
}

/// The device `__user_main`.
fn xs_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let p = XsParams::parse(&cx.argv);
    let n = p.nuclides();
    let g = p.gridpoints;
    let u_count = p.unionized_points();

    // Model the paper-scale footprint, then allocate the working arrays.
    // Layout per nuclide gridpoint: [energy, xs0..xs4] (6 f64).
    let paper_bytes = p.paper_bytes();
    let (egrid, idx_grid, grids) = team.serial("setup", |lane| {
        lane.dev_reserve(paper_bytes)?;
        let egrid = lane.dev_alloc(u_count * 8)?;
        let idx_grid = lane.dev_alloc(u_count * n * 4)?;
        let grids = lane.dev_alloc(n * g * 6 * 8)?;
        lane.work(200.0); // argument parsing and setup bookkeeping
        Ok((egrid, idx_grid, grids))
    })?;

    // Generate per-nuclide grids (XSBench's generate_grids).
    team.parallel_for("generate_grids", n * g, |i, lane| {
        let (j, k) = (i / g, i % g);
        let base = i * 6;
        lane.st_idx::<f64>(grids, base, nuclide_energy(j, k, n, g))?;
        for c in 0..5u64 {
            lane.st_idx::<f64>(grids, base + 1 + c, nuclide_xs(j, k, c, g))?;
        }
        lane.work(8.0);
        Ok(())
    })?;

    // Build the unionized energy grid and the index grid.
    team.parallel_for("unionize", u_count, |u, lane| {
        lane.st_idx::<f64>(egrid, u, unionized_energy(u, n, g))?;
        // The index grid is stored nuclide-major (`j * U + u`): adjacent
        // threads build adjacent entries, so generation is coalesced (the
        // real XSBench builds this once and amortizes it over 15M lookups).
        for j in 0..n {
            lane.st_idx::<u32>(idx_grid, j * u_count + u, index_of(u, j, n, g))?;
        }
        lane.work(4.0 * n as f64);
        Ok(())
    })?;

    // The measured kernel: random macroscopic-XS lookups.
    let t0 = team.serial("clock", dl_clock_ns)?;
    let checksum = team.parallel_for_reduce_f64("lookups", p.lookups, |i, lane| {
        let pe = particle_energy(i);
        let ins = match device_libc::sort::dl_bsearch::<f64>(lane, egrid, u_count, pe)? {
            Ok(m) => m,
            Err(ins) => ins,
        };
        let u = ins.saturating_sub(1).min(u_count - 2);
        lane.work(cal::XS_INTERP_WORK * n as f64);
        let mut acc = DeviceAccess {
            lane,
            idx_grid,
            grids,
            g,
            u_count,
        };
        lookup_contribution(&mut acc, pe, u, n)
    })?;
    let t1 = team.serial("clock", dl_clock_ns)?;

    let lookups = p.lookups;
    team.serial("report", |lane| {
        let dt_s = (t1.saturating_sub(t0)) as f64 * 1e-9;
        let rate = if dt_s > 0.0 {
            lookups as f64 / dt_s
        } else {
            0.0
        };
        dl_printf(
            lane,
            "Simulation complete.\nLookups: %d\nLookups/s: %.0f\nVerification checksum: %.10e\n",
            &[lookups.into(), rate.into(), checksum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

/// Module IR describing the XSBench translation unit.
const MODULE: &str = r#"
module "xsbench" {
  func @main arity=2 calls(@parse_args, @generate_grids, @unionize, @run_lookups, @printf, @time)
  func @parse_args arity=2 calls(@atoi, @strcmp)
  func @generate_grids arity=1 calls(@malloc, @rand) !parallel(1) !order_independent
  func @unionize arity=1 calls(@malloc) !parallel(1) !order_independent
  func @run_lookups arity=1 calls(@bsearch, @sqrt) !parallel(1) !order_independent
  extern func @printf variadic
  extern func @time
  extern func @atoi
  extern func @strcmp
  extern func @malloc
  extern func @rand
  extern func @bsearch
  extern func @sqrt
}
"#;

/// Paper-scale footprint over materialized footprint, for the L2 model.
fn footprint_scale(argv: &[String]) -> f64 {
    let p = XsParams::parse(argv);
    p.paper_bytes() as f64 / cal::xs_scaled_bytes_n(p.nuclides, p.gridpoints).max(1) as f64
}

/// The packaged XSBench application.
pub fn app() -> HostApp {
    let mut a = HostApp::new("xsbench", MODULE, xs_main);
    a.footprint_scale = Some(footprint_scale);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgc_core::Loader;
    use gpu_sim::Gpu;
    use host_rpc::HostServices;

    #[test]
    fn params_parse_with_defaults() {
        let argv: Vec<String> = ["xsbench", "-l", "100", "-g", "16"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = XsParams::parse(&argv);
        assert_eq!(
            p,
            XsParams {
                gridpoints: 16,
                lookups: 100,
                size: ProblemSize::Small,
                nuclides: cal::XS_NUCLIDES
            }
        );
        let d = XsParams::parse(&["xsbench".to_string()]);
        assert_eq!(d.gridpoints, cal::XS_SCALED_GRIDPOINTS);
        assert_eq!(d.lookups, cal::XS_SCALED_LOOKUPS);
    }

    #[test]
    fn index_grid_is_consistent_with_energies() {
        let (n, g) = (5u64, 8u64);
        for u in 0..(n * g) {
            let eu = unionized_energy(u, n, g);
            for j in 0..n {
                let k = index_of(u, j, n, g) as u64;
                // energy(k) <= eu unless clamped at the bottom, and the
                // interval is valid for interpolation.
                assert!(k + 1 < g);
                if k > 0 {
                    assert!(nuclide_energy(j, k, n, g) <= eu + 1e-12);
                }
            }
        }
    }

    #[test]
    fn unionized_grid_is_sorted() {
        let (n, g) = (7u64, 11u64);
        let e: Vec<f64> = (0..n * g).map(|u| unionized_energy(u, n, g)).collect();
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn device_checksum_matches_reference_exactly() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(
                &mut gpu,
                &app(),
                &["-l", "40", "-g", "12"],
                HostServices::default(),
            )
            .unwrap();
        assert_eq!(res.exit_code, Some(0), "trap: {:?}", res.trap);
        let p = XsParams {
            gridpoints: 12,
            lookups: 40,
            size: ProblemSize::Small,
            nuclides: cal::XS_NUCLIDES,
        };
        let expected = format!("Verification checksum: {:.10e}", reference_checksum(&p));
        // C-style %e prints e0 exponents as e+00; normalize for comparison.
        let line = res
            .stdout
            .lines()
            .find(|l| l.starts_with("Verification"))
            .unwrap()
            .to_string();
        let norm = |s: &str| {
            s.replace("e+0", "e")
                .replace("e+", "e")
                .replace("e-0", "e-")
        };
        assert_eq!(norm(&line), norm(&expected), "stdout: {}", res.stdout);
    }

    #[test]
    fn kernel_is_memory_heavy() {
        let mut gpu = Gpu::a100();
        let res = Loader::default()
            .run(&mut gpu, &app(), &["-l", "60"], HostServices::default())
            .unwrap();
        // Bytes per warp-instruction should reflect a memory-bound lookup
        // code (bytes are lane-summed, instructions warp-max; compare
        // RSBench's ≈11 on the same metric).
        let bpi = res.report.useful_bytes / res.report.total_insts;
        assert!(bpi > 25.0, "bytes/warp-inst = {bpi}");
        // Random lookups cannot be perfectly coalesced.
        assert!(res.report.coalescing_efficiency < 0.9);
    }

    #[test]
    fn footprint_scale_is_large() {
        let argv = vec!["xsbench".to_string()];
        assert!(footprint_scale(&argv) > 50.0);
    }

    #[test]
    fn large_preset_parses_and_dwarfs_small() {
        let argv: Vec<String> = ["xsbench", "-s", "large", "-l", "20", "-g", "8"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = XsParams::parse(&argv);
        assert_eq!(p.size, ProblemSize::Large);
        assert!(p.paper_bytes() > 20 * cal::xs_paper_bytes());
        // Seven large instances fit a 40 GB device; eight do not.
        assert!(7 * p.paper_bytes() < 40 << 30);
        assert!(8 * p.paper_bytes() > 40 << 30);
    }

    #[test]
    fn large_preset_ooms_at_eight_instances() {
        use dgc_core::{run_ensemble, EnsembleOptions};
        let run_n = |n: u32| {
            let mut gpu = Gpu::a100();
            let opts = EnsembleOptions {
                cycle_args: true,
                num_instances: n,
                thread_limit: 32,
                ..Default::default()
            };
            let args = vec![vec![
                "-s".to_string(),
                "large".into(),
                "-l".into(),
                "10".into(),
                "-g".into(),
                "8".into(),
            ]];
            run_ensemble(&mut gpu, &app(), &args, &opts, HostServices::default()).unwrap()
        };
        assert!(!run_n(4).any_oom());
        assert!(run_n(8).any_oom());
    }
}
