//! The monitor's cardinal invariant, property-tested across all five
//! ensemble drivers: attaching a [`MonitorRegistry`] to a run is pure
//! observation. Chrome-trace bytes and metrics JSONL are bit-identical
//! with and without the sink, while the registry still fills with the
//! run's operational metrics.

use device_libc::dl_printf;
use dgc_core::{
    run_ensemble_batched_traced, run_ensemble_traced, AppContext, EnsembleOptions, HostApp,
};
use dgc_fault::{
    run_ensemble_resilient, run_ensemble_sharded_resilient, FaultPlan, RecoveryPolicy,
};
use dgc_monitor::MonitorRegistry;
use dgc_obs::{metrics_jsonl, Recorder};
use dgc_sched::{run_ensemble_sharded, Placement};
use gpu_arch::GpuSpec;
use gpu_sim::{DeviceFleet, Gpu, KernelError, TeamCtx};
use host_rpc::HostServices;
use proptest::prelude::*;
use std::sync::Arc;

const MODULE: &str = r#"
module "bench" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

fn app() -> HostApp {
    HostApp::new("bench", MODULE, stream_main)
}

fn lines() -> Vec<Vec<String>> {
    dgc_core::parse_arg_file("-n 60\n-n 120\n-n 40\n").unwrap()
}

fn opts(n: u32) -> EnsembleOptions {
    EnsembleOptions {
        cycle_args: true,
        num_instances: n,
        thread_limit: 32,
        ..Default::default()
    }
}

const DRIVERS: [&str; 5] = [
    "plain",
    "batched",
    "resilient",
    "fault-sharded",
    "sched-sharded",
];

/// Run one driver to completion under `obs` and return the run's
/// observable artifacts: the Chrome-trace bytes and the metrics JSONL.
fn run_driver(driver: &str, n: u32, batch: u32, seed: u64, obs: &mut Recorder) -> (String, String) {
    let arg_lines = lines();
    let placement: Placement = "round-robin".parse().unwrap();
    let plan = FaultPlan::scatter_traps(seed, n, 1);
    let policy = RecoveryPolicy::default();
    let (metrics, launch) = match driver {
        "plain" => {
            let mut gpu = Gpu::a100();
            let r = run_ensemble_traced(
                &mut gpu,
                &app(),
                &arg_lines,
                &opts(n),
                HostServices::default(),
                obs,
            )
            .unwrap();
            (r.metrics.clone(), r.launch_metrics())
        }
        "batched" => {
            let mut gpu = Gpu::a100();
            let r = run_ensemble_batched_traced(&mut gpu, &app(), &arg_lines, &opts(n), batch, obs)
                .unwrap();
            (r.metrics.clone(), r.launch_metrics())
        }
        "resilient" => {
            let mut gpu = Gpu::a100();
            let r = run_ensemble_resilient(
                &mut gpu,
                &app(),
                &arg_lines,
                &opts(n),
                batch,
                &plan,
                &policy,
                obs,
            )
            .unwrap();
            (r.ensemble.metrics.clone(), r.launch_metrics())
        }
        "fault-sharded" => {
            let mut fleet = DeviceFleet::homogeneous(GpuSpec::a100_40gb(), 2);
            let r = run_ensemble_sharded_resilient(
                &mut fleet,
                &app(),
                &arg_lines,
                &opts(n),
                batch,
                placement,
                &plan,
                &policy,
                obs,
            )
            .unwrap();
            (r.ensemble.metrics.clone(), r.launch_metrics())
        }
        "sched-sharded" => {
            let mut fleet = DeviceFleet::homogeneous(GpuSpec::a100_40gb(), 2);
            let r = run_ensemble_sharded(
                &mut fleet,
                &app(),
                &arg_lines,
                &opts(n),
                batch,
                placement,
                obs,
            )
            .unwrap();
            (r.ensemble.metrics.clone(), r.launch_metrics())
        }
        other => unreachable!("unknown driver {other}"),
    };
    (obs.to_chrome_trace(), metrics_jsonl(&metrics, &launch))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every driver, any instance count / batch size / fault seed:
    /// trace and metrics bytes are identical with the monitor attached,
    /// and the registry observed every instance completion.
    #[test]
    fn monitoring_never_perturbs_any_driver(n in 1u32..6, batch in 1u32..4, seed in any::<u64>()) {
        for driver in DRIVERS {
            let mut plain_rec = Recorder::enabled();
            let (trace, metrics) = run_driver(driver, n, batch, seed, &mut plain_rec);

            let registry = Arc::new(MonitorRegistry::new());
            let mut monitored_rec = Recorder::enabled();
            monitored_rec.set_monitor(registry.clone());
            let (trace_m, metrics_m) = run_driver(driver, n, batch, seed, &mut monitored_rec);

            prop_assert_eq!(&trace, &trace_m);
            prop_assert_eq!(&metrics, &metrics_m);

            let snap = registry.snapshot();
            let seen = snap.sum("dgc_instances_total", &[]).unwrap_or(0.0);
            prop_assert!(
                seen >= f64::from(n),
                "driver {} registered {} instance outcomes for n={}",
                driver,
                seen,
                n
            );
            prop_assert!(
                snap.sum("dgc_kernel_launches_total", &[]).unwrap_or(0.0) >= 1.0
            );
        }
    }

    /// The disabled-recorder path (no tracing at all) is equally
    /// unperturbed: metrics JSONL matches a traced run's bytes.
    #[test]
    fn monitoring_with_disabled_recorder_matches(n in 1u32..5, batch in 1u32..3) {
        for driver in DRIVERS {
            let mut plain_rec = Recorder::disabled();
            let (_, metrics) = run_driver(driver, n, batch, 7, &mut plain_rec);

            let registry = Arc::new(MonitorRegistry::new());
            let mut monitored_rec = Recorder::disabled();
            monitored_rec.set_monitor(registry.clone());
            let (_, metrics_m) = run_driver(driver, n, batch, 7, &mut monitored_rec);

            prop_assert_eq!(&metrics, &metrics_m);
            prop_assert!(registry.snapshot().sum("dgc_instances_total", &[]).unwrap_or(0.0) >= f64::from(n));
        }
    }
}
