//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! A spec is JSON:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "windows": { "fast": 5, "slow": 20 },
//!   "burn_thresholds": { "fast": 0.05, "slow": 0.01 },
//!   "slos": [
//!     { "name": "completion", "target": 0.99,
//!       "objective": "ratio(dgc_instances_total{result=\"ok\"}, dgc_instances_total) >= 0.95" },
//!     { "name": "tail-latency", "target": 0.9,
//!       "objective": "p99(dgc_instance_latency_seconds) <= 0.5" }
//!   ]
//! }
//! ```
//!
//! The **objective** is a comparison between two expressions, evaluated
//! once per snapshot of the monitor log; a snapshot where it holds is
//! *good*, otherwise *bad*. Expressions are numbers, metric selectors
//! (label subsets sum), `ratio(a, b)` (0-denominator → 1.0, "no traffic
//! is compliant"), or `p50`/`p90`/`p99` over a histogram family.
//!
//! The **burn-rate gate** (the multi-window pattern from SRE practice,
//! counted in snapshots so evaluation is deterministic): with error
//! budget `1 − target`, the budget consumed by a window of the last `w`
//! snapshots is `bad(w) / (budget × N)` for an `N`-snapshot series. The
//! fast window alerts at ≥ 5% of budget by default, the slow window at
//! ≥ 1%; an SLO **breaches** when both alert, **warns** when exactly one
//! does. Exit codes follow prof-diff: 0 pass/warn, 1 breach, 2 spec or
//! input error.

use crate::openmetrics::Snapshot;
use serde::Value;

/// A metric selector: sample name plus a label subset to match.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

/// One side of an objective comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    /// Sum of matching samples; absent metric evaluates to 0.
    Select(Selector),
    /// `ratio(a, b)`: a/b with `b == 0` → 1.0.
    Ratio(Selector, Selector),
    /// `p50`/`p90`/`p99` of a histogram family (selector names the
    /// family, not the `_bucket` sample).
    Percentile(Selector, f64),
}

/// Comparison operators allowed in objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Ge,
    Le,
    Gt,
    Lt,
    Eq,
}

/// A parsed objective: `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    pub lhs: Expr,
    pub op: CmpOp,
    pub rhs: Expr,
}

/// One declared SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    pub name: String,
    pub target: f64,
    pub objective_src: String,
    pub objective: Objective,
}

/// A full SLO spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    pub fast_window: usize,
    pub slow_window: usize,
    pub fast_burn: f64,
    pub slow_burn: f64,
    pub slos: Vec<Slo>,
}

/// Verdict levels, worst-of over SLOs for the overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    Ok,
    Warn,
    Breach,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Breach => "breach",
        }
    }
}

/// Evaluation result for one SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloResult {
    pub name: String,
    pub target: f64,
    pub objective: String,
    pub good: usize,
    pub bad: usize,
    pub compliance: f64,
    pub budget_consumed_fast: f64,
    pub budget_consumed_slow: f64,
    pub fast_alert: bool,
    pub slow_alert: bool,
    pub verdict: Verdict,
}

/// Evaluation result for a spec over a snapshot series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    pub snapshots: usize,
    pub results: Vec<SloResult>,
    pub verdict: Verdict,
}

// ---------------------------------------------------------------- parsing

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.text[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|&(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
            .count();
        if end == 0 {
            return None;
        }
        let (tok, _) = rest.split_at(end);
        self.pos += end;
        Some(tok)
    }
}

fn parse_selector(c: &mut Cursor<'_>) -> Result<Selector, String> {
    let Some(name) = c.ident() else {
        return Err(format!("expected metric name at '{}'", c.rest()));
    };
    let mut labels = Vec::new();
    if c.eat("{") {
        loop {
            let Some(k) = c.ident() else {
                return Err("expected label name".into());
            };
            if !c.eat("=") {
                return Err(format!("label '{k}' needs ="));
            }
            c.skip_ws();
            let rest = c.rest();
            let Some(rest) = rest.strip_prefix('"') else {
                return Err(format!("label '{k}' value must be quoted"));
            };
            let Some(close) = rest.find('"') else {
                return Err(format!("unterminated value for label '{k}'"));
            };
            labels.push((k.to_string(), rest[..close].to_string()));
            c.pos += 1 + close + 1;
            if c.eat(",") {
                continue;
            }
            if c.eat("}") {
                break;
            }
            return Err("expected ',' or '}' in label set".into());
        }
    }
    Ok(Selector {
        name: name.to_string(),
        labels,
    })
}

fn parse_expr(c: &mut Cursor<'_>) -> Result<Expr, String> {
    c.skip_ws();
    let rest = c.rest();
    // Numeric literal.
    if rest.starts_with(|ch: char| ch.is_ascii_digit() || ch == '-' || ch == '.') {
        let end = rest
            .char_indices()
            .take_while(|&(i, ch)| {
                ch.is_ascii_digit()
                    || ch == '.'
                    || ch == 'e'
                    || ch == 'E'
                    || ((ch == '-' || ch == '+')
                        && (i == 0 || matches!(rest.as_bytes()[i - 1], b'e' | b'E')))
            })
            .count();
        let (tok, _) = rest.split_at(end);
        let v: f64 = tok.parse().map_err(|_| format!("invalid number '{tok}'"))?;
        c.pos += end;
        return Ok(Expr::Num(v));
    }
    // Function or selector.
    let save = c.pos;
    let Some(ident) = c.ident() else {
        return Err(format!("expected expression at '{rest}'"));
    };
    match ident {
        "ratio" => {
            if !c.eat("(") {
                return Err("ratio needs (".into());
            }
            let a = parse_selector(c)?;
            if !c.eat(",") {
                return Err("ratio needs two selectors".into());
            }
            let b = parse_selector(c)?;
            if !c.eat(")") {
                return Err("ratio missing )".into());
            }
            Ok(Expr::Ratio(a, b))
        }
        "p50" | "p90" | "p99" => {
            let p = match ident {
                "p50" => 0.50,
                "p90" => 0.90,
                _ => 0.99,
            };
            if !c.eat("(") {
                return Err(format!("{ident} needs ("));
            }
            let sel = parse_selector(c)?;
            if !c.eat(")") {
                return Err(format!("{ident} missing )"));
            }
            Ok(Expr::Percentile(sel, p))
        }
        _ => {
            // Plain selector: rewind and reparse (to pick up labels).
            c.pos = save;
            Ok(Expr::Select(parse_selector(c)?))
        }
    }
}

/// Parse an objective like
/// `ratio(dgc_instances_total{result="ok"}, dgc_instances_total) >= 0.95`.
pub fn parse_objective(src: &str) -> Result<Objective, String> {
    let mut c = Cursor { text: src, pos: 0 };
    let lhs = parse_expr(&mut c)?;
    c.skip_ws();
    let op = if c.eat(">=") {
        CmpOp::Ge
    } else if c.eat("<=") {
        CmpOp::Le
    } else if c.eat("==") {
        CmpOp::Eq
    } else if c.eat(">") {
        CmpOp::Gt
    } else if c.eat("<") {
        CmpOp::Lt
    } else {
        return Err(format!("expected comparison operator at '{}'", c.rest()));
    };
    let rhs = parse_expr(&mut c)?;
    c.skip_ws();
    if !c.rest().is_empty() {
        return Err(format!("trailing content '{}'", c.rest()));
    }
    Ok(Objective { lhs, op, rhs })
}

impl SloSpec {
    /// Parse a spec from its JSON text.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("spec JSON: {e}"))?;
        let schema = v.get("schema").and_then(Value::as_u64).unwrap_or(0);
        if schema != 1 {
            return Err(format!("unsupported spec schema {schema} (want 1)"));
        }
        let window = |name: &str, default: u64| -> Result<usize, String> {
            match v.get("windows").and_then(|w| w.get(name)) {
                None => Ok(default as usize),
                Some(x) => x
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("windows.{name} must be a positive integer")),
            }
        };
        let burn = |name: &str, default: f64| -> Result<f64, String> {
            match v.get("burn_thresholds").and_then(|w| w.get(name)) {
                None => Ok(default),
                Some(x) => x
                    .as_f64()
                    .filter(|&b| b > 0.0)
                    .ok_or_else(|| format!("burn_thresholds.{name} must be positive")),
            }
        };
        let fast_window = window("fast", 5)?;
        let slow_window = window("slow", 20)?;
        if fast_window > slow_window {
            return Err("windows.fast must not exceed windows.slow".into());
        }
        let Some(slo_list) = v.get("slos").and_then(Value::as_array) else {
            return Err("spec needs a non-empty 'slos' array".into());
        };
        if slo_list.is_empty() {
            return Err("spec needs a non-empty 'slos' array".into());
        }
        let mut slos = Vec::with_capacity(slo_list.len());
        for (i, s) in slo_list.iter().enumerate() {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or(format!("slos[{i}] needs a name"))?
                .to_string();
            let target = s
                .get("target")
                .and_then(Value::as_f64)
                .ok_or(format!("slo '{name}' needs a numeric target"))?;
            if !(0.0..=1.0).contains(&target) {
                return Err(format!("slo '{name}': target must be in [0, 1]"));
            }
            let src = s
                .get("objective")
                .and_then(Value::as_str)
                .ok_or(format!("slo '{name}' needs an objective string"))?
                .to_string();
            let objective =
                parse_objective(&src).map_err(|e| format!("slo '{name}': objective: {e}"))?;
            slos.push(Slo {
                name,
                target,
                objective_src: src,
                objective,
            });
        }
        Ok(SloSpec {
            fast_window,
            slow_window,
            fast_burn: burn("fast", 0.05)?,
            slow_burn: burn("slow", 0.01)?,
            slos,
        })
    }
}

// ------------------------------------------------------------- evaluation

fn eval_expr(e: &Expr, snap: &Snapshot) -> f64 {
    match e {
        Expr::Num(v) => *v,
        Expr::Select(sel) => snap.sum(&sel.name, &sel.labels).unwrap_or(0.0),
        Expr::Ratio(a, b) => {
            let den = snap.sum(&b.name, &b.labels).unwrap_or(0.0);
            if den == 0.0 {
                // No traffic yet: vacuously compliant rather than 0/0.
                1.0
            } else {
                snap.sum(&a.name, &a.labels).unwrap_or(0.0) / den
            }
        }
        Expr::Percentile(sel, p) => snap
            .histogram_percentile(&sel.name, &sel.labels, *p)
            .unwrap_or(0.0),
    }
}

fn eval_objective(o: &Objective, snap: &Snapshot) -> bool {
    let l = eval_expr(&o.lhs, snap);
    let r = eval_expr(&o.rhs, snap);
    match o.op {
        CmpOp::Ge => l >= r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Lt => l < r,
        CmpOp::Eq => l == r,
    }
}

/// Evaluate `spec` over a snapshot series (oldest first). Deterministic:
/// the verdict is a pure function of the spec and the series.
pub fn evaluate(spec: &SloSpec, series: &[Snapshot]) -> Result<SloReport, String> {
    if series.is_empty() {
        return Err("no snapshots to evaluate (empty monitor log)".into());
    }
    let n = series.len();
    let mut results = Vec::with_capacity(spec.slos.len());
    for slo in &spec.slos {
        let compliance: Vec<bool> = series
            .iter()
            .map(|s| eval_objective(&slo.objective, s))
            .collect();
        let bad = compliance.iter().filter(|&&c| !c).count();
        let good = n - bad;
        let budget = 1.0 - slo.target;
        let consumed = |window: usize| -> f64 {
            let w = window.min(n);
            let bad_w = compliance[n - w..].iter().filter(|&&c| !c).count();
            if budget <= 0.0 {
                // Zero budget: any badness is full burn.
                if bad_w > 0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                bad_w as f64 / (budget * n as f64)
            }
        };
        let budget_consumed_fast = consumed(spec.fast_window);
        let budget_consumed_slow = consumed(spec.slow_window);
        let fast_alert = budget_consumed_fast >= spec.fast_burn;
        let slow_alert = budget_consumed_slow >= spec.slow_burn;
        let verdict = match (fast_alert, slow_alert) {
            (true, true) => Verdict::Breach,
            (false, false) => Verdict::Ok,
            _ => Verdict::Warn,
        };
        results.push(SloResult {
            name: slo.name.clone(),
            target: slo.target,
            objective: slo.objective_src.clone(),
            good,
            bad,
            compliance: good as f64 / n as f64,
            budget_consumed_fast,
            budget_consumed_slow,
            fast_alert,
            slow_alert,
            verdict,
        });
    }
    let verdict = results
        .iter()
        .map(|r| r.verdict)
        .max()
        .unwrap_or(Verdict::Ok);
    Ok(SloReport {
        snapshots: n,
        results,
        verdict,
    })
}

impl SloReport {
    /// Machine-readable verdict JSON.
    pub fn to_json(&self) -> String {
        let burn = |b: f64| {
            if b.is_finite() {
                Value::F64(b)
            } else {
                Value::Str("inf".into())
            }
        };
        let results: Vec<Value> = self
            .results
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("name".into(), Value::Str(r.name.clone())),
                    ("target".into(), Value::F64(r.target)),
                    ("objective".into(), Value::Str(r.objective.clone())),
                    ("good".into(), Value::U64(r.good as u64)),
                    ("bad".into(), Value::U64(r.bad as u64)),
                    ("compliance".into(), Value::F64(r.compliance)),
                    ("budget_consumed_fast".into(), burn(r.budget_consumed_fast)),
                    ("budget_consumed_slow".into(), burn(r.budget_consumed_slow)),
                    ("fast_alert".into(), Value::Bool(r.fast_alert)),
                    ("slow_alert".into(), Value::Bool(r.slow_alert)),
                    ("verdict".into(), Value::Str(r.verdict.as_str().into())),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("schema".into(), Value::U64(1)),
            ("snapshots".into(), Value::U64(self.snapshots as u64)),
            ("slos".into(), Value::Array(results)),
            ("verdict".into(), Value::Str(self.verdict.as_str().into())),
        ]);
        serde_json::to_string_pretty(&doc).expect("verdict JSON serializes")
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!("SLO verdict over {} snapshots:\n", self.snapshots);
        for r in &self.results {
            let burn = |b: f64| {
                if b.is_finite() {
                    format!("{:.1}%", b * 100.0)
                } else {
                    "inf".to_string()
                }
            };
            out.push_str(&format!(
                "  [{}] {}: {} — compliance {:.1}% (target {:.1}%), burn fast {} / slow {}\n",
                r.verdict.as_str(),
                r.name,
                r.objective,
                r.compliance * 100.0,
                r.target * 100.0,
                burn(r.budget_consumed_fast),
                burn(r.budget_consumed_slow),
            ));
        }
        out.push_str(&format!("overall: {}\n", self.verdict.as_str()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmetrics::{FamilySnap, MetricKind, MetricValue, Sample};

    fn snap_with(ok: u64, total: u64) -> Snapshot {
        Snapshot {
            families: vec![FamilySnap {
                name: "dgc_instances".into(),
                help: String::new(),
                kind: MetricKind::Counter,
                samples: vec![
                    Sample {
                        name: "dgc_instances_total".into(),
                        labels: vec![("result".into(), "failed".into())],
                        value: MetricValue::Int(total - ok),
                    },
                    Sample {
                        name: "dgc_instances_total".into(),
                        labels: vec![("result".into(), "ok".into())],
                        value: MetricValue::Int(ok),
                    },
                ],
            }],
        }
    }

    fn spec(json: &str) -> SloSpec {
        SloSpec::parse(json).unwrap()
    }

    const COMPLETION: &str = r#"{
        "schema": 1,
        "windows": { "fast": 2, "slow": 4 },
        "slos": [
            { "name": "completion", "target": 0.9,
              "objective": "ratio(dgc_instances_total{result=\"ok\"}, dgc_instances_total) >= 0.75" }
        ]
    }"#;

    #[test]
    fn objective_parser_handles_the_documented_forms() {
        let o = parse_objective(
            "ratio(dgc_instances_total{result=\"ok\"}, dgc_instances_total) >= 0.95",
        )
        .unwrap();
        assert_eq!(o.op, CmpOp::Ge);
        assert!(matches!(o.lhs, Expr::Ratio(_, _)));
        let o = parse_objective("p99(dgc_instance_latency_seconds) <= 0.5").unwrap();
        assert!(matches!(o.lhs, Expr::Percentile(_, p) if p == 0.99));
        let o = parse_objective("dgc_device_utilization{device=\"0\"} > 0.25").unwrap();
        assert!(matches!(&o.lhs, Expr::Select(s) if s.labels.len() == 1));
        // Errors are reported, not panicked.
        assert!(parse_objective("ratio(a, b)").is_err()); // no comparison
        assert!(parse_objective("a >= ").is_err());
        assert!(parse_objective("a >= 1 extra").is_err());
    }

    #[test]
    fn spec_parse_validates_shape() {
        assert!(SloSpec::parse("{}").is_err()); // no schema
        assert!(SloSpec::parse(r#"{"schema": 1}"#).is_err()); // no slos
        assert!(SloSpec::parse(
            r#"{"schema": 1, "windows": {"fast": 9, "slow": 2}, "slos": [
                {"name": "x", "target": 0.5, "objective": "a >= 1"}]}"#
        )
        .is_err()); // fast > slow
        let s = spec(COMPLETION);
        assert_eq!(s.fast_window, 2);
        assert_eq!(s.slow_window, 4);
        assert_eq!(s.fast_burn, 0.05);
    }

    #[test]
    fn all_good_series_is_ok() {
        let series: Vec<Snapshot> = (1..=6).map(|i| snap_with(4 * i, 4 * i)).collect();
        let report = evaluate(&spec(COMPLETION), &series).unwrap();
        assert_eq!(report.verdict, Verdict::Ok);
        assert_eq!(report.results[0].bad, 0);
        assert_eq!(report.results[0].compliance, 1.0);
    }

    #[test]
    fn recent_badness_breaches_and_old_badness_only_warns() {
        // Bad snapshots at the END land in both windows → breach.
        let mut series: Vec<Snapshot> = (1..=4).map(|i| snap_with(4 * i, 4 * i)).collect();
        series.push(snap_with(10, 20)); // ratio 0.5 < 0.75 → bad
        series.push(snap_with(10, 21));
        let report = evaluate(&spec(COMPLETION), &series).unwrap();
        assert_eq!(report.verdict, Verdict::Breach);
        assert!(report.results[0].fast_alert && report.results[0].slow_alert);

        // Bad snapshots inside the slow window but before the fast
        // window → slow-only alert → warn.
        let series: Vec<Snapshot> = vec![
            snap_with(4, 4),
            snap_with(8, 8),
            snap_with(10, 20), // bad
            snap_with(10, 21), // bad
            snap_with(12, 12),
            snap_with(16, 16),
        ];
        let report = evaluate(&spec(COMPLETION), &series).unwrap();
        assert_eq!(report.verdict, Verdict::Warn);
        assert!(!report.results[0].fast_alert && report.results[0].slow_alert);

        // Badness older than both windows alerts nothing: the budget was
        // burned, but burn-rate gates care about *recent* burn.
        let mut series: Vec<Snapshot> = vec![snap_with(10, 20), snap_with(10, 21)];
        series.extend((1..=4).map(|i| snap_with(4 * i, 4 * i)));
        let report = evaluate(&spec(COMPLETION), &series).unwrap();
        assert_eq!(report.verdict, Verdict::Ok);
        assert_eq!(report.results[0].bad, 2); // still counted in compliance
    }

    #[test]
    fn zero_budget_target_burns_infinitely_on_any_badness() {
        let spec = spec(
            r#"{"schema": 1, "slos": [
                {"name": "strict", "target": 1.0,
                 "objective": "ratio(dgc_instances_total{result=\"ok\"}, dgc_instances_total) >= 1"}]}"#,
        );
        let series = vec![snap_with(3, 4)];
        let report = evaluate(&spec, &series).unwrap();
        assert_eq!(report.verdict, Verdict::Breach);
        assert!(report.results[0].budget_consumed_fast.is_infinite());
        // The JSON stays machine-readable (no bare inf token).
        assert!(report.to_json().contains("\"inf\""));
    }

    #[test]
    fn empty_series_is_an_input_error() {
        assert!(evaluate(&spec(COMPLETION), &[]).is_err());
    }

    #[test]
    fn ratio_with_no_traffic_is_vacuously_compliant() {
        let empty = Snapshot::default();
        let report = evaluate(&spec(COMPLETION), &[empty]).unwrap();
        assert_eq!(report.verdict, Verdict::Ok);
    }

    mod determinism {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Evaluation is a pure function of (spec, series): reruns
            /// and render/parse round trips of every snapshot produce
            /// byte-identical verdict JSON.
            #[test]
            fn evaluation_is_deterministic_across_reruns_and_round_trips(
                pattern in proptest::collection::vec(0u64..=4, 1..24)
            ) {
                let series: Vec<Snapshot> = pattern
                    .iter()
                    .map(|&ok| snap_with(ok, 4))
                    .collect();
                let s = spec(COMPLETION);
                let a = evaluate(&s, &series).unwrap();
                let b = evaluate(&s, &series).unwrap();
                prop_assert_eq!(a.to_json(), b.to_json());
                let round: Vec<Snapshot> = series
                    .iter()
                    .map(|s| crate::openmetrics::parse(&s.render()).unwrap())
                    .collect();
                let c = evaluate(&s, &round).unwrap();
                prop_assert_eq!(a.to_json(), c.to_json());
                prop_assert_eq!(a.verdict, c.verdict);
            }
        }
    }
}
