//! The background monitor thread: samples the registry at a wall-clock
//! interval and appends canonical OpenMetrics blocks to a snapshot log.
//!
//! The thread is fully decoupled from the simulation — it only *reads*
//! the registry, so enabling `--monitor-out` cannot perturb simulated
//! results. On [`MonitorWriter::stop`] it appends one final block, which
//! guarantees even a run shorter than the interval leaves a complete
//! snapshot behind. Dropping the handle without calling `stop` — an
//! early return, a `?`, a panicking driver — flushes the same final
//! block best-effort from `Drop`, so the log on disk always ends with
//! the run's complete totals and stays lintable.

use crate::registry::MonitorRegistry;
use std::io::Write;
use std::path::PathBuf;
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to the running monitor thread.
pub struct MonitorWriter {
    handle: Option<JoinHandle<std::io::Result<()>>>,
    stop_tx: Sender<()>,
}

impl MonitorWriter {
    /// Start monitoring `registry`, appending a snapshot block to `path`
    /// every `interval` of wall time. The file is created (truncated) up
    /// front so path errors surface at spawn, not at the first tick.
    pub fn spawn(
        registry: Arc<MonitorRegistry>,
        path: PathBuf,
        interval: Duration,
    ) -> std::io::Result<MonitorWriter> {
        std::fs::File::create(&path)?;
        let (stop_tx, stop_rx) = channel::<()>();
        let handle = std::thread::Builder::new()
            .name("dgc-monitor".into())
            .spawn(move || -> std::io::Result<()> {
                let ticks = registry.counter(
                    "dgc_monitor_snapshots",
                    "Snapshot blocks written by the monitor thread",
                    &[],
                );
                let append = |text: &str| -> std::io::Result<()> {
                    let mut f = std::fs::OpenOptions::new().append(true).open(&path)?;
                    f.write_all(text.as_bytes())
                };
                loop {
                    match stop_rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => {
                            ticks.inc();
                            append(&registry.render())?;
                        }
                        // Stop requested (or the handle was dropped):
                        // write the final block and exit.
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                            ticks.inc();
                            append(&registry.render())?;
                            return Ok(());
                        }
                    }
                }
            })?;
        Ok(MonitorWriter {
            handle: Some(handle),
            stop_tx,
        })
    }

    /// Stop the thread, appending the final snapshot block. Returns the
    /// first I/O error the thread hit, if any.
    pub fn stop(mut self) -> std::io::Result<()> {
        self.shutdown()
    }

    /// Signal the thread and join it. Idempotent: the second call (e.g.
    /// `Drop` after `stop`) finds no handle and returns Ok.
    fn shutdown(&mut self) -> std::io::Result<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        let _ = self.stop_tx.send(());
        handle.join().expect("monitor thread panicked")
    }
}

impl Drop for MonitorWriter {
    /// Best-effort final flush for handles that never reached `stop()` —
    /// a panicking driver still leaves a complete, lintable snapshot log.
    /// I/O errors are swallowed here (there is nowhere to report them
    /// during unwinding); call [`MonitorWriter::stop`] to observe them.
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmetrics::parse_series;

    #[test]
    fn writer_appends_parseable_blocks_and_a_final_snapshot() {
        let dir = std::env::temp_dir().join("dgc-monitor-writer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.om");
        let registry = Arc::new(MonitorRegistry::new());
        let c = registry.counter("dgc_things", "things", &[]);
        let w = MonitorWriter::spawn(registry.clone(), path.clone(), Duration::from_millis(20))
            .unwrap();
        c.add(3);
        std::thread::sleep(Duration::from_millis(70));
        c.add(4);
        w.stop().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let series = parse_series(&text).unwrap();
        // At least one periodic block plus the final one.
        assert!(series.len() >= 2, "got {} blocks", series.len());
        // Counters are monotone across the series; the final block has
        // the final value.
        let values: Vec<f64> = series
            .iter()
            .map(|s| s.sum("dgc_things_total", &[]).unwrap_or(0.0))
            .collect();
        assert!(values.windows(2).all(|w| w[1] >= w[0]), "{values:?}");
        assert_eq!(*values.last().unwrap(), 7.0);
        // The monitor counts its own snapshots.
        let ticks = series
            .last()
            .unwrap()
            .sum("dgc_monitor_snapshots_total", &[])
            .unwrap();
        assert_eq!(ticks as usize, series.len());
        // Every block round-trips bit-exactly through the strict parser.
        let rendered: String = series.iter().map(|s| s.render()).collect();
        assert_eq!(rendered, text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spawn_fails_fast_on_bad_path() {
        let registry = Arc::new(MonitorRegistry::new());
        let bad = PathBuf::from("/nonexistent-dir/snap.om");
        assert!(MonitorWriter::spawn(registry, bad, Duration::from_secs(1)).is_err());
    }

    #[test]
    fn panicking_driver_still_yields_a_lintable_final_snapshot() {
        let dir = std::env::temp_dir().join("dgc-monitor-writer-panic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.om");
        let registry = Arc::new(MonitorRegistry::new());
        let reg = registry.clone();
        let p = path.clone();
        // A driver that attaches the monitor, does some work, then dies
        // without ever reaching stop(). The interval is far longer than
        // the panic, so only the Drop flush can produce the final block.
        let result = std::panic::catch_unwind(move || {
            let _w = MonitorWriter::spawn(reg.clone(), p, Duration::from_secs(3600)).unwrap();
            reg.counter("dgc_work", "work items", &[]).add(5);
            panic!("driver died mid-run");
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        let series = parse_series(&text).expect("log lints after a panic");
        assert!(!series.is_empty());
        assert_eq!(series.last().unwrap().sum("dgc_work_total", &[]), Some(5.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stop_then_drop_is_idempotent() {
        let dir = std::env::temp_dir().join("dgc-monitor-writer-idem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.om");
        let registry = Arc::new(MonitorRegistry::new());
        let w = MonitorWriter::spawn(registry, path.clone(), Duration::from_secs(3600)).unwrap();
        w.stop().unwrap(); // Drop runs right after; must not double-append or panic.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_series(&text).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
