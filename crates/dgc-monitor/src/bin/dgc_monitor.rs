//! dgc-monitor CLI: lint snapshot logs, evaluate SLO specs, render the
//! HTML dashboard.
//!
//! Exit contract (shared with prof-diff and flame-check):
//! * `0` — success (`slo`: verdict ok or warn)
//! * `1` — finding (`lint`: invalid log; `slo`: breach)
//! * `2` — usage, I/O or parse error on inputs

use dgc_monitor::dashboard::{render_dashboard, BlameSection};
use dgc_monitor::openmetrics::parse_series;
use dgc_monitor::slo::{evaluate, SloSpec, Verdict};
use dgc_obs::SpanGraph;
use std::process::ExitCode;

const USAGE: &str = "usage:
  dgc-monitor lint <snapshots.om>
  dgc-monitor slo --spec <slo.json> --snapshots <snapshots.om> [--json <verdict.json>]
  dgc-monitor render --snapshots <snapshots.om> --out <dashboard.html> \\
                     [--spec <slo.json>] [--trace <trace.json>]

lint   validates a snapshot log against the strict OpenMetrics parser
       (exit 1 when the log is not canonical).
slo    evaluates burn-rate SLOs over the log (exit 1 on breach).
render writes a self-contained HTML dashboard.";

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("dgc-monitor: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("dgc-monitor: cannot read {path}: {e}");
        ExitCode::from(2)
    })
}

/// Pull the value after a `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            if i + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail_usage("missing subcommand");
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "lint" => lint(args),
        "slo" => slo(args),
        "render" => render(args),
        other => fail_usage(&format!("unknown subcommand '{other}'")),
    }
}

fn lint(args: Vec<String>) -> ExitCode {
    let [path] = args.as_slice() else {
        return fail_usage("lint takes exactly one snapshot log path");
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match parse_series(&text) {
        Ok(series) => {
            println!(
                "{path}: OK — {} snapshot block{}",
                series.len(),
                if series.len() == 1 { "" } else { "s" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            ExitCode::from(1)
        }
    }
}

fn slo(mut args: Vec<String>) -> ExitCode {
    let (spec_path, snap_path, json_out) = match (
        take_flag(&mut args, "--spec"),
        take_flag(&mut args, "--snapshots"),
        take_flag(&mut args, "--json"),
    ) {
        (Ok(Some(a)), Ok(Some(b)), Ok(c)) => (a, b, c),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return fail_usage(&e),
        _ => return fail_usage("slo needs --spec and --snapshots"),
    };
    if !args.is_empty() {
        return fail_usage(&format!("unexpected argument '{}'", args[0]));
    }
    let (spec_text, snap_text) = match (read(&spec_path), read(&snap_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let spec = match SloSpec::parse(&spec_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dgc-monitor: {spec_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let series = match parse_series(&snap_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dgc-monitor: {snap_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match evaluate(&spec, &series) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dgc-monitor: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if let Some(out) = json_out {
        if let Err(e) = dgc_obs::write_atomic(&out, report.to_json() + "\n") {
            eprintln!("dgc-monitor: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    }
    match report.verdict {
        Verdict::Breach => ExitCode::from(1),
        Verdict::Ok | Verdict::Warn => ExitCode::SUCCESS,
    }
}

fn render(mut args: Vec<String>) -> ExitCode {
    let (snap_path, out_path) = match (
        take_flag(&mut args, "--snapshots"),
        take_flag(&mut args, "--out"),
    ) {
        (Ok(Some(a)), Ok(Some(b))) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail_usage(&e),
        _ => return fail_usage("render needs --snapshots and --out"),
    };
    let (spec_path, trace_path) = match (
        take_flag(&mut args, "--spec"),
        take_flag(&mut args, "--trace"),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail_usage(&e),
    };
    if !args.is_empty() {
        return fail_usage(&format!("unexpected argument '{}'", args[0]));
    }
    let snap_text = match read(&snap_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let series = match parse_series(&snap_text) {
        Ok(s) if !s.is_empty() => s,
        Ok(_) => {
            eprintln!("dgc-monitor: {snap_path}: empty snapshot log");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("dgc-monitor: {snap_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match spec_path {
        None => None,
        Some(p) => {
            let text = match read(&p) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let spec = match SloSpec::parse(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("dgc-monitor: {p}: {e}");
                    return ExitCode::from(2);
                }
            };
            match evaluate(&spec, &series) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("dgc-monitor: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let blames = match trace_path {
        None => Vec::new(),
        Some(p) => {
            let text = match read(&p) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let graph = match SpanGraph::from_chrome_trace(&text) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("dgc-monitor: {p}: {e}");
                    return ExitCode::from(2);
                }
            };
            let path = dgc_insight::CriticalPath::from_graph(&graph);
            vec![
                BlameSection {
                    title: "By stall class".into(),
                    table: dgc_insight::blame_stalls(&graph, &path),
                },
                BlameSection {
                    title: "By device".into(),
                    table: dgc_insight::blame_devices(&graph, &path),
                },
                BlameSection {
                    title: "By instance".into(),
                    table: dgc_insight::blame_instances(&graph, &path),
                },
            ]
        }
    };
    let html = render_dashboard(&series, report.as_ref(), &blames);
    if let Err(e) = dgc_obs::write_atomic(&out_path, html) {
        eprintln!("dgc-monitor: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "{out_path}: dashboard over {} snapshot{}",
        series.len(),
        if series.len() == 1 { "" } else { "s" }
    );
    ExitCode::SUCCESS
}
