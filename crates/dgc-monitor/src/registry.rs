//! The thread-safe in-process metrics registry.
//!
//! Three metric kinds, Prometheus/OpenMetrics semantics:
//!
//! * **counters** — monotonically increasing, integer
//!   ([`Counter`]) or fractional ([`CounterF`], e.g. busy seconds);
//! * **gauges** — last-write-wins floats with an atomic max variant for
//!   high-water marks ([`Gauge`]);
//! * **histograms** — [`dgc_obs::Log2Histogram`] over nanoseconds plus a
//!   running sum, observed in seconds ([`Histogram`]).
//!
//! A metric is identified by **family name + label set**. Registering the
//! same identity twice returns a handle to the same cell, so
//! instrumentation sites can hold static handles while ad-hoc callers
//! re-register by name. Handles are cheap `Arc` clones; counter and gauge
//! updates are lock-free, histogram observations take a per-series mutex.
//!
//! [`MonitorRegistry::snapshot`] freezes the whole registry into the
//! [`crate::openmetrics::Snapshot`] model with deterministic ordering
//! (families by name, series by label set), which the exporter renders
//! canonically.

use crate::openmetrics::{FamilySnap, MetricKind, MetricValue, Sample, Snapshot};
use dgc_obs::Log2Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lock-free `f64` cell over atomic bit patterns.
#[derive(Debug, Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Handle to a monotonic integer counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a monotonic fractional counter (e.g. seconds totals).
/// Negative increments are clamped to zero to preserve monotonicity.
#[derive(Clone)]
pub struct CounterF(Arc<AtomicF64>);

impl CounterF {
    pub fn add(&self, delta: f64) {
        if delta > 0.0 {
            self.0.add(delta);
        }
    }

    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Handle to a gauge: `set` is last-write-wins, `set_max` ratchets upward
/// (high-water marks).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicF64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    pub fn set_max(&self, v: f64) {
        self.0.max(v);
    }

    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Default)]
struct HistCell {
    /// Nanosecond-domain log2 histogram (dgc-obs's bucket math).
    hist: Log2Histogram,
    /// Sum of observed values in the observation unit (seconds).
    sum: f64,
}

/// Handle to a latency histogram observed in seconds.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<HistCell>>);

impl Histogram {
    pub fn observe_seconds(&self, v: f64) {
        let ns = (v.max(0.0) * 1e9).round() as u64;
        let mut cell = self.0.lock().unwrap();
        cell.hist.record(ns);
        cell.sum += v.max(0.0);
    }

    pub fn count(&self) -> u64 {
        self.0.lock().unwrap().hist.len()
    }

    /// Upper bound of the bucket holding the `p`-quantile, in seconds.
    pub fn percentile_seconds(&self, p: f64) -> f64 {
        self.0.lock().unwrap().hist.percentile(p) as f64 * 1e-9
    }
}

enum SeriesCell {
    Counter(Arc<AtomicU64>),
    CounterF(Arc<AtomicF64>),
    Gauge(Arc<AtomicF64>),
    Histogram(Arc<Mutex<HistCell>>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Series keyed by sorted label pairs — deterministic export order.
    series: BTreeMap<Vec<(String, String)>, SeriesCell>,
}

/// The process-wide metrics registry. Cheap to share (`Arc`); all methods
/// take `&self`.
#[derive(Default)]
pub struct MonitorRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn label_key(labels: &[(&str, String)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    key.sort();
    key
}

impl MonitorRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, String)],
        kind: MetricKind,
        make: impl FnOnce() -> (SeriesCell, T),
        reuse: impl FnOnce(&SeriesCell) -> Option<T>,
    ) -> T {
        assert!(valid_name(name), "invalid metric name '{name}'");
        assert!(
            !(kind == MetricKind::Counter && name.ends_with("_total")),
            "counter family '{name}' must not carry the _total suffix \
             (the exporter appends it to the sample name)"
        );
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name '{k}' on '{name}'");
        }
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric '{name}' re-registered as {kind:?}, was {:?}",
            family.kind
        );
        let key = label_key(labels);
        match family.series.get(&key) {
            Some(cell) => reuse(cell).expect("cell kind matches family kind"),
            None => {
                let (cell, handle) = make();
                family.series.insert(key, cell);
                handle
            }
        }
    }

    /// Register (or look up) an integer counter by name + labels.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, String)]) -> Counter {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (SeriesCell::Counter(cell.clone()), Counter(cell))
            },
            |c| match c {
                SeriesCell::Counter(a) => Some(Counter(a.clone())),
                _ => None,
            },
        )
    }

    /// Register (or look up) a fractional counter by name + labels.
    pub fn counter_f(&self, name: &str, help: &str, labels: &[(&str, String)]) -> CounterF {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            || {
                let cell = Arc::new(AtomicF64::default());
                (SeriesCell::CounterF(cell.clone()), CounterF(cell))
            },
            |c| match c {
                SeriesCell::CounterF(a) => Some(CounterF(a.clone())),
                _ => None,
            },
        )
    }

    /// Register (or look up) a gauge by name + labels.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, String)]) -> Gauge {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || {
                let cell = Arc::new(AtomicF64::default());
                (SeriesCell::Gauge(cell.clone()), Gauge(cell))
            },
            |c| match c {
                SeriesCell::Gauge(a) => Some(Gauge(a.clone())),
                _ => None,
            },
        )
    }

    /// Register (or look up) a seconds histogram by name + labels.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, String)]) -> Histogram {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || {
                let cell = Arc::new(Mutex::new(HistCell::default()));
                (SeriesCell::Histogram(cell.clone()), Histogram(cell))
            },
            |c| match c {
                SeriesCell::Histogram(a) => Some(Histogram(a.clone())),
                _ => None,
            },
        )
    }

    /// Freeze the registry into a deterministic snapshot: families in
    /// name order, series in label order, histogram buckets cumulative
    /// with a closing `+Inf`.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().unwrap();
        let mut out = Vec::with_capacity(families.len());
        for (name, fam) in families.iter() {
            let mut samples = Vec::new();
            for (labels, cell) in &fam.series {
                match cell {
                    SeriesCell::Counter(a) => samples.push(Sample {
                        name: format!("{name}_total"),
                        labels: labels.clone(),
                        value: MetricValue::Int(a.load(Ordering::Relaxed)),
                    }),
                    SeriesCell::CounterF(a) => samples.push(Sample {
                        name: format!("{name}_total"),
                        labels: labels.clone(),
                        value: MetricValue::Float(a.get()),
                    }),
                    SeriesCell::Gauge(a) => samples.push(Sample {
                        name: name.clone(),
                        labels: labels.clone(),
                        value: MetricValue::Float(a.get()),
                    }),
                    SeriesCell::Histogram(h) => {
                        let cell = h.lock().unwrap();
                        let mut cum = 0u64;
                        for (bound, count) in cell.hist.buckets() {
                            if count == 0 {
                                continue;
                            }
                            cum += count;
                            let mut labels = labels.clone();
                            labels.push(("le".into(), fmt_le_seconds(bound)));
                            samples.push(Sample {
                                name: format!("{name}_bucket"),
                                labels,
                                value: MetricValue::Int(cum),
                            });
                        }
                        let mut inf = labels.clone();
                        inf.push(("le".into(), "+Inf".into()));
                        samples.push(Sample {
                            name: format!("{name}_bucket"),
                            labels: inf,
                            value: MetricValue::Int(cell.hist.len()),
                        });
                        samples.push(Sample {
                            name: format!("{name}_count"),
                            labels: labels.clone(),
                            value: MetricValue::Int(cell.hist.len()),
                        });
                        samples.push(Sample {
                            name: format!("{name}_sum"),
                            labels: labels.clone(),
                            value: MetricValue::Float(cell.sum),
                        });
                    }
                }
            }
            out.push(FamilySnap {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                samples,
            });
        }
        Snapshot { families: out }
    }

    /// Render the current state as canonical OpenMetrics text.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// Canonical `le` label for a nanosecond bucket bound, in seconds.
fn fmt_le_seconds(bound_ns: u64) -> String {
    format!("{}", bound_ns as f64 * 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(d: u32) -> Vec<(&'static str, String)> {
        vec![("device", d.to_string())]
    }

    #[test]
    fn handles_share_cells_by_name_and_labels() {
        let reg = MonitorRegistry::new();
        let a = reg.counter("dgc_retries", "retries", &dev(0));
        let b = reg.counter("dgc_retries", "retries", &dev(0));
        let other = reg.counter("dgc_retries", "retries", &dev(1));
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
        assert_eq!(other.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MonitorRegistry::new();
        let a = reg.gauge("g", "", &[("x", "1".into()), ("y", "2".into())]);
        let b = reg.gauge("g", "", &[("y", "2".into()), ("x", "1".into())]);
        a.set(5.0);
        assert_eq!(b.get(), 5.0);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_mismatch_panics() {
        let reg = MonitorRegistry::new();
        let _ = reg.counter("dgc_thing", "", &[]);
        let _ = reg.gauge("dgc_thing", "", &[]);
    }

    #[test]
    #[should_panic(expected = "_total")]
    fn counter_with_total_suffix_is_rejected() {
        let reg = MonitorRegistry::new();
        let _ = reg.counter("dgc_retries_total", "", &[]);
    }

    #[test]
    fn gauge_set_max_ratchets() {
        let reg = MonitorRegistry::new();
        let g = reg.gauge("dgc_heap_high_water_bytes", "", &dev(0));
        g.set_max(100.0);
        g.set_max(50.0);
        assert_eq!(g.get(), 100.0);
        g.set_max(200.0);
        assert_eq!(g.get(), 200.0);
    }

    #[test]
    fn fractional_counter_accumulates_and_ignores_negatives() {
        let reg = MonitorRegistry::new();
        let c = reg.counter_f("dgc_busy_seconds", "", &[]);
        c.add(0.25);
        c.add(0.5);
        c.add(-1.0);
        assert_eq!(c.get(), 0.75);
    }

    #[test]
    fn histogram_percentiles_reuse_log2_buckets() {
        let reg = MonitorRegistry::new();
        let h = reg.histogram("dgc_latency_seconds", "", &[]);
        for _ in 0..99 {
            h.observe_seconds(1e-6);
        }
        h.observe_seconds(1.0);
        assert_eq!(h.count(), 100);
        // p50 lands in the µs bucket (≤ 2× resolution), p99+ nears 1 s.
        assert!(h.percentile_seconds(0.5) < 4e-6);
        assert!(h.percentile_seconds(0.995) >= 1.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Arc::new(MonitorRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = reg.counter("dgc_spins", "", &[]);
            let f = reg.counter_f("dgc_spin_seconds", "", &[]);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                    f.add(0.5);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("dgc_spins", "", &[]).get(), 8000);
        assert_eq!(reg.counter_f("dgc_spin_seconds", "", &[]).get(), 4000.0);
    }

    #[test]
    fn snapshot_orders_families_and_series_deterministically() {
        let reg = MonitorRegistry::new();
        reg.counter("z_last", "", &[]).inc();
        reg.counter("a_first", "", &dev(1)).inc();
        reg.counter("a_first", "", &dev(0)).inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a_first", "z_last"]);
        let devices: Vec<&str> = snap.families[0]
            .samples
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(devices, vec!["0", "1"]);
    }
}
