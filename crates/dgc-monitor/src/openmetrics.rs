//! OpenMetrics text exposition: canonical renderer and strict re-parser.
//!
//! The renderer emits one canonical form — families in name order,
//! `# HELP`/`# TYPE` headers, counter samples with the `_total` suffix,
//! cumulative histogram buckets closed by `+Inf`, values in Rust's
//! shortest-round-trip float formatting, `# EOF` terminator. The parser
//! is deliberately **strict**: it accepts exactly that canonical form
//! (escape-correct labels, canonical value lexemes, monotone buckets)
//! and is used as the snapshot lint in CI. Together they round-trip
//! bit-exactly: `parse(text).render() == text`.
//!
//! Snapshot *logs* (the `--monitor-out` file) are concatenated snapshot
//! blocks, each ending in `# EOF`; [`parse_series`] splits and parses
//! them.

use std::fmt::Write as _;

/// Metric family kinds supported by the registry and exposition format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A sample value, keeping integer/float fidelity so rendering is
/// canonical in both domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    Int(u64),
    Float(f64),
}

impl MetricValue {
    /// The value as a float (how SLO expressions consume samples).
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::Int(v) => v as f64,
            MetricValue::Float(v) => v,
        }
    }

    fn render(self) -> String {
        match self {
            MetricValue::Int(v) => format!("{v}"),
            MetricValue::Float(v) => format!("{v}"),
        }
    }
}

/// One exposition line: full sample name (suffixes included), labels in
/// emission order, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// One metric family with its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnap {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub samples: Vec<Sample>,
}

/// A frozen registry state: the unit of export, lint and SLO evaluation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub families: Vec<FamilySnap>,
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl Snapshot {
    /// Render as canonical OpenMetrics text, `# EOF`-terminated.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            for s in &fam.samples {
                out.push_str(&s.name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                    }
                    out.push('}');
                }
                out.push(' ');
                out.push_str(&s.value.render());
                out.push('\n');
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Sum of samples whose name is `name` and whose labels are a
    /// superset of `labels`; `None` when nothing matched (metric absent
    /// from this snapshot).
    pub fn sum(&self, name: &str, labels: &[(String, String)]) -> Option<f64> {
        let mut total = 0.0;
        let mut hit = false;
        for fam in &self.families {
            for s in &fam.samples {
                if s.name == name && labels.iter().all(|want| s.labels.contains(want)) {
                    total += s.value.as_f64();
                    hit = true;
                }
            }
        }
        hit.then_some(total)
    }

    /// `p`-quantile upper bound, in the histogram's unit, reconstructed
    /// from `family`'s cumulative `_bucket` samples matching `labels`.
    /// `None` when the family has no matching buckets; 0 when it exists
    /// but holds no observations.
    pub fn histogram_percentile(
        &self,
        family: &str,
        labels: &[(String, String)],
        p: f64,
    ) -> Option<f64> {
        let bucket_name = format!("{family}_bucket");
        // (le, cumulative count), summed across matching series.
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        for fam in &self.families {
            for s in &fam.samples {
                if s.name != bucket_name {
                    continue;
                }
                let base: Vec<&(String, String)> =
                    s.labels.iter().filter(|(k, _)| k != "le").collect();
                if !labels.iter().all(|want| base.contains(&want)) {
                    continue;
                }
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| parse_le(v))?;
                let count = s.value.as_f64() as u64;
                match buckets.iter_mut().find(|(b, _)| *b == le) {
                    Some(slot) => slot.1 += count,
                    None => buckets.push((le, count)),
                }
            }
        }
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total = buckets.last().map(|&(_, c)| c).unwrap_or(0);
        if total == 0 {
            return Some(0.0);
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        for &(le, cum) in &buckets {
            if cum >= rank {
                return Some(le);
            }
        }
        Some(f64::INFINITY)
    }
}

fn parse_le(v: &str) -> f64 {
    if v == "+Inf" {
        f64::INFINITY
    } else {
        v.parse().unwrap_or(f64::NAN)
    }
}

/// Parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn unescape(s: &str, line: usize, in_label: bool) -> Result<String, ParseError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if in_label && c == '"' {
                return err(line, "unescaped '\"' in label value");
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if in_label => out.push('"'),
            Some(c) => return err(line, format!("invalid escape '\\{c}'")),
            None => return err(line, "dangling backslash"),
        }
    }
    Ok(out)
}

/// Check a value lexeme is canonical and classify it.
fn parse_value(lexeme: &str, line: usize) -> Result<MetricValue, ParseError> {
    if lexeme.is_empty() {
        return err(line, "missing sample value");
    }
    if lexeme.bytes().all(|b| b.is_ascii_digit()) {
        let v: u64 = match lexeme.parse() {
            Ok(v) => v,
            Err(_) => return err(line, format!("integer '{lexeme}' out of range")),
        };
        if format!("{v}") != lexeme {
            return err(line, format!("non-canonical integer '{lexeme}'"));
        }
        return Ok(MetricValue::Int(v));
    }
    let v: f64 = match lexeme.parse() {
        Ok(v) => v,
        Err(_) => return err(line, format!("invalid value '{lexeme}'")),
    };
    if !v.is_finite() {
        return err(line, format!("non-finite value '{lexeme}'"));
    }
    if format!("{v}") != lexeme {
        return err(line, format!("non-canonical float '{lexeme}'"));
    }
    Ok(MetricValue::Float(v))
}

struct SampleLine {
    name: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

fn parse_sample(line: &str, no: usize) -> Result<SampleLine, ParseError> {
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return err(no, "sample line has no value"),
    };
    if !valid_name(name_part) {
        return err(no, format!("invalid sample name '{name_part}'"));
    }
    let mut labels = Vec::new();
    let value_part = if let Some(body) = rest.strip_prefix('{') {
        let Some(close) = find_label_end(body) else {
            return err(no, "unterminated label set");
        };
        let (label_text, after) = body.split_at(close);
        let after = &after[1..]; // skip '}'
        if !label_text.is_empty() {
            for pair in split_labels(label_text, no)? {
                let Some(eq) = pair.find('=') else {
                    return err(no, format!("label '{pair}' has no '='"));
                };
                let (k, v) = pair.split_at(eq);
                if !valid_name(k) {
                    return err(no, format!("invalid label name '{k}'"));
                }
                let v = &v[1..];
                let Some(v) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return err(no, format!("label value for '{k}' not quoted"));
                };
                let v = unescape(v, no, true)?;
                if labels.iter().any(|(seen, _)| seen == k) {
                    return err(no, format!("duplicate label '{k}'"));
                }
                labels.push((k.to_string(), v));
            }
        }
        let Some(v) = after.strip_prefix(' ') else {
            return err(no, "expected single space before value");
        };
        v
    } else {
        let Some(v) = rest.strip_prefix(' ') else {
            return err(no, "expected single space before value");
        };
        v
    };
    if value_part.contains(' ') {
        return err(no, "trailing content after value (timestamps not allowed)");
    }
    Ok(SampleLine {
        name: name_part.to_string(),
        labels,
        value: parse_value(value_part, no)?,
    })
}

/// Index of the unescaped closing `}` of a label body.
fn find_label_end(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Split `k="v",k2="v2"` on commas outside quotes.
fn split_labels(text: &str, no: usize) -> Result<Vec<&str>, ParseError> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_quotes {
        return err(no, "unterminated quoted label value");
    }
    parts.push(&text[start..]);
    Ok(parts)
}

/// Valid sample-name suffixes for a family of `kind`.
fn sample_belongs(family: &str, kind: MetricKind, sample: &str) -> bool {
    match kind {
        MetricKind::Counter => sample == format!("{family}_total"),
        MetricKind::Gauge => sample == family,
        MetricKind::Histogram => {
            sample == format!("{family}_bucket")
                || sample == format!("{family}_count")
                || sample == format!("{family}_sum")
        }
    }
}

/// Validate one family's histogram shape: per label group, `le` strictly
/// increasing, cumulative counts non-decreasing, `+Inf` present and
/// consistent with `_count`.
fn check_histogram(fam: &FamilySnap, line_of_family: usize) -> Result<(), ParseError> {
    // One entry per base label set: (labels sans `le`, bucket (le, count)
    // pairs in input order, the `_count` sample when seen).
    type Group = (Vec<(String, String)>, Vec<(f64, u64)>, Option<u64>);
    let bucket = format!("{}_bucket", fam.name);
    let count = format!("{}_count", fam.name);
    let mut groups: Vec<Group> = Vec::new();
    let base_of = |s: &Sample| -> Vec<(String, String)> {
        s.labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect()
    };
    for s in &fam.samples {
        let base = base_of(s);
        let slot = match groups.iter_mut().find(|(b, _, _)| *b == base) {
            Some(g) => g,
            None => {
                groups.push((base, Vec::new(), None));
                groups.last_mut().unwrap()
            }
        };
        if s.name == bucket {
            let Some((_, le)) = s.labels.iter().find(|(k, _)| k == "le") else {
                return err(line_of_family, format!("{bucket} sample without le label"));
            };
            let le = parse_le(le);
            if le.is_nan() {
                return err(line_of_family, "unparsable le bound");
            }
            slot.1.push((le, s.value.as_f64() as u64));
        } else if s.name == count {
            slot.2 = Some(s.value.as_f64() as u64);
        }
    }
    for (base, buckets, count) in &groups {
        if buckets.is_empty() {
            return err(
                line_of_family,
                format!("histogram series {base:?} has no buckets"),
            );
        }
        for w in buckets.windows(2) {
            if w[1].0 <= w[0].0 {
                return err(line_of_family, "le bounds not strictly increasing");
            }
            if w[1].1 < w[0].1 {
                return err(line_of_family, "bucket counts not cumulative");
            }
        }
        let (last_le, last_count) = *buckets.last().unwrap();
        if last_le != f64::INFINITY {
            return err(line_of_family, "histogram missing +Inf bucket");
        }
        if *count != Some(last_count) {
            return err(line_of_family, "_count disagrees with +Inf bucket");
        }
    }
    Ok(())
}

/// Strictly parse one canonical OpenMetrics block (see module docs).
pub fn parse(text: &str) -> Result<Snapshot, ParseError> {
    if !text.ends_with('\n') {
        return err(text.lines().count(), "text must end with a newline");
    }
    let mut families: Vec<FamilySnap> = Vec::new();
    let mut pending_help: Option<(String, String, usize)> = None;
    let mut family_line = 0usize;
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let no = i + 1;
        if saw_eof {
            return err(no, "content after # EOF");
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if line.is_empty() {
            return err(no, "blank lines are not canonical");
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, help)) = rest.split_once(' ') else {
                return err(no, "HELP line needs a name and text");
            };
            if !valid_name(name) {
                return err(no, format!("invalid family name '{name}'"));
            }
            if pending_help.is_some() {
                return err(no, "HELP line not followed by its TYPE line");
            }
            pending_help = Some((name.to_string(), unescape(help, no, false)?, no));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                return err(no, "TYPE line needs a name and kind");
            };
            if !valid_name(name) {
                return err(no, format!("invalid family name '{name}'"));
            }
            let kind = match kind {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                other => return err(no, format!("unknown metric kind '{other}'")),
            };
            let help = match pending_help.take() {
                Some((help_name, help, help_line)) => {
                    if help_name != name {
                        return err(
                            help_line,
                            format!("HELP for '{help_name}' precedes TYPE for '{name}'"),
                        );
                    }
                    help
                }
                None => String::new(),
            };
            if let Some(prev) = families.last() {
                if prev.name.as_str() >= name {
                    return err(
                        no,
                        format!("family '{name}' out of order after '{}'", prev.name),
                    );
                }
            }
            families.push(FamilySnap {
                name: name.to_string(),
                help,
                kind,
                samples: Vec::new(),
            });
            family_line = no;
            continue;
        }
        if line.starts_with('#') {
            return err(no, "unknown comment line");
        }
        if pending_help.is_some() {
            return err(no, "HELP line not followed by its TYPE line");
        }
        let sample = parse_sample(line, no)?;
        let Some(fam) = families.last_mut() else {
            return err(no, "sample before any # TYPE line");
        };
        if !sample_belongs(&fam.name, fam.kind, &sample.name) {
            return err(
                no,
                format!(
                    "sample '{}' does not belong to {} family '{}'",
                    sample.name,
                    fam.kind.as_str(),
                    fam.name
                ),
            );
        }
        fam.samples.push(Sample {
            name: sample.name,
            labels: sample.labels,
            value: sample.value,
        });
    }
    if !saw_eof {
        return err(text.lines().count(), "missing # EOF terminator");
    }
    if pending_help.is_some() {
        return err(
            text.lines().count(),
            "HELP line not followed by its TYPE line",
        );
    }
    for fam in &families {
        if fam.kind == MetricKind::Histogram {
            check_histogram(fam, family_line)?;
        }
    }
    Ok(Snapshot { families })
}

/// Parse a snapshot *log*: concatenated canonical blocks, each ending in
/// `# EOF`. Returns the snapshots in file order.
pub fn parse_series(text: &str) -> Result<Vec<Snapshot>, ParseError> {
    let mut out = Vec::new();
    let mut block = String::new();
    let mut offset = 0usize;
    for line in text.lines() {
        block.push_str(line);
        block.push('\n');
        if line == "# EOF" {
            out.push(parse(&block).map_err(|e| ParseError {
                line: e.line + offset,
                message: e.message,
            })?);
            offset += block.lines().count();
            block.clear();
        }
    }
    if !block.is_empty() {
        return err(
            offset + block.lines().count(),
            "trailing content after the last # EOF block",
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, labels: &[(&str, &str)], value: MetricValue) -> Sample {
        Sample {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }

    fn demo() -> Snapshot {
        Snapshot {
            families: vec![
                FamilySnap {
                    name: "dgc_instances".into(),
                    help: "Instance outcomes".into(),
                    kind: MetricKind::Counter,
                    samples: vec![
                        sample(
                            "dgc_instances_total",
                            &[("result", "failed")],
                            MetricValue::Int(1),
                        ),
                        sample(
                            "dgc_instances_total",
                            &[("result", "ok")],
                            MetricValue::Int(7),
                        ),
                    ],
                },
                FamilySnap {
                    name: "dgc_latency_seconds".into(),
                    help: String::new(),
                    kind: MetricKind::Histogram,
                    samples: vec![
                        sample(
                            "dgc_latency_seconds_bucket",
                            &[("le", "0.000000511")],
                            MetricValue::Int(3),
                        ),
                        sample(
                            "dgc_latency_seconds_bucket",
                            &[("le", "+Inf")],
                            MetricValue::Int(4),
                        ),
                        sample("dgc_latency_seconds_count", &[], MetricValue::Int(4)),
                        sample("dgc_latency_seconds_sum", &[], MetricValue::Float(0.5)),
                    ],
                },
                FamilySnap {
                    name: "dgc_util".into(),
                    help: "mean \"issue\" share\nper device".into(),
                    kind: MetricKind::Gauge,
                    samples: vec![sample(
                        "dgc_util",
                        &[("device", "0")],
                        MetricValue::Float(0.25),
                    )],
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips_bit_exactly() {
        let text = demo().render();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed, demo());
    }

    #[test]
    fn help_and_label_escapes_survive() {
        let mut snap = demo();
        snap.families[2].samples[0].labels[0].1 = "a\\b\"c\nd".into();
        let text = snap.render();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.families[2].samples[0].labels[0].1, "a\\b\"c\nd");
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn strictness_rejects_common_deviations() {
        let ok = demo().render();
        // Missing EOF.
        let mut t = ok.clone();
        t.truncate(t.len() - "# EOF\n".len());
        assert!(parse(&t).is_err());
        // Content after EOF.
        assert!(parse(&format!("{ok}x 1\n")).is_err());
        // Non-canonical float.
        let t = ok.replace(" 0.25\n", " 0.250\n");
        assert!(parse(&t).is_err());
        // Non-canonical integer.
        let t = ok.replace(" 7\n", " 07\n");
        assert!(parse(&t).is_err());
        // Timestamps are not canonical.
        let t = ok.replace(" 7\n", " 7 123\n");
        assert!(parse(&t).is_err());
        // Counter sample without _total.
        let t = ok.replace(
            "dgc_instances_total{result=\"failed\"}",
            "dgc_instances{result=\"failed\"}",
        );
        assert!(parse(&t).is_err());
        // Families out of order.
        let t = ok.replace("dgc_util", "aaa_util");
        assert!(parse(&t).is_err());
        // Blank line.
        let t = ok.replace("# TYPE dgc_util gauge\n", "\n# TYPE dgc_util gauge\n");
        assert!(parse(&t).is_err());
    }

    #[test]
    fn histogram_shape_is_validated() {
        let ok = demo().render();
        // _count disagreeing with +Inf.
        let t = ok.replace("dgc_latency_seconds_count 4", "dgc_latency_seconds_count 5");
        assert!(parse(&t).is_err());
        // Non-cumulative buckets.
        let t = ok.replace("le=\"+Inf\"} 4", "le=\"+Inf\"} 2");
        assert!(parse(&t).is_err());
    }

    #[test]
    fn sum_and_percentile_queries() {
        let snap = demo();
        assert_eq!(snap.sum("dgc_instances_total", &[]), Some(8.0));
        assert_eq!(
            snap.sum(
                "dgc_instances_total",
                &[("result".to_string(), "ok".to_string())]
            ),
            Some(7.0)
        );
        assert_eq!(snap.sum("nope_total", &[]), None);
        // 3 of 4 samples under 511 ns: p50 hits the finite bucket, p99 the
        // +Inf tail.
        let p50 = snap
            .histogram_percentile("dgc_latency_seconds", &[], 0.5)
            .unwrap();
        assert_eq!(p50, 0.000000511);
        let p99 = snap
            .histogram_percentile("dgc_latency_seconds", &[], 0.99)
            .unwrap();
        assert!(p99.is_infinite());
        assert!(snap.histogram_percentile("absent", &[], 0.5).is_none());
    }

    #[test]
    fn series_splits_on_eof_blocks() {
        let one = demo().render();
        let log = format!("{one}{one}{one}");
        let series = parse_series(&log).unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], series[2]);
        // A truncated trailing block is an error with a global line number.
        let bad = format!("{one}# TYPE x counter\n");
        let e = parse_series(&bad).unwrap_err();
        assert!(e.line > one.lines().count(), "{e}");
        assert!(parse_series("").unwrap().is_empty());
    }
}
