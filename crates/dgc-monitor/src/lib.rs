//! dgc-monitor: operational monitoring for ensemble runs.
//!
//! The observability stack (dgc-obs, dgc-insight) answers *what happened*
//! after a run, from traces. This crate answers *how is it going* and
//! *is it acceptable*, from live metrics:
//!
//! 1. [`MonitorRegistry`] — a thread-safe in-process metrics registry
//!    (monotonic counters, gauges, log2-bucket latency histograms reusing
//!    dgc-obs's histogram math) with deterministic export order.
//! 2. `impl MonitorSink for MonitorRegistry` ([`mod@sink`]) — the bridge:
//!    every ensemble driver streams instance completions, retries, OOM
//!    splits, device busy time, heap high-water and RPC failures into the
//!    registry through the [`dgc_obs::MonitorSink`] hook on `Recorder`,
//!    as pure observation (simulated results stay bit-identical).
//! 3. [`MonitorWriter`] — a background thread appending OpenMetrics
//!    snapshot blocks to a log file at a wall-clock interval
//!    (`ensemble-cli --monitor-out/--monitor-interval`).
//! 4. [`openmetrics`] — canonical renderer + strict parser; the parser
//!    doubles as the CI snapshot lint (`dgc-monitor lint`).
//! 5. [`slo`] — declarative SLO specs with multi-window burn-rate
//!    alerting over a snapshot series (`dgc-monitor slo`).
//! 6. [`dashboard`] — a self-contained HTML dashboard with inline SVG
//!    (`dgc-monitor render`).

pub mod dashboard;
pub mod openmetrics;
pub mod registry;
pub mod sink;
pub mod slo;
pub mod writer;

pub use dashboard::{render_dashboard, BlameSection};
pub use openmetrics::{parse, parse_series, ParseError, Snapshot};
pub use registry::{Counter, CounterF, Gauge, Histogram, MonitorRegistry};
pub use slo::{evaluate, SloReport, SloSpec, Verdict};
pub use writer::MonitorWriter;
