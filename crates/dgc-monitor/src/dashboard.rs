//! Self-contained HTML dashboard: one file, inline SVG and CSS, no
//! external assets, so the artifact can be archived next to the run it
//! describes and opened years later.
//!
//! Sections:
//! * **Run summary** — headline counters from the final snapshot.
//! * **Time series** — per-device utilization, ok-instance throughput
//!   per snapshot, device busy share, heap in use — each an inline SVG
//!   line chart over the snapshot series.
//! * **SLO budgets** — one bar per SLO showing fast/slow budget burn
//!   against the alert thresholds (when a spec was evaluated).
//! * **Critical-path blame** — top rows from the stall / device /
//!   instance blame tables (when a Chrome trace was supplied).

use crate::openmetrics::Snapshot;
use crate::slo::{SloReport, Verdict};
use dgc_insight::BlameTable;
use std::fmt::Write as _;

/// A titled blame table for the dashboard's blame section.
pub struct BlameSection {
    pub title: String,
    pub table: BlameTable,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

const PALETTE: [&str; 6] = [
    "#4e9af1", "#f1734e", "#3fb950", "#d2a8ff", "#e3b341", "#ff7b9c",
];

fn fmt_val(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Inline SVG line chart over snapshot indices. `series` is
/// `(legend label, one y per snapshot)`; all series share the x axis.
fn line_chart(title: &str, series: &[(String, Vec<f64>)], y_unit: &str) -> String {
    const W: f64 = 640.0;
    const H: f64 = 200.0;
    const ML: f64 = 56.0; // left margin for y labels
    const MR: f64 = 12.0;
    const MT: f64 = 10.0;
    const MB: f64 = 26.0;
    let n = series.iter().map(|(_, ys)| ys.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "<div class=\"chart\"><h3>{}</h3>", esc(title));
    if n == 0 || series.is_empty() {
        let _ = writeln!(out, "<p class=\"empty\">no data</p></div>");
        return out;
    }
    let y_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let px = |i: usize| -> f64 {
        if n <= 1 {
            ML + (W - ML - MR) / 2.0
        } else {
            ML + (W - ML - MR) * i as f64 / (n - 1) as f64
        }
    };
    let py = |v: f64| -> f64 { H - MB - (H - MT - MB) * (v / y_max).clamp(0.0, 1.0) };
    let _ = writeln!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"{}\">",
        esc(title)
    );
    // Gridlines + y labels at 0, ½, max.
    for frac in [0.0, 0.5, 1.0] {
        let v = y_max * frac;
        let y = py(v);
        let _ = writeln!(
            out,
            "<line x1=\"{ML}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" class=\"grid\"/>",
            W - MR
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"ylab\">{}</text>",
            ML - 6.0,
            y + 4.0,
            fmt_val(v)
        );
    }
    // X labels: first and last snapshot index.
    let _ = writeln!(
        out,
        "<text x=\"{ML}\" y=\"{:.1}\" class=\"xlab\">snap 1</text>",
        H - 8.0
    );
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"xlab xend\">snap {n}</text>",
        W - MR,
        H - 8.0
    );
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{:.1}\" class=\"yunit\">{}</text>",
        ML - 6.0,
        MT + 2.0,
        esc(y_unit)
    );
    for (si, (_, ys)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let pts: Vec<String> = ys
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", px(i), py(v)))
            .collect();
        if pts.len() == 1 {
            let _ = writeln!(
                out,
                "<circle cx=\"{}\" r=\"3\" fill=\"{color}\"/>",
                pts[0].replace(',', "\" cy=\"")
            );
        } else {
            let _ = writeln!(
                out,
                "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>",
                pts.join(" ")
            );
        }
    }
    let _ = writeln!(out, "</svg>");
    let _ = writeln!(out, "<div class=\"legend\">");
    for (si, (label, _)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let _ = writeln!(
            out,
            "<span><i style=\"background:{color}\"></i>{}</span>",
            esc(label)
        );
    }
    let _ = writeln!(out, "</div></div>");
    out
}

/// Per-snapshot values of a gauge/counter family, one series per device
/// label found anywhere in the log.
fn device_series(series: &[Snapshot], name: &str) -> Vec<(String, Vec<f64>)> {
    let mut devices: Vec<String> = Vec::new();
    for snap in series {
        for fam in &snap.families {
            for s in &fam.samples {
                if s.name == name {
                    if let Some((_, d)) = s.labels.iter().find(|(k, _)| k == "device") {
                        if !devices.contains(d) {
                            devices.push(d.clone());
                        }
                    }
                }
            }
        }
    }
    devices.sort();
    devices
        .into_iter()
        .map(|d| {
            let labels = vec![("device".to_string(), d.clone())];
            let ys: Vec<f64> = series
                .iter()
                .map(|s| s.sum(name, &labels).unwrap_or(0.0))
                .collect();
            (format!("device {d}"), ys)
        })
        .collect()
}

fn total_series(series: &[Snapshot], name: &str, labels: &[(String, String)]) -> Vec<f64> {
    series
        .iter()
        .map(|s| s.sum(name, labels).unwrap_or(0.0))
        .collect()
}

fn deltas(cumulative: &[f64]) -> Vec<f64> {
    cumulative
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i == 0 {
                v
            } else {
                (v - cumulative[i - 1]).max(0.0)
            }
        })
        .collect()
}

fn verdict_class(v: Verdict) -> &'static str {
    match v {
        Verdict::Ok => "ok",
        Verdict::Warn => "warn",
        Verdict::Breach => "breach",
    }
}

fn slo_section(report: &SloReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<h2>SLO budgets <span class=\"badge {}\">{}</span></h2>",
        verdict_class(report.verdict),
        report.verdict.as_str()
    );
    let _ = writeln!(
        out,
        "<p class=\"note\">{} snapshots evaluated; bar = error-budget share consumed in the window.</p>",
        report.snapshots
    );
    for r in &report.results {
        let _ = writeln!(
            out,
            "<div class=\"slo\"><div class=\"slo-head\"><span class=\"badge {}\">{}</span> <b>{}</b> <code>{}</code> — compliance {:.1}% (target {:.1}%)</div>",
            verdict_class(r.verdict),
            r.verdict.as_str(),
            esc(&r.name),
            esc(&r.objective),
            r.compliance * 100.0,
            r.target * 100.0
        );
        for (win, burn, alert) in [
            ("fast", r.budget_consumed_fast, r.fast_alert),
            ("slow", r.budget_consumed_slow, r.slow_alert),
        ] {
            let pct = if burn.is_finite() {
                (burn * 100.0).min(100.0)
            } else {
                100.0
            };
            let txt = if burn.is_finite() {
                format!("{:.1}%", burn * 100.0)
            } else {
                "inf".into()
            };
            let _ = writeln!(
                out,
                "<div class=\"bar-row\"><span class=\"bar-lab\">{win}</span><div class=\"bar\"><div class=\"fill {}\" style=\"width:{pct:.1}%\"></div></div><span class=\"bar-val\">{txt}{}</span></div>",
                if alert { "hot" } else { "cool" },
                if alert { " ⚠" } else { "" }
            );
        }
        let _ = writeln!(out, "</div>");
    }
    out
}

fn blame_section(blames: &[BlameSection]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<h2>Critical-path blame</h2>");
    for b in blames {
        let _ = writeln!(
            out,
            "<div class=\"blame\"><h3>{} <small>{:.4}s attributed</small></h3><table><tr><th></th><th>seconds</th><th>share</th></tr>",
            esc(&b.title),
            b.table.total_s
        );
        for row in b.table.rows.iter().take(8) {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{:.4}</td><td><div class=\"mini\"><div style=\"width:{:.1}%\"></div></div> {:.1}%</td></tr>",
                esc(&row.label),
                row.seconds,
                row.pct.min(100.0),
                row.pct
            );
        }
        let _ = writeln!(out, "</table></div>");
    }
    out
}

fn headline(series: &[Snapshot]) -> String {
    let last = series.last().expect("non-empty series");
    let mut out = String::from("<div class=\"cards\">");
    let card = |out: &mut String, label: &str, value: String| {
        let _ = writeln!(
            out,
            "<div class=\"card\"><b>{value}</b><span>{}</span></div>",
            esc(label)
        );
    };
    let ok = last
        .sum("dgc_instances_total", &[("result".into(), "ok".into())])
        .unwrap_or(0.0);
    let failed = last
        .sum("dgc_instances_total", &[("result".into(), "failed".into())])
        .unwrap_or(0.0);
    card(&mut out, "instances ok", format!("{ok:.0}"));
    card(&mut out, "instances failed", format!("{failed:.0}"));
    card(
        &mut out,
        "kernel launches",
        format!(
            "{:.0}",
            last.sum("dgc_kernel_launches_total", &[]).unwrap_or(0.0)
        ),
    );
    card(
        &mut out,
        "retries",
        format!("{:.0}", last.sum("dgc_retries_total", &[]).unwrap_or(0.0)),
    );
    card(
        &mut out,
        "recovered",
        format!(
            "{:.0}",
            last.sum("dgc_instances_recovered_total", &[])
                .unwrap_or(0.0)
        ),
    );
    card(
        &mut out,
        "rpc calls",
        format!("{:.0}", last.sum("dgc_rpc_calls_total", &[]).unwrap_or(0.0)),
    );
    if let Some(p99) = last.histogram_percentile("dgc_instance_latency_seconds", &[], 0.99) {
        card(&mut out, "p99 instance latency", format!("{p99:.6}s"));
    }
    out.push_str("</div>\n");
    out
}

const STYLE: &str = r#"
body { font: 14px/1.5 system-ui, sans-serif; margin: 24px auto; max-width: 720px;
       color: #24292f; background: #fff; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
h3 { font-size: 13px; margin: 6px 0; } small { color: #57606a; font-weight: normal; }
code { background: #f6f8fa; padding: 1px 4px; border-radius: 3px; font-size: 12px; }
.cards { display: flex; flex-wrap: wrap; gap: 8px; }
.card { border: 1px solid #d0d7de; border-radius: 6px; padding: 8px 12px; min-width: 90px; }
.card b { display: block; font-size: 16px; } .card span { color: #57606a; font-size: 11px; }
.chart { margin: 12px 0; } svg { width: 100%; height: auto; border: 1px solid #d0d7de;
       border-radius: 6px; background: #fbfcfd; }
.grid { stroke: #d8dee4; stroke-width: 0.5; }
.ylab { font-size: 9px; fill: #57606a; text-anchor: end; }
.yunit { font-size: 9px; fill: #8c959f; text-anchor: end; }
.xlab { font-size: 9px; fill: #57606a; } .xend { text-anchor: end; }
.legend span { margin-right: 14px; font-size: 11px; color: #57606a; }
.legend i { display: inline-block; width: 10px; height: 10px; border-radius: 2px;
       margin-right: 4px; vertical-align: -1px; }
.badge { padding: 1px 8px; border-radius: 10px; font-size: 11px; color: #fff; }
.badge.ok { background: #3fb950; } .badge.warn { background: #e3b341; }
.badge.breach { background: #f85149; }
.slo { border: 1px solid #d0d7de; border-radius: 6px; padding: 10px 12px; margin: 8px 0; }
.bar-row { display: flex; align-items: center; gap: 8px; margin: 4px 0; }
.bar-lab { width: 36px; font-size: 11px; color: #57606a; }
.bar { flex: 1; height: 10px; background: #eaeef2; border-radius: 5px; overflow: hidden; }
.fill { height: 100%; } .fill.cool { background: #4e9af1; } .fill.hot { background: #f85149; }
.bar-val { width: 70px; font-size: 11px; text-align: right; }
.blame table { border-collapse: collapse; width: 100%; font-size: 12px; }
.blame th, .blame td { text-align: left; padding: 3px 8px; border-bottom: 1px solid #eaeef2; }
.mini { display: inline-block; width: 80px; height: 8px; background: #eaeef2;
       border-radius: 4px; vertical-align: middle; overflow: hidden; }
.mini div { height: 100%; background: #f1734e; }
.note, .empty { color: #57606a; font-size: 12px; }
footer { margin-top: 32px; color: #8c959f; font-size: 11px; }
"#;

/// Render the dashboard. `series` must be non-empty (the caller vets the
/// snapshot log first); `slo` and `blames` sections appear when provided.
pub fn render_dashboard(
    series: &[Snapshot],
    slo: Option<&SloReport>,
    blames: &[BlameSection],
) -> String {
    assert!(!series.is_empty(), "dashboard needs at least one snapshot");
    let mut body = String::new();
    let _ = writeln!(body, "<h1>dgc-monitor run dashboard</h1>");
    let _ = writeln!(
        body,
        "<p class=\"note\">{} snapshot{} from the monitor log.</p>",
        series.len(),
        if series.len() == 1 { "" } else { "s" }
    );
    body.push_str(&headline(series));

    let _ = writeln!(body, "<h2>Time series</h2>");
    body.push_str(&line_chart(
        "Device utilization (mean issue-slot share)",
        &device_series(series, "dgc_device_utilization"),
        "share",
    ));
    let ok_cum = total_series(
        series,
        "dgc_instances_total",
        &[("result".into(), "ok".into())],
    );
    body.push_str(&line_chart(
        "Throughput (ok instances per snapshot)",
        &[("ok instances".to_string(), deltas(&ok_cum))],
        "inst",
    ));
    body.push_str(&line_chart(
        "Device busy time (cumulative simulated seconds)",
        &device_series(series, "dgc_device_busy_seconds_total"),
        "s",
    ));
    body.push_str(&line_chart(
        "Heap in use (bytes)",
        &device_series(series, "dgc_heap_in_use_bytes"),
        "B",
    ));

    if let Some(report) = slo {
        body.push_str(&slo_section(report));
    }
    if !blames.is_empty() {
        body.push_str(&blame_section(blames));
    }
    let _ = writeln!(
        body,
        "<footer>generated by dgc-monitor render — single file, no external assets</footer>"
    );

    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>dgc-monitor dashboard</title>\n<style>{STYLE}</style></head>\n\
         <body>\n{body}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MonitorRegistry;
    use dgc_obs::MonitorSink;

    fn series_of(n: usize) -> Vec<Snapshot> {
        let reg = MonitorRegistry::new();
        let sink: &dyn MonitorSink = &reg;
        let mut out = Vec::new();
        for i in 0..n {
            sink.instance_done(0, true, 0.001 * (i + 1) as f64);
            sink.instance_done(1, i % 3 != 0, 0.002);
            sink.utilization_sample(0, 0.5 + 0.05 * i as f64);
            sink.utilization_sample(1, 0.4);
            sink.kernel_launch(0, 4, 0.25);
            sink.heap_sample(0, 1000 + 100 * i as u64, 2000, 4096);
            out.push(crate::openmetrics::parse(&reg.render()).unwrap());
        }
        out
    }

    #[test]
    fn dashboard_is_self_contained_html_with_all_sections() {
        let series = series_of(4);
        let spec = crate::slo::SloSpec::parse(
            r#"{"schema": 1, "slos": [
                {"name": "completion", "target": 0.9,
                 "objective": "ratio(dgc_instances_total{result=\"ok\"}, dgc_instances_total) >= 0.99"}]}"#,
        )
        .unwrap();
        let report = crate::slo::evaluate(&spec, &series).unwrap();
        let blames = vec![BlameSection {
            title: "By device".into(),
            table: dgc_insight::BlameTable {
                rows: vec![dgc_insight::BlameRow {
                    label: "device 0 <kernel>".into(),
                    seconds: 1.25,
                    pct: 100.0,
                }],
                total_s: 1.25,
            },
        }];
        let html = render_dashboard(&series, Some(&report), &blames);
        // Self-contained: no external references of any kind.
        for banned in ["http://", "https://", "<script", "src=", "@import", "url("] {
            assert!(!html.contains(banned), "found {banned}");
        }
        // All sections render.
        for expect in [
            "<svg",
            "Device utilization",
            "Throughput",
            "SLO budgets",
            "Critical-path blame",
            "completion",
        ] {
            assert!(html.contains(expect), "missing {expect}");
        }
        // Blame labels are HTML-escaped.
        assert!(html.contains("device 0 &lt;kernel&gt;"));
        assert!(!html.contains("device 0 <kernel>"));
        // Deterministic.
        assert_eq!(html, render_dashboard(&series, Some(&report), &blames));
    }

    #[test]
    fn single_snapshot_and_missing_families_degrade_gracefully() {
        let series = vec![Snapshot::default()];
        let html = render_dashboard(&series, None, &[]);
        assert!(html.contains("no data"));
        assert!(html.contains("1 snapshot "));

        let series = series_of(1);
        let html = render_dashboard(&series, None, &[]);
        assert!(html.contains("<circle")); // single point drawn as a dot
    }
}
