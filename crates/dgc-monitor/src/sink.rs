//! [`MonitorSink`] implementation: the bridge from the ensemble drivers'
//! live event stream into the metrics registry.
//!
//! The standard `dgc_*` metric families live here, in one place, so the
//! exporter, the SLO specs and the dashboard agree on names. Handles are
//! resolved through the registry's get-or-create path on every event —
//! cheap (one mutex + BTreeMap probe) at simulation event rates, and it
//! keeps per-device label fan-out automatic.

use crate::registry::MonitorRegistry;
use dgc_obs::MonitorSink;

fn device(d: u32) -> Vec<(&'static str, String)> {
    vec![("device", d.to_string())]
}

impl MonitorSink for MonitorRegistry {
    fn instance_done(&self, device_n: u32, ok: bool, latency_s: f64) {
        let result = if ok { "ok" } else { "failed" };
        self.counter(
            "dgc_instances",
            "Instance attempt outcomes by result and device",
            &[("device", device_n.to_string()), ("result", result.into())],
        )
        .inc();
        self.histogram(
            "dgc_instance_latency_seconds",
            "Per-instance simulated end-to-end latency within a launch",
            &[],
        )
        .observe_seconds(latency_s);
    }

    fn instance_recovered(&self, device_n: u32) {
        self.counter(
            "dgc_instances_recovered",
            "Previously-failed instances that succeeded on a retry",
            &device(device_n),
        )
        .inc();
    }

    fn retry_scheduled(&self, device_n: u32) {
        self.counter(
            "dgc_retries",
            "Instance attempts queued for another recovery round",
            &device(device_n),
        )
        .inc();
    }

    fn oom_split(&self, new_batch: u32) {
        self.counter("dgc_oom_splits", "Batch halvings after OOM rounds", &[])
            .inc();
        self.gauge(
            "dgc_batch_size",
            "Current recovery batch size after OOM splits",
            &[],
        )
        .set(new_batch as f64);
    }

    fn backoff_wait(&self, seconds: f64) {
        self.counter_f(
            "dgc_backoff_seconds",
            "Wall time charged to recovery backoff waits",
            &[],
        )
        .add(seconds);
    }

    fn kernel_launch(&self, device_n: u32, instances: u32, busy_s: f64) {
        self.counter(
            "dgc_kernel_launches",
            "Kernel launches completed per device",
            &device(device_n),
        )
        .inc();
        self.counter_f(
            "dgc_device_busy_seconds",
            "Simulated device-lane busy time per device",
            &device(device_n),
        )
        .add(busy_s);
        self.counter(
            "dgc_instances_launched",
            "Instances carried by completed kernel launches",
            &device(device_n),
        )
        .add(instances as u64);
    }

    fn team_done(&self, device_n: u32, _done: u32, _total: u32) {
        self.counter(
            "dgc_teams_completed",
            "Teams that finished functional execution (mid-kernel liveness)",
            &device(device_n),
        )
        .inc();
    }

    fn heap_sample(&self, device_n: u32, in_use: u64, high_water: u64, capacity: u64) {
        let labels = device(device_n);
        self.gauge(
            "dgc_heap_in_use_bytes",
            "Device-heap bytes live after the most recent launch",
            &labels,
        )
        .set(in_use as f64);
        self.gauge(
            "dgc_heap_high_water_bytes",
            "Device-heap allocation high-water mark",
            &labels,
        )
        .set_max(high_water as f64);
        self.gauge("dgc_heap_capacity_bytes", "Device-heap capacity", &labels)
            .set(capacity as f64);
    }

    fn rpc_activity(&self, calls: u64, failures: u64) {
        if calls > 0 {
            self.counter("dgc_rpc_calls", "Host-RPC round trips", &[])
                .add(calls);
        }
        if failures > 0 {
            self.counter("dgc_rpc_failures", "Host-RPC round trips that errored", &[])
                .add(failures);
        }
    }

    fn device_dead(&self, device_n: u32) {
        self.counter(
            "dgc_devices_dead",
            "Whole-device deaths observed by the sharded drivers",
            &device(device_n),
        )
        .inc();
    }

    fn utilization_sample(&self, device_n: u32, mean: f64) {
        self.gauge(
            "dgc_device_utilization",
            "Mean issue-slot utilization of the most recent launch",
            &device(device_n),
        )
        .set(mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_events_land_in_the_expected_families() {
        let reg = MonitorRegistry::new();
        let sink: &dyn MonitorSink = &reg;
        sink.instance_done(0, true, 0.001);
        sink.instance_done(0, true, 0.002);
        sink.instance_done(1, false, 0.100);
        sink.instance_recovered(1);
        sink.retry_scheduled(1);
        sink.oom_split(4);
        sink.backoff_wait(0.25);
        sink.kernel_launch(0, 8, 1.5);
        sink.team_done(0, 1, 8);
        sink.heap_sample(0, 100, 900, 1000);
        sink.heap_sample(0, 50, 400, 1000);
        sink.rpc_activity(10, 2);
        sink.rpc_activity(0, 0);
        sink.device_dead(1);
        sink.utilization_sample(0, 0.75);

        let ok = reg.counter(
            "dgc_instances",
            "",
            &[("device", "0".into()), ("result", "ok".into())],
        );
        assert_eq!(ok.get(), 2);
        let failed = reg.counter(
            "dgc_instances",
            "",
            &[("device", "1".into()), ("result", "failed".into())],
        );
        assert_eq!(failed.get(), 1);
        assert_eq!(
            reg.histogram("dgc_instance_latency_seconds", "", &[])
                .count(),
            3
        );
        assert_eq!(
            reg.counter("dgc_instances_recovered", "", &[("device", "1".into())])
                .get(),
            1
        );
        assert_eq!(reg.counter("dgc_oom_splits", "", &[]).get(), 1);
        assert_eq!(reg.gauge("dgc_batch_size", "", &[]).get(), 4.0);
        assert_eq!(reg.counter_f("dgc_backoff_seconds", "", &[]).get(), 0.25);
        assert_eq!(
            reg.counter_f("dgc_device_busy_seconds", "", &[("device", "0".into())])
                .get(),
            1.5
        );
        // High-water ratchets, in-use follows the last sample.
        assert_eq!(
            reg.gauge("dgc_heap_high_water_bytes", "", &[("device", "0".into())])
                .get(),
            900.0
        );
        assert_eq!(
            reg.gauge("dgc_heap_in_use_bytes", "", &[("device", "0".into())])
                .get(),
            50.0
        );
        assert_eq!(reg.counter("dgc_rpc_calls", "", &[]).get(), 10);
        assert_eq!(reg.counter("dgc_rpc_failures", "", &[]).get(), 2);
        assert_eq!(
            reg.counter("dgc_devices_dead", "", &[("device", "1".into())])
                .get(),
            1
        );
        assert_eq!(
            reg.gauge("dgc_device_utilization", "", &[("device", "0".into())])
                .get(),
            0.75
        );

        // The whole state renders as valid canonical OpenMetrics.
        let text = reg.render();
        let parsed = crate::openmetrics::parse(&text).unwrap();
        assert_eq!(parsed.render(), text);
    }
}
