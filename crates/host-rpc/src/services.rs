use crate::proto::{Request, Response};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};

/// Where the file-system service keeps its files.
pub enum FsBackend {
    /// Deterministic in-memory file system (the default; tests and the
    /// benchmark harness use this).
    InMemory(BTreeMap<String, Vec<u8>>),
    /// A real directory on the host, used as a sandbox root. Paths are
    /// resolved strictly inside it.
    Directory(std::path::PathBuf),
}

impl Default for FsBackend {
    fn default() -> Self {
        FsBackend::InMemory(BTreeMap::new())
    }
}

/// Per-service call counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcStats {
    pub stdio_calls: u64,
    pub fs_calls: u64,
    pub clock_calls: u64,
    pub exit_calls: u64,
    pub errors: u64,
}

impl RpcStats {
    pub fn total(&self) -> u64 {
        self.stdio_calls + self.fs_calls + self.clock_calls + self.exit_calls
    }

    /// Fold another counter set into this one (batched-ensemble rollup).
    pub fn merge(&mut self, other: &RpcStats) {
        self.stdio_calls += other.stdio_calls;
        self.fs_calls += other.fs_calls;
        self.clock_calls += other.clock_calls;
        self.exit_calls += other.exit_calls;
        self.errors += other.errors;
    }
}

enum OpenMode {
    Read,
    Write,
    Append,
}

struct OpenFile {
    path: String,
    pos: u64,
    mode: OpenMode,
    /// Directory-backed files keep a real handle; in-memory files operate
    /// on the map directly.
    real: Option<std::fs::File>,
}

/// Host-side implementations of every RPC service.
///
/// One `HostServices` instance backs one loader run; all application
/// instances of an ensemble share it, demultiplexed by instance id.
pub struct HostServices {
    fs: FsBackend,
    /// Per-instance accumulated stdout.
    stdout: BTreeMap<u32, String>,
    stderr: BTreeMap<u32, String>,
    /// Per-instance exit codes from explicit `exit()` calls.
    exit_codes: BTreeMap<u32, i32>,
    open_files: BTreeMap<u32, OpenFile>,
    next_fd: u32,
    /// Deterministic logical clock: advances a fixed quantum per query.
    clock_ns: u64,
    clock_step_ns: u64,
    stats: RpcStats,
    /// Per-instance counters, demultiplexed by the instance id every
    /// request carries (the observability layer's per-instance RPC view).
    instance_stats: BTreeMap<u32, RpcStats>,
    /// Echo stdout lines to the real stdout as they arrive.
    pub echo: bool,
}

impl Default for HostServices {
    fn default() -> Self {
        Self::new(FsBackend::default())
    }
}

impl HostServices {
    pub fn new(fs: FsBackend) -> Self {
        Self {
            fs,
            stdout: BTreeMap::new(),
            stderr: BTreeMap::new(),
            exit_codes: BTreeMap::new(),
            open_files: BTreeMap::new(),
            next_fd: 3, // 0-2 reserved, as on a real host
            clock_ns: 0,
            clock_step_ns: 1_000,
            stats: RpcStats::default(),
            instance_stats: BTreeMap::new(),
            echo: false,
        }
    }

    /// Pre-populate an in-memory file (panics on a directory backend).
    pub fn add_file(&mut self, path: &str, contents: Vec<u8>) {
        match &mut self.fs {
            FsBackend::InMemory(map) => {
                map.insert(path.to_string(), contents);
            }
            FsBackend::Directory(_) => {
                panic!("add_file is only supported on the in-memory backend")
            }
        }
    }

    /// Captured stdout of one instance.
    pub fn stdout_of(&self, instance: u32) -> &str {
        self.stdout.get(&instance).map(String::as_str).unwrap_or("")
    }

    /// Captured stderr of one instance.
    pub fn stderr_of(&self, instance: u32) -> &str {
        self.stderr.get(&instance).map(String::as_str).unwrap_or("")
    }

    /// Exit code recorded by an explicit `exit()` call, if any.
    pub fn exit_code_of(&self, instance: u32) -> Option<i32> {
        self.exit_codes.get(&instance).copied()
    }

    /// Contents of an in-memory file after the run.
    pub fn file_contents(&self, path: &str) -> Option<&[u8]> {
        match &self.fs {
            FsBackend::InMemory(map) => map.get(path).map(Vec::as_slice),
            FsBackend::Directory(_) => None,
        }
    }

    pub fn stats(&self) -> RpcStats {
        self.stats
    }

    /// Per-service round-trip counters of one instance.
    pub fn stats_of(&self, instance: u32) -> RpcStats {
        self.instance_stats
            .get(&instance)
            .copied()
            .unwrap_or_default()
    }

    /// Dispatch one request. Never panics on malformed input; failures come
    /// back as [`Response::Err`].
    pub fn handle(&mut self, req: Request) -> Response {
        let instance = req.instance();
        let before = self.stats;
        let resp = self.dispatch(req);
        if matches!(resp, Response::Err(_)) {
            self.stats.errors += 1;
        }
        // Attribute whatever the dispatch just counted to its instance.
        let per = self.instance_stats.entry(instance).or_default();
        per.stdio_calls += self.stats.stdio_calls - before.stdio_calls;
        per.fs_calls += self.stats.fs_calls - before.fs_calls;
        per.clock_calls += self.stats.clock_calls - before.clock_calls;
        per.exit_calls += self.stats.exit_calls - before.exit_calls;
        per.errors += self.stats.errors - before.errors;
        resp
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Stdout { instance, text } => {
                self.stats.stdio_calls += 1;
                if self.echo {
                    print!("{text}");
                }
                self.stdout.entry(instance).or_default().push_str(&text);
                Response::Ok
            }
            Request::Stderr { instance, text } => {
                self.stats.stdio_calls += 1;
                self.stderr.entry(instance).or_default().push_str(&text);
                Response::Ok
            }
            Request::FOpen {
                instance: _,
                path,
                mode,
            } => {
                self.stats.fs_calls += 1;
                self.fopen(&path, &mode)
            }
            Request::FClose { instance: _, fd } => {
                self.stats.fs_calls += 1;
                match self.open_files.remove(&fd) {
                    Some(_) => Response::Ok,
                    None => Response::Err(format!("bad fd {fd}")),
                }
            }
            Request::FRead {
                instance: _,
                fd,
                len,
            } => {
                self.stats.fs_calls += 1;
                self.fread(fd, len)
            }
            Request::FWrite {
                instance: _,
                fd,
                data,
            } => {
                self.stats.fs_calls += 1;
                self.fwrite(fd, &data)
            }
            Request::FSeek {
                instance: _,
                fd,
                offset,
                whence,
            } => {
                self.stats.fs_calls += 1;
                self.fseek(fd, offset, whence)
            }
            Request::Clock { instance: _ } => {
                self.stats.clock_calls += 1;
                self.clock_ns += self.clock_step_ns;
                Response::Clock(self.clock_ns)
            }
            Request::Exit { instance, code } => {
                self.stats.exit_calls += 1;
                self.exit_codes.insert(instance, code);
                Response::Ok
            }
        }
    }

    fn fopen(&mut self, path: &str, mode: &str) -> Response {
        let mode = match mode.trim_end_matches('b') {
            "r" => OpenMode::Read,
            "w" => OpenMode::Write,
            "a" => OpenMode::Append,
            m => return Response::Err(format!("unsupported mode '{m}'")),
        };
        if path.contains("..") {
            return Response::Err("path escapes the sandbox".into());
        }
        let real = match &self.fs {
            FsBackend::InMemory(map) => {
                match mode {
                    OpenMode::Read => {
                        if !map.contains_key(path) {
                            return Response::Err(format!("no such file: {path}"));
                        }
                    }
                    OpenMode::Write | OpenMode::Append => {}
                }
                None
            }
            FsBackend::Directory(root) => {
                let full = root.join(path);
                let file = match mode {
                    OpenMode::Read => std::fs::File::open(&full),
                    OpenMode::Write => std::fs::File::create(&full),
                    OpenMode::Append => std::fs::OpenOptions::new()
                        .append(true)
                        .create(true)
                        .open(&full),
                };
                match file {
                    Ok(f) => Some(f),
                    Err(e) => return Response::Err(format!("open {path}: {e}")),
                }
            }
        };
        // In-memory writes truncate on open, matching "w" semantics.
        if let (FsBackend::InMemory(map), OpenMode::Write) = (&mut self.fs, &mode) {
            map.insert(path.to_string(), Vec::new());
        }
        if let (FsBackend::InMemory(map), OpenMode::Append) = (&mut self.fs, &mode) {
            map.entry(path.to_string()).or_default();
        }
        let pos = match (&self.fs, &mode) {
            (FsBackend::InMemory(map), OpenMode::Append) => {
                map.get(path).map(|v| v.len() as u64).unwrap_or(0)
            }
            _ => 0,
        };
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open_files.insert(
            fd,
            OpenFile {
                path: path.to_string(),
                pos,
                mode,
                real,
            },
        );
        Response::Fd(fd)
    }

    fn fread(&mut self, fd: u32, len: u32) -> Response {
        let Some(file) = self.open_files.get_mut(&fd) else {
            return Response::Err(format!("bad fd {fd}"));
        };
        if matches!(file.mode, OpenMode::Write | OpenMode::Append) {
            return Response::Err("file not open for reading".into());
        }
        if let Some(real) = &mut file.real {
            let mut buf = vec![0u8; len as usize];
            match real.read(&mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    file.pos += n as u64;
                    Response::Bytes(buf)
                }
                Err(e) => Response::Err(format!("read: {e}")),
            }
        } else {
            let FsBackend::InMemory(map) = &self.fs else {
                unreachable!("in-memory handle on directory backend")
            };
            let Some(data) = map.get(&file.path) else {
                return Response::Err(format!("file vanished: {}", file.path));
            };
            let start = (file.pos as usize).min(data.len());
            let end = (start + len as usize).min(data.len());
            file.pos = end as u64;
            Response::Bytes(data[start..end].to_vec())
        }
    }

    fn fwrite(&mut self, fd: u32, data: &[u8]) -> Response {
        let Some(file) = self.open_files.get_mut(&fd) else {
            return Response::Err(format!("bad fd {fd}"));
        };
        if matches!(file.mode, OpenMode::Read) {
            return Response::Err("file not open for writing".into());
        }
        if let Some(real) = &mut file.real {
            match real.write_all(data) {
                Ok(()) => {
                    file.pos += data.len() as u64;
                    Response::Written(data.len() as u32)
                }
                Err(e) => Response::Err(format!("write: {e}")),
            }
        } else {
            let FsBackend::InMemory(map) = &mut self.fs else {
                unreachable!("in-memory handle on directory backend")
            };
            let buf = map.entry(file.path.clone()).or_default();
            let pos = file.pos as usize;
            if buf.len() < pos + data.len() {
                buf.resize(pos + data.len(), 0);
            }
            buf[pos..pos + data.len()].copy_from_slice(data);
            file.pos += data.len() as u64;
            Response::Written(data.len() as u32)
        }
    }

    fn fseek(&mut self, fd: u32, offset: i64, whence: u8) -> Response {
        let Some(file) = self.open_files.get_mut(&fd) else {
            return Response::Err(format!("bad fd {fd}"));
        };
        let end = if let Some(real) = &mut file.real {
            match real.seek(SeekFrom::End(0)) {
                Ok(e) => e,
                Err(e) => return Response::Err(format!("seek: {e}")),
            }
        } else {
            let FsBackend::InMemory(map) = &self.fs else {
                unreachable!("in-memory handle on directory backend")
            };
            map.get(&file.path).map(|v| v.len() as u64).unwrap_or(0)
        };
        let base = match whence {
            0 => 0i64,
            1 => file.pos as i64,
            2 => end as i64,
            w => return Response::Err(format!("bad whence {w}")),
        };
        let target = base + offset;
        if target < 0 {
            return Response::Err("seek before start".into());
        }
        file.pos = target as u64;
        if let Some(real) = &mut file.real {
            if let Err(e) = real.seek(SeekFrom::Start(file.pos)) {
                return Response::Err(format!("seek: {e}"));
            }
        }
        Response::Pos(file.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdout_demultiplexes_by_instance() {
        let mut s = HostServices::default();
        s.handle(Request::Stdout {
            instance: 0,
            text: "a".into(),
        });
        s.handle(Request::Stdout {
            instance: 1,
            text: "b".into(),
        });
        s.handle(Request::Stdout {
            instance: 0,
            text: "c".into(),
        });
        assert_eq!(s.stdout_of(0), "ac");
        assert_eq!(s.stdout_of(1), "b");
        assert_eq!(s.stdout_of(2), "");
        assert_eq!(s.stats().stdio_calls, 3);
    }

    #[test]
    fn stats_demultiplex_by_instance() {
        let mut s = HostServices::default();
        s.handle(Request::Stdout {
            instance: 0,
            text: "a".into(),
        });
        s.handle(Request::Clock { instance: 1 });
        s.handle(Request::Clock { instance: 1 });
        s.handle(Request::FOpen {
            instance: 1,
            path: "missing".into(),
            mode: "r".into(),
        });
        let s0 = s.stats_of(0);
        assert_eq!(s0.stdio_calls, 1);
        assert_eq!(s0.total(), 1);
        assert_eq!(s0.errors, 0);
        let s1 = s.stats_of(1);
        assert_eq!(s1.clock_calls, 2);
        assert_eq!(s1.fs_calls, 1);
        assert_eq!(s1.errors, 1);
        assert_eq!(s.stats_of(7), RpcStats::default());
        // The aggregate view equals the sum of the per-instance views.
        let mut sum = s.stats_of(0);
        sum.merge(&s.stats_of(1));
        assert_eq!(sum, s.stats());
    }

    #[test]
    fn file_write_read_roundtrip() {
        let mut s = HostServices::default();
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "out.bin".into(),
            mode: "w".into(),
        }) else {
            panic!("open failed")
        };
        assert_eq!(
            s.handle(Request::FWrite {
                instance: 0,
                fd,
                data: vec![1, 2, 3, 4]
            }),
            Response::Written(4)
        );
        s.handle(Request::FClose { instance: 0, fd });

        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "out.bin".into(),
            mode: "r".into(),
        }) else {
            panic!("reopen failed")
        };
        assert_eq!(
            s.handle(Request::FRead {
                instance: 0,
                fd,
                len: 10
            }),
            Response::Bytes(vec![1, 2, 3, 4])
        );
        // EOF returns empty.
        assert_eq!(
            s.handle(Request::FRead {
                instance: 0,
                fd,
                len: 10
            }),
            Response::Bytes(vec![])
        );
    }

    #[test]
    fn open_missing_file_fails() {
        let mut s = HostServices::default();
        assert!(matches!(
            s.handle(Request::FOpen {
                instance: 0,
                path: "nope".into(),
                mode: "r".into()
            }),
            Response::Err(_)
        ));
        assert_eq!(s.stats().errors, 1);
    }

    #[test]
    fn sandbox_escape_rejected() {
        let mut s = HostServices::default();
        assert!(matches!(
            s.handle(Request::FOpen {
                instance: 0,
                path: "../etc/passwd".into(),
                mode: "r".into()
            }),
            Response::Err(_)
        ));
    }

    #[test]
    fn seek_semantics() {
        let mut s = HostServices::default();
        s.add_file("f", vec![10, 20, 30, 40, 50]);
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "f".into(),
            mode: "r".into(),
        }) else {
            panic!()
        };
        assert_eq!(
            s.handle(Request::FSeek {
                instance: 0,
                fd,
                offset: -2,
                whence: 2
            }),
            Response::Pos(3)
        );
        assert_eq!(
            s.handle(Request::FRead {
                instance: 0,
                fd,
                len: 10
            }),
            Response::Bytes(vec![40, 50])
        );
        assert!(matches!(
            s.handle(Request::FSeek {
                instance: 0,
                fd,
                offset: -100,
                whence: 0
            }),
            Response::Err(_)
        ));
    }

    #[test]
    fn append_mode_appends() {
        let mut s = HostServices::default();
        s.add_file("log", b"abc".to_vec());
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "log".into(),
            mode: "a".into(),
        }) else {
            panic!()
        };
        s.handle(Request::FWrite {
            instance: 0,
            fd,
            data: b"def".to_vec(),
        });
        assert_eq!(s.file_contents("log").unwrap(), b"abcdef");
    }

    #[test]
    fn read_on_write_handle_fails() {
        let mut s = HostServices::default();
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "w".into(),
            mode: "w".into(),
        }) else {
            panic!()
        };
        assert!(matches!(
            s.handle(Request::FRead {
                instance: 0,
                fd,
                len: 1
            }),
            Response::Err(_)
        ));
    }

    #[test]
    fn clock_is_deterministic_and_monotone() {
        let mut s = HostServices::default();
        let Response::Clock(a) = s.handle(Request::Clock { instance: 0 }) else {
            panic!()
        };
        let Response::Clock(b) = s.handle(Request::Clock { instance: 1 }) else {
            panic!()
        };
        assert!(b > a);
        let mut s2 = HostServices::default();
        let Response::Clock(a2) = s2.handle(Request::Clock { instance: 0 }) else {
            panic!()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn exit_codes_recorded_per_instance() {
        let mut s = HostServices::default();
        s.handle(Request::Exit {
            instance: 2,
            code: 7,
        });
        assert_eq!(s.exit_code_of(2), Some(7));
        assert_eq!(s.exit_code_of(0), None);
    }

    #[test]
    fn directory_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hostrpc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = HostServices::new(FsBackend::Directory(dir.clone()));
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "t.bin".into(),
            mode: "w".into(),
        }) else {
            panic!()
        };
        s.handle(Request::FWrite {
            instance: 0,
            fd,
            data: vec![7, 8, 9],
        });
        s.handle(Request::FClose { instance: 0, fd });
        assert_eq!(std::fs::read(dir.join("t.bin")).unwrap(), vec![7, 8, 9]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
