use crate::proto::{Request, Response};
use crate::services::HostServices;
use crossbeam::channel::{bounded, unbounded, Sender};
use std::thread::JoinHandle;

enum Message {
    Call(Request, Sender<Response>),
    Shutdown,
}

/// Device-side handle to the RPC service thread. Cheap to clone; every
/// clone shares the same queue, like all device stubs sharing the single
/// host channel of the direct-GPU-compilation framework.
#[derive(Clone)]
pub struct RpcClient {
    tx: Sender<Message>,
}

impl RpcClient {
    /// Perform one blocking round trip.
    pub fn call(&self, req: Request) -> Result<Response, String> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Message::Call(req, rtx))
            .map_err(|_| "RPC server is gone".to_string())?;
        rrx.recv()
            .map_err(|_| "RPC server dropped reply".to_string())
    }

    /// Round trip with raw encoded payloads — the shape the simulator's
    /// host-call hook expects.
    pub fn call_raw(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let req = Request::decode(payload).map_err(|e| e.to_string())?;
        Ok(self.call(req)?.encode())
    }
}

/// The dedicated host service thread (paper Fig. 2, "RPC thread").
pub struct RpcServer {
    handle: JoinHandle<HostServices>,
    tx: Sender<Message>,
}

impl RpcServer {
    /// Spawn the service thread around `services`.
    pub fn spawn(services: HostServices) -> (RpcServer, RpcClient) {
        let (tx, rx) = unbounded::<Message>();
        let handle = std::thread::Builder::new()
            .name("host-rpc".into())
            .spawn(move || {
                let mut services = services;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Message::Call(req, reply) => {
                            let resp = services.handle(req);
                            // A dropped caller is not an error for the server.
                            let _ = reply.send(resp);
                        }
                        Message::Shutdown => break,
                    }
                }
                services
            })
            .expect("spawn host-rpc thread");
        let client = RpcClient { tx: tx.clone() };
        (RpcServer { handle, tx }, client)
    }

    /// Stop the thread and recover the services (captured stdout, files,
    /// exit codes, statistics).
    pub fn shutdown(self) -> HostServices {
        // The channel may already be disconnected if every client dropped.
        let _ = self.tx.send(Message::Shutdown);
        self.handle.join().expect("host-rpc thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_thread() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let resp = client
            .call(Request::Stdout {
                instance: 0,
                text: "ping\n".into(),
            })
            .unwrap();
        assert_eq!(resp, Response::Ok);
        let services = server.shutdown();
        assert_eq!(services.stdout_of(0), "ping\n");
    }

    #[test]
    fn raw_roundtrip_matches_typed() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let req = Request::Clock { instance: 1 };
        let raw = client.call_raw(&req.encode()).unwrap();
        assert!(matches!(
            Response::decode(&raw).unwrap(),
            Response::Clock(_)
        ));
        server.shutdown();
    }

    #[test]
    fn many_clients_interleave() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let c = client.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..50 {
                    c.call(Request::Stdout {
                        instance: i,
                        text: format!("{k} "),
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let services = server.shutdown();
        for i in 0..8u32 {
            assert_eq!(services.stdout_of(i).split_whitespace().count(), 50);
        }
        assert_eq!(services.stats().stdio_calls, 400);
    }

    #[test]
    fn call_after_shutdown_errors() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        server.shutdown();
        assert!(client.call(Request::Clock { instance: 0 }).is_err());
    }

    #[test]
    fn malformed_raw_payload_is_an_error() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        assert!(client.call_raw(&[250, 1, 2]).is_err());
        server.shutdown();
    }
}
