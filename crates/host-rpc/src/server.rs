use crate::proto::{DecodeError, Request, Response};
use crate::services::HostServices;
use crossbeam::channel::{bounded, unbounded, Sender};
use std::thread::JoinHandle;

/// Why one RPC round trip failed, as seen from the device side.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// The service thread is gone (shut down or crashed); the request was
    /// never delivered.
    ServerGone,
    /// The service thread dropped the reply channel before answering.
    ReplyDropped,
    /// The raw payload did not decode as a [`Request`].
    Decode(DecodeError),
    /// A fault-injection interceptor destroyed the round trip.
    Injected(String),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::ServerGone => write!(f, "RPC server is gone"),
            RpcError::ReplyDropped => write!(f, "RPC server dropped reply"),
            RpcError::Decode(e) => write!(f, "RPC request malformed: {e}"),
            RpcError::Injected(m) => write!(f, "RPC fault injected: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A fault injected into one RPC round trip by the server-side
/// interceptor (see [`RpcServer::spawn_with_interceptor`]). The fault is
/// applied *before* the service handler runs, so a faulted call has no
/// host-side side effects and can be retried safely.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcFault {
    /// Answer `Response::Err(message)` without invoking the service.
    Fail(String),
    /// Deliver a reply that does not decode as any [`Response`] — wire
    /// corruption. Typed callers get [`RpcError::Injected`]; raw callers
    /// get garbage bytes their own decoder must survive.
    Corrupt,
}

/// Server-side fault hook: inspects each request and may replace its round
/// trip with a fault. Runs on the service thread, hence `Send`.
pub type RpcFaultHook = Box<dyn FnMut(&Request) -> Option<RpcFault> + Send>;

/// Server-side observation hook: called once per completed round trip
/// with `(service, instance, errored)`, where `errored` covers both
/// service-level `Response::Err` replies and injected faults. Pure
/// observation — the hook runs after the reply is decided and cannot
/// alter it; live-telemetry sinks hang off this. `Arc` so the caller can
/// keep reading the counters the hook feeds while the server runs.
pub type RpcObserver = std::sync::Arc<dyn Fn(u32, u32, bool) + Send + Sync>;

/// Wire bytes of a corrupted reply: an out-of-range response tag followed
/// by a length prefix that overruns the buffer, so any correct decoder
/// must reject it without panicking or over-reading.
const CORRUPT_REPLY: [u8; 5] = [0xFF, 0xFF, 0xFF, 0xFF, 0x7F];

enum Message {
    // The bool flags a corrupted reply (fault injection).
    Call(Request, Sender<(Response, bool)>),
    Shutdown,
}

/// Device-side handle to the RPC service thread. Cheap to clone; every
/// clone shares the same queue, like all device stubs sharing the single
/// host channel of the direct-GPU-compilation framework.
#[derive(Clone)]
pub struct RpcClient {
    tx: Sender<Message>,
}

impl RpcClient {
    /// Perform one blocking round trip.
    pub fn call(&self, req: Request) -> Result<Response, RpcError> {
        let (resp, corrupt) = self.round_trip(req)?;
        if corrupt {
            // A typed caller cannot receive corrupted bytes; surface the
            // destroyed round trip as an injected error instead.
            return Err(RpcError::Injected("corrupted response".into()));
        }
        Ok(resp)
    }

    /// Round trip with raw encoded payloads — the shape the simulator's
    /// host-call hook expects.
    pub fn call_raw(&self, payload: &[u8]) -> Result<Vec<u8>, RpcError> {
        let req = Request::decode(payload).map_err(RpcError::Decode)?;
        let (resp, corrupt) = self.round_trip(req)?;
        if corrupt {
            return Ok(CORRUPT_REPLY.to_vec());
        }
        Ok(resp.encode())
    }

    fn round_trip(&self, req: Request) -> Result<(Response, bool), RpcError> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send(Message::Call(req, rtx))
            .map_err(|_| RpcError::ServerGone)?;
        rrx.recv().map_err(|_| RpcError::ReplyDropped)
    }
}

/// The dedicated host service thread (paper Fig. 2, "RPC thread").
pub struct RpcServer {
    handle: JoinHandle<HostServices>,
    tx: Sender<Message>,
}

impl RpcServer {
    /// Spawn the service thread around `services`.
    pub fn spawn(services: HostServices) -> (RpcServer, RpcClient) {
        Self::spawn_with_interceptor(services, None)
    }

    /// Spawn the service thread with an optional fault interceptor, which
    /// sees every request before the service handler. `None` — and an
    /// interceptor that always returns `None` — behaves exactly like
    /// [`RpcServer::spawn`].
    pub fn spawn_with_interceptor(
        services: HostServices,
        interceptor: Option<RpcFaultHook>,
    ) -> (RpcServer, RpcClient) {
        Self::spawn_observed(services, interceptor, None)
    }

    /// [`RpcServer::spawn_with_interceptor`] plus an optional round-trip
    /// observer. The observer fires after each reply is decided (injected
    /// faults included) and cannot influence it, so an observed server
    /// answers exactly like an unobserved one.
    pub fn spawn_observed(
        services: HostServices,
        mut interceptor: Option<RpcFaultHook>,
        observer: Option<RpcObserver>,
    ) -> (RpcServer, RpcClient) {
        let (tx, rx) = unbounded::<Message>();
        let handle = std::thread::Builder::new()
            .name("host-rpc".into())
            .spawn(move || {
                let mut services = services;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Message::Call(req, reply) => {
                            let (service, instance) = (req.service(), req.instance());
                            let fault = interceptor.as_mut().and_then(|f| f(&req));
                            let out = match fault {
                                None => (services.handle(req), false),
                                Some(RpcFault::Fail(msg)) => {
                                    (Response::Err(format!("injected: {msg}")), false)
                                }
                                Some(RpcFault::Corrupt) => (Response::Ok, true),
                            };
                            if let Some(obs) = &observer {
                                let errored = out.1 || matches!(out.0, Response::Err(_));
                                obs(service, instance, errored);
                            }
                            // A dropped caller is not an error for the server.
                            let _ = reply.send(out);
                        }
                        Message::Shutdown => break,
                    }
                }
                services
            })
            .expect("spawn host-rpc thread");
        let client = RpcClient { tx: tx.clone() };
        (RpcServer { handle, tx }, client)
    }

    /// Stop the thread and recover the services (captured stdout, files,
    /// exit codes, statistics).
    pub fn shutdown(self) -> HostServices {
        // The channel may already be disconnected if every client dropped.
        let _ = self.tx.send(Message::Shutdown);
        self.handle.join().expect("host-rpc thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_thread() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let resp = client
            .call(Request::Stdout {
                instance: 0,
                text: "ping\n".into(),
            })
            .unwrap();
        assert_eq!(resp, Response::Ok);
        let services = server.shutdown();
        assert_eq!(services.stdout_of(0), "ping\n");
    }

    #[test]
    fn raw_roundtrip_matches_typed() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let req = Request::Clock { instance: 1 };
        let raw = client.call_raw(&req.encode()).unwrap();
        assert!(matches!(
            Response::decode(&raw).unwrap(),
            Response::Clock(_)
        ));
        server.shutdown();
    }

    #[test]
    fn many_clients_interleave() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let c = client.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..50 {
                    c.call(Request::Stdout {
                        instance: i,
                        text: format!("{k} "),
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let services = server.shutdown();
        for i in 0..8u32 {
            assert_eq!(services.stdout_of(i).split_whitespace().count(), 50);
        }
        assert_eq!(services.stats().stdio_calls, 400);
    }

    #[test]
    fn call_after_shutdown_errors() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        server.shutdown();
        assert_eq!(
            client.call(Request::Clock { instance: 0 }),
            Err(RpcError::ServerGone)
        );
    }

    #[test]
    fn malformed_raw_payload_is_an_error() {
        let (server, client) = RpcServer::spawn(HostServices::default());
        assert!(matches!(
            client.call_raw(&[250, 1, 2]),
            Err(RpcError::Decode(_))
        ));
        server.shutdown();
    }

    #[test]
    fn interceptor_fail_replaces_response_without_side_effects() {
        let hook: RpcFaultHook = Box::new(|req| match req {
            Request::Stdout { .. } => Some(RpcFault::Fail("stdout is down".into())),
            _ => None,
        });
        let (server, client) =
            RpcServer::spawn_with_interceptor(HostServices::default(), Some(hook));
        let resp = client
            .call(Request::Stdout {
                instance: 0,
                text: "lost\n".into(),
            })
            .unwrap();
        assert!(matches!(resp, Response::Err(m) if m.contains("stdout is down")));
        // Untargeted requests pass through.
        assert!(matches!(
            client.call(Request::Clock { instance: 0 }).unwrap(),
            Response::Clock(_)
        ));
        let services = server.shutdown();
        // The faulted write never reached the service: safe to retry.
        assert_eq!(services.stdout_of(0), "");
        assert_eq!(services.stats().stdio_calls, 0);
    }

    #[test]
    fn interceptor_corruption_is_typed_for_call_and_garbage_for_raw() {
        let mk = || {
            let hook: RpcFaultHook = Box::new(|_| Some(RpcFault::Corrupt));
            RpcServer::spawn_with_interceptor(HostServices::default(), Some(hook))
        };
        let (server, client) = mk();
        assert_eq!(
            client.call(Request::Clock { instance: 0 }),
            Err(RpcError::Injected("corrupted response".into()))
        );
        let raw = client
            .call_raw(&Request::Clock { instance: 0 }.encode())
            .unwrap();
        // The corrupted bytes must be rejected by the response decoder.
        assert!(Response::decode(&raw).is_err());
        server.shutdown();
    }

    #[test]
    fn observer_sees_every_round_trip_with_error_flags() {
        use crate::proto::{SERVICE_CLOCK, SERVICE_STDIO};
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(u32, u32, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let log = seen.clone();
        let hook: RpcFaultHook = Box::new(|req| match req {
            Request::Stdout { .. } => Some(RpcFault::Fail("down".into())),
            _ => None,
        });
        let observer: RpcObserver =
            Arc::new(move |svc, inst, err| log.lock().unwrap().push((svc, inst, err)));
        let (server, client) =
            RpcServer::spawn_observed(HostServices::default(), Some(hook), Some(observer));
        let _ = client.call(Request::Clock { instance: 2 }).unwrap();
        let _ = client
            .call(Request::Stdout {
                instance: 5,
                text: "x".into(),
            })
            .unwrap();
        server.shutdown();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![(SERVICE_CLOCK, 2, false), (SERVICE_STDIO, 5, true)]
        );
    }

    #[test]
    fn none_interceptor_matches_plain_spawn() {
        let hook: RpcFaultHook = Box::new(|_| None);
        let (server, client) =
            RpcServer::spawn_with_interceptor(HostServices::default(), Some(hook));
        let resp = client
            .call(Request::Stdout {
                instance: 3,
                text: "ok\n".into(),
            })
            .unwrap();
        assert_eq!(resp, Response::Ok);
        let services = server.shutdown();
        assert_eq!(services.stdout_of(3), "ok\n");
    }
}
