//! Wire protocol between device stubs and the host service thread.
//!
//! The encoding is a simple tagged binary format (little-endian lengths,
//! UTF-8 strings) so that the device side can ship opaque byte payloads
//! through the simulator's host-call hook without pulling a serialization
//! framework into device code.

/// Service id: stdout/stderr text output (`printf` and friends).
pub const SERVICE_STDIO: u32 = 1;
/// Service id: sandboxed file system (`fopen`/`fread`/`fwrite`/…).
pub const SERVICE_FS: u32 = 2;
/// Service id: time queries (`time`, `clock_gettime`).
pub const SERVICE_CLOCK: u32 = 3;
/// Service id: process control (`exit`, `abort`).
pub const SERVICE_EXIT: u32 = 4;

/// A request from device code to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Append text to the instance's stdout stream.
    Stdout {
        instance: u32,
        text: String,
    },
    /// Append text to the instance's stderr stream.
    Stderr {
        instance: u32,
        text: String,
    },
    /// Open a file; returns `Response::Fd`.
    FOpen {
        instance: u32,
        path: String,
        /// `"r"`, `"w"` or `"a"` (binary suffixes accepted and ignored).
        mode: String,
    },
    FClose {
        instance: u32,
        fd: u32,
    },
    /// Read up to `len` bytes; returns `Response::Bytes`.
    FRead {
        instance: u32,
        fd: u32,
        len: u32,
    },
    /// Write bytes; returns `Response::Written`.
    FWrite {
        instance: u32,
        fd: u32,
        data: Vec<u8>,
    },
    /// Seek; whence: 0 = set, 1 = cur, 2 = end. Returns `Response::Pos`.
    FSeek {
        instance: u32,
        fd: u32,
        offset: i64,
        whence: u8,
    },
    /// Deterministic monotonic clock; returns `Response::Clock` (ns).
    Clock {
        instance: u32,
    },
    /// Record the instance's exit code.
    Exit {
        instance: u32,
        code: i32,
    },
}

impl Request {
    /// The service this request belongs to (used to check that the
    /// compiled image generated the corresponding RPC stub).
    pub fn service(&self) -> u32 {
        match self {
            Request::Stdout { .. } | Request::Stderr { .. } => SERVICE_STDIO,
            Request::FOpen { .. }
            | Request::FClose { .. }
            | Request::FRead { .. }
            | Request::FWrite { .. }
            | Request::FSeek { .. } => SERVICE_FS,
            Request::Clock { .. } => SERVICE_CLOCK,
            Request::Exit { .. } => SERVICE_EXIT,
        }
    }

    /// The issuing instance.
    pub fn instance(&self) -> u32 {
        match self {
            Request::Stdout { instance, .. }
            | Request::Stderr { instance, .. }
            | Request::FOpen { instance, .. }
            | Request::FClose { instance, .. }
            | Request::FRead { instance, .. }
            | Request::FWrite { instance, .. }
            | Request::FSeek { instance, .. }
            | Request::Clock { instance }
            | Request::Exit { instance, .. } => *instance,
        }
    }
}

/// A reply from the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok,
    Fd(u32),
    Bytes(Vec<u8>),
    Written(u32),
    Pos(u64),
    Clock(u64),
    Err(String),
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

// ---- encoding helpers ------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(tag: u8) -> Self {
        Self(vec![tag])
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError(format!(
                "truncated: need {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|e| DecodeError(format!("bad utf8: {e}")))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Stdout { instance, text } => {
                let mut w = Writer::new(0);
                w.u32(*instance);
                w.str(text);
                w.0
            }
            Request::Stderr { instance, text } => {
                let mut w = Writer::new(1);
                w.u32(*instance);
                w.str(text);
                w.0
            }
            Request::FOpen {
                instance,
                path,
                mode,
            } => {
                let mut w = Writer::new(2);
                w.u32(*instance);
                w.str(path);
                w.str(mode);
                w.0
            }
            Request::FClose { instance, fd } => {
                let mut w = Writer::new(3);
                w.u32(*instance);
                w.u32(*fd);
                w.0
            }
            Request::FRead { instance, fd, len } => {
                let mut w = Writer::new(4);
                w.u32(*instance);
                w.u32(*fd);
                w.u32(*len);
                w.0
            }
            Request::FWrite { instance, fd, data } => {
                let mut w = Writer::new(5);
                w.u32(*instance);
                w.u32(*fd);
                w.bytes(data);
                w.0
            }
            Request::FSeek {
                instance,
                fd,
                offset,
                whence,
            } => {
                let mut w = Writer::new(6);
                w.u32(*instance);
                w.u32(*fd);
                w.i64(*offset);
                w.u8(*whence);
                w.0
            }
            Request::Clock { instance } => {
                let mut w = Writer::new(7);
                w.u32(*instance);
                w.0
            }
            Request::Exit { instance, code } => {
                let mut w = Writer::new(8);
                w.u32(*instance);
                w.i32(*code);
                w.0
            }
        }
    }

    pub fn decode(buf: &[u8]) -> Result<Request, DecodeError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let req = match tag {
            0 => Request::Stdout {
                instance: r.u32()?,
                text: r.str()?,
            },
            1 => Request::Stderr {
                instance: r.u32()?,
                text: r.str()?,
            },
            2 => Request::FOpen {
                instance: r.u32()?,
                path: r.str()?,
                mode: r.str()?,
            },
            3 => Request::FClose {
                instance: r.u32()?,
                fd: r.u32()?,
            },
            4 => Request::FRead {
                instance: r.u32()?,
                fd: r.u32()?,
                len: r.u32()?,
            },
            5 => Request::FWrite {
                instance: r.u32()?,
                fd: r.u32()?,
                data: r.bytes()?,
            },
            6 => Request::FSeek {
                instance: r.u32()?,
                fd: r.u32()?,
                offset: r.i64()?,
                whence: r.u8()?,
            },
            7 => Request::Clock { instance: r.u32()? },
            8 => Request::Exit {
                instance: r.u32()?,
                code: r.i32()?,
            },
            t => return Err(DecodeError(format!("unknown request tag {t}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok => vec![0],
            Response::Fd(fd) => {
                let mut w = Writer::new(1);
                w.u32(*fd);
                w.0
            }
            Response::Bytes(b) => {
                let mut w = Writer::new(2);
                w.bytes(b);
                w.0
            }
            Response::Written(n) => {
                let mut w = Writer::new(3);
                w.u32(*n);
                w.0
            }
            Response::Pos(p) => {
                let mut w = Writer::new(4);
                w.u64(*p);
                w.0
            }
            Response::Clock(ns) => {
                let mut w = Writer::new(5);
                w.u64(*ns);
                w.0
            }
            Response::Err(m) => {
                let mut w = Writer::new(6);
                w.str(m);
                w.0
            }
        }
    }

    pub fn decode(buf: &[u8]) -> Result<Response, DecodeError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let resp = match tag {
            0 => Response::Ok,
            1 => Response::Fd(r.u32()?),
            2 => Response::Bytes(r.bytes()?),
            3 => Response::Written(r.u32()?),
            4 => Response::Pos(r.u64()?),
            5 => Response::Clock(r.u64()?),
            6 => Response::Err(r.str()?),
            t => return Err(DecodeError(format!("unknown response tag {t}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let enc = r.encode();
        assert_eq!(Request::decode(&enc).unwrap(), r);
    }

    fn roundtrip_resp(r: Response) {
        let enc = r.encode();
        assert_eq!(Response::decode(&enc).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Stdout {
            instance: 3,
            text: "hello αβγ\n".into(),
        });
        roundtrip_req(Request::Stderr {
            instance: 0,
            text: String::new(),
        });
        roundtrip_req(Request::FOpen {
            instance: 1,
            path: "data-1.bin".into(),
            mode: "rb".into(),
        });
        roundtrip_req(Request::FClose { instance: 1, fd: 3 });
        roundtrip_req(Request::FRead {
            instance: 9,
            fd: 3,
            len: 4096,
        });
        roundtrip_req(Request::FWrite {
            instance: 2,
            fd: 4,
            data: vec![0, 255, 1, 2],
        });
        roundtrip_req(Request::FSeek {
            instance: 2,
            fd: 4,
            offset: -128,
            whence: 2,
        });
        roundtrip_req(Request::Clock { instance: 63 });
        roundtrip_req(Request::Exit {
            instance: 63,
            code: -1,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Fd(17));
        roundtrip_resp(Response::Bytes(vec![9; 1000]));
        roundtrip_resp(Response::Written(512));
        roundtrip_resp(Response::Pos(1 << 40));
        roundtrip_resp(Response::Clock(123_456_789));
        roundtrip_resp(Response::Err("no such file".into()));
    }

    #[test]
    fn service_classification() {
        assert_eq!(
            Request::Stdout {
                instance: 0,
                text: "x".into()
            }
            .service(),
            SERVICE_STDIO
        );
        assert_eq!(Request::Clock { instance: 0 }.service(), SERVICE_CLOCK);
        assert_eq!(
            Request::FOpen {
                instance: 0,
                path: "p".into(),
                mode: "r".into()
            }
            .service(),
            SERVICE_FS
        );
        assert_eq!(
            Request::Exit {
                instance: 5,
                code: 0
            }
            .service(),
            SERVICE_EXIT
        );
        assert_eq!(
            Request::Exit {
                instance: 5,
                code: 0
            }
            .instance(),
            5
        );
    }

    #[test]
    fn truncated_rejected() {
        let enc = Request::Stdout {
            instance: 3,
            text: "hello".into(),
        }
        .encode();
        assert!(Request::decode(&enc[..enc.len() - 1]).is_err());
        assert!(Request::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Response::Ok.encode();
        enc.push(0);
        assert!(Response::decode(&enc).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[200]).is_err());
    }
}
