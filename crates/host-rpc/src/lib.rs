//! Host remote-procedure-call framework.
//!
//! In the direct-GPU-compilation architecture (paper Fig. 2) the device
//! cannot perform I/O or other host-only operations, so the offload runtime
//! starts a dedicated **RPC thread** on the host; generated device stubs
//! marshal requests through a shared queue and block until the service
//! thread replies. This crate implements that machinery:
//!
//! * the wire protocol: [`Request`]/[`Response`] with a compact,
//!   dependency-free binary encoding (round-trip tested);
//! * [`HostServices`] — the host-side implementations: per-instance stdout
//!   and stderr capture, a sandboxed (in-memory or directory-backed) file
//!   system, a deterministic clock, and exit-code collection;
//! * [`RpcServer`]/[`RpcClient`] — the dedicated service thread and the
//!   device-side handle, connected by crossbeam channels.
//!
//! Every request carries the issuing *instance* id so that ensemble
//! execution multiplexes cleanly: each application instance gets its own
//! stdout stream, fd table and exit code.

mod proto;
mod server;
mod services;

pub use proto::{
    DecodeError, Request, Response, SERVICE_CLOCK, SERVICE_EXIT, SERVICE_FS, SERVICE_STDIO,
};
pub use server::{RpcClient, RpcError, RpcFault, RpcFaultHook, RpcObserver, RpcServer};
pub use services::{FsBackend, HostServices, RpcStats};
