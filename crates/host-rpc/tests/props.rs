//! Property-based tests for the RPC wire protocol and file service.

use host_rpc::{FsBackend, HostServices, Request, Response};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u32>(), ".*").prop_map(|(instance, text)| Request::Stdout { instance, text }),
        (any::<u32>(), ".*").prop_map(|(instance, text)| Request::Stderr { instance, text }),
        (any::<u32>(), "[a-z./-]{1,40}", "[rwa]b?").prop_map(|(instance, path, mode)| {
            Request::FOpen {
                instance,
                path,
                mode,
            }
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(instance, fd)| Request::FClose { instance, fd }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(instance, fd, len)| Request::FRead {
            instance,
            fd,
            len
        }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(instance, fd, data)| Request::FWrite { instance, fd, data }),
        (any::<u32>(), any::<u32>(), any::<i64>(), 0u8..3).prop_map(
            |(instance, fd, offset, whence)| Request::FSeek {
                instance,
                fd,
                offset,
                whence
            }
        ),
        any::<u32>().prop_map(|instance| Request::Clock { instance }),
        (any::<u32>(), any::<i32>()).prop_map(|(instance, code)| Request::Exit { instance, code }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<u32>().prop_map(Response::Fd),
        prop::collection::vec(any::<u8>(), 0..300).prop_map(Response::Bytes),
        any::<u32>().prop_map(Response::Written),
        any::<u64>().prop_map(Response::Pos),
        any::<u64>().prop_map(Response::Clock),
        ".*".prop_map(Response::Err),
    ]
}

proptest! {
    /// Every request survives encode → decode.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Every response survives encode → decode.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// The service dispatcher never panics on arbitrary well-formed
    /// requests, and sandbox escapes always fail.
    #[test]
    fn services_never_panic(reqs in prop::collection::vec(arb_request(), 1..60)) {
        let mut s = HostServices::new(FsBackend::default());
        for r in reqs {
            let escape = matches!(&r, Request::FOpen { path, .. } if path.contains(".."));
            let resp = s.handle(r);
            if escape {
                prop_assert!(matches!(resp, Response::Err(_)));
            }
        }
    }

    /// Every strict prefix of a valid request encoding is rejected as a
    /// `DecodeError` — the decoder neither accepts a cut message nor reads
    /// past the end of the buffer.
    #[test]
    fn truncated_requests_are_decode_errors(req in arb_request()) {
        let full = req.encode();
        for cut in 0..full.len() {
            prop_assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", full.len()
            );
        }
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_are_decode_errors(resp in arb_response()) {
        let full = resp.encode();
        for cut in 0..full.len() {
            prop_assert!(
                Response::decode(&full[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", full.len()
            );
        }
    }

    /// Bit-flipped valid encodings (which can turn length prefixes into
    /// huge values) either decode or error — never panic or over-read.
    #[test]
    fn mutated_encodings_never_panic(
        req in arb_request(),
        pos in any::<u16>(),
        flip in 1u8..=255u8,
    ) {
        let mut bytes = req.encode();
        let i = pos as usize % bytes.len();
        bytes[i] ^= flip;
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Whatever bytes are written to a file read back identically.
    #[test]
    fn file_write_read_identity(data in prop::collection::vec(any::<u8>(), 0..500)) {
        let mut s = HostServices::default();
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "f".into(),
            mode: "w".into(),
        }) else { panic!("open") };
        s.handle(Request::FWrite { instance: 0, fd, data: data.clone() });
        s.handle(Request::FClose { instance: 0, fd });
        let Response::Fd(fd) = s.handle(Request::FOpen {
            instance: 0,
            path: "f".into(),
            mode: "r".into(),
        }) else { panic!("reopen") };
        let Response::Bytes(read) = s.handle(Request::FRead {
            instance: 0,
            fd,
            len: data.len() as u32 + 10,
        }) else { panic!("read") };
        prop_assert_eq!(read, data);
    }
}
