//! End-to-end observability: a traced ensemble run must export a valid
//! Chrome trace and a metrics JSONL stream through the public API alone —
//! exactly what the `ensemble-cli` binary does with `--trace-out` and
//! `--metrics-out`.

use device_libc::dl_printf;
use dgc_core::{parse_arg_file, run_ensemble_traced, AppContext, EnsembleOptions, HostApp};
use dgc_obs::{metrics_jsonl, validate_chrome_trace, Recorder};
use gpu_sim::{Gpu, KernelError, TeamCtx};
use host_rpc::HostServices;
use serde_json::Value;

const MODULE: &str = r#"
module "obs" {
  func @main arity=2 calls(@printf, @malloc, @atoi)
  extern func @printf variadic
  extern func @malloc
  extern func @atoi
}
"#;

fn stream_main(team: &mut TeamCtx<'_>, cx: &AppContext) -> Result<i32, KernelError> {
    let n: u64 = cx
        .argv
        .iter()
        .position(|a| a == "-n")
        .and_then(|p| cx.argv.get(p + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let buf = team.serial("alloc", |lane| lane.dev_alloc(8 * n))?;
    team.parallel_for("init", n, |i, lane| lane.st_idx::<f64>(buf, i, i as f64))?;
    let sum = team.parallel_for_reduce_f64("sum", n, |i, lane| lane.ld_idx::<f64>(buf, i))?;
    let instance = cx.instance;
    team.serial("print", |lane| {
        dl_printf(
            lane,
            "instance %d sum %.1f\n",
            &[instance.into(), sum.into()],
        )?;
        Ok(())
    })?;
    Ok(0)
}

#[test]
fn traced_ensemble_exports_valid_chrome_trace_and_jsonl() {
    let app = HostApp::new("obs", MODULE, stream_main);
    let arg_lines = parse_arg_file("-n 128\n-n 256\n-n 512\n-n 1024\n").unwrap();
    let opts = EnsembleOptions {
        num_instances: 4,
        thread_limit: 32,
        ..Default::default()
    };
    let mut gpu = Gpu::a100();
    let mut obs = Recorder::enabled();
    let res = run_ensemble_traced(
        &mut gpu,
        &app,
        &arg_lines,
        &opts,
        HostServices::default(),
        &mut obs,
    )
    .unwrap();
    assert!(res.all_succeeded());

    // The Chrome trace round-trips through the validator: well-formed
    // JSON, a traceEvents array, monotone-safe non-negative ts/dur.
    let trace = obs.to_chrome_trace();
    let n_events = validate_chrome_trace(&trace).expect("trace must validate");
    assert!(n_events > 0, "a traced run records events");

    // Every instrumentation layer shows up: loader spans, the kernel
    // span, per-block schedule lanes, phase spans, instance lifecycle.
    let parsed: Value = serde_json::from_str(&trace).unwrap();
    let events = match &parsed {
        Value::Object(fields) => match &fields[0].1 {
            Value::Array(evs) => evs.clone(),
            other => panic!("traceEvents must be an array, got {other:?}"),
        },
        other => panic!("trace must be an object, got {other:?}"),
    };
    let cat_of = |ev: &Value| -> Option<String> {
        if let Value::Object(fields) = ev {
            for (k, v) in fields {
                if k == "cat" {
                    if let Value::Str(s) = v {
                        return Some(s.clone());
                    }
                }
            }
        }
        None
    };
    let cats: Vec<String> = events.iter().filter_map(cat_of).collect();
    for want in ["loader", "kernel", "block", "phase", "lifecycle"] {
        assert!(
            cats.iter().any(|c| c == want),
            "missing '{want}' events in {cats:?}"
        );
    }

    // The metrics stream carries one tagged line per instance plus one
    // launch rollup, each a self-contained JSON object.
    let jsonl = metrics_jsonl(&res.metrics, &res.launch_metrics());
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4 + 1);
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line).expect("each line is JSON");
        let Value::Object(fields) = v else {
            panic!("line {i} is not an object")
        };
        let kind = fields
            .iter()
            .find(|(k, _)| k == "record")
            .map(|(_, v)| v.clone());
        let want = if i < 4 { "instance" } else { "launch" };
        assert_eq!(kind, Some(Value::Str(want.to_string())));
    }
}
