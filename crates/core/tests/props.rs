//! Property-based tests for the loaders.

use dgc_core::{parse_arg_file, parse_ensemble_cli, relative_speedup};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9./=_-]{1,12}".prop_map(|s| s)
}

proptest! {
    /// The argument-file parser recovers exactly the tokens written, for
    /// any token matrix.
    #[test]
    fn arg_file_roundtrip(lines in prop::collection::vec(prop::collection::vec(arb_token(), 1..6), 1..10)) {
        let text: String = lines
            .iter()
            .map(|l| l.join(" "))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_arg_file(&text).unwrap();
        prop_assert_eq!(parsed, lines);
    }

    /// Quoting round-trips tokens containing spaces.
    #[test]
    fn quoted_tokens_roundtrip(words in prop::collection::vec("[a-z]{1,8}", 2..4)) {
        let spaced = words.join(" ");
        let text = format!("-f \"{spaced}\" -x");
        let parsed = parse_arg_file(&text).unwrap();
        prop_assert_eq!(parsed[0].clone(), vec!["-f".to_string(), spaced, "-x".to_string()]);
    }

    /// CLI parsing accepts every well-formed flag permutation and returns
    /// exactly the values given.
    #[test]
    fn cli_roundtrip(file in "[a-z]{1,10}\\.txt", n in 1u32..1000, t in 1u32..2048, shuffle in any::<bool>()) {
        let mut args = vec![
            "-f".to_string(), file.clone(),
            "-n".to_string(), n.to_string(),
            "-t".to_string(), t.to_string(),
        ];
        if shuffle {
            args.rotate_left(2);
        }
        let cli = parse_ensemble_cli(&args).unwrap();
        prop_assert_eq!(cli.arg_file, file);
        prop_assert_eq!(cli.num_instances, Some(n));
        prop_assert_eq!(cli.thread_limit, t);
    }

    /// The speedup metric is scale-invariant and linear in N.
    #[test]
    fn speedup_properties(t1 in 1e-6f64..1e3, tn in 1e-6f64..1e3, n in 1u32..128, scale in 1e-3f64..1e3) {
        let s = relative_speedup(t1, n, tn).unwrap();
        let s_scaled = relative_speedup(t1 * scale, n, tn * scale).unwrap();
        prop_assert!((s - s_scaled).abs() <= s.abs() * 1e-9);
        // Linear scaling gives exactly N.
        let lin = relative_speedup(t1, n, t1).unwrap();
        prop_assert!((lin - n as f64).abs() < 1e-9);
    }
}
